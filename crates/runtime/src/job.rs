//! Job identities, failures and terminal outcomes.
//!
//! Everything here is part of the `tml-journal/v1` wire contract: the
//! string forms of [`JobStatus`] and [`FailureKind`] appear verbatim in
//! journal and report lines, and [`fingerprint_dtmc`] is the
//! deterministic digest by which a resumed run proves it reproduced the
//! same trusted model as the interrupted one.

use tml_conformance::gen::ModelFamily;
use tml_models::Dtmc;

/// Deterministic description of one batch job, fully derived from
/// `(corpus_seed, id)` by [`crate::corpus::job_spec`] — the journal never
/// needs to persist job inputs, only the corpus seed.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Position in the batch (0-based).
    pub id: u64,
    /// Generator family for the ground-truth model.
    pub family: ModelFamily,
    /// Seed for the model generator and the trajectory sampler.
    pub seed: u64,
    /// Requested model size (families may round, e.g. grids).
    pub num_states: usize,
    /// Trajectories sampled into the job's trace dataset.
    pub trajectories: u32,
    /// Maximum trajectory length.
    pub depth: u32,
    /// Shift applied to the empirical goal-reaching rate to form the
    /// property bound: negative shifts give already-satisfied jobs,
    /// moderate positive ones repairable jobs, large ones unrepairable.
    pub bound_shift: f64,
}

/// How a job concluded (terminal; one `outcome` journal record each).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// The learned model already satisfied the property.
    Satisfied,
    /// Model Repair produced the trusted model.
    ModelRepaired,
    /// Data Repair produced the trusted model.
    DataRepaired,
    /// No configured repair could satisfy the property.
    Unrepairable,
    /// A verify-only job found the property violated (no repair was
    /// requested — the serve layer's `verify` submissions end here).
    Violated,
    /// Every attempt failed (panic or error); the batch moved on.
    Failed,
}

impl JobStatus {
    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            JobStatus::Satisfied => "satisfied",
            JobStatus::ModelRepaired => "model_repaired",
            JobStatus::DataRepaired => "data_repaired",
            JobStatus::Unrepairable => "unrepairable",
            JobStatus::Violated => "violated",
            JobStatus::Failed => "failed",
        }
    }

    /// Parses a name produced by [`name`](Self::name).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "satisfied" => Some(JobStatus::Satisfied),
            "model_repaired" => Some(JobStatus::ModelRepaired),
            "data_repaired" => Some(JobStatus::DataRepaired),
            "unrepairable" => Some(JobStatus::Unrepairable),
            "violated" => Some(JobStatus::Violated),
            "failed" => Some(JobStatus::Failed),
            _ => None,
        }
    }
}

/// What kind of fault ended an attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// The attempt panicked (caught at the isolation boundary).
    Panic,
    /// The attempt returned a structured error.
    Error,
}

impl FailureKind {
    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            FailureKind::Panic => "panic",
            FailureKind::Error => "error",
        }
    }

    /// Parses a name produced by [`name`](Self::name).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "panic" => Some(FailureKind::Panic),
            "error" => Some(FailureKind::Error),
            _ => None,
        }
    }
}

/// One failed attempt, as journaled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttemptFailure {
    /// The job the attempt belonged to.
    pub job: u64,
    /// 1-based attempt number.
    pub attempt: u32,
    /// Panic or structured error.
    pub kind: FailureKind,
    /// Human-readable cause (panic payload or error rendering).
    pub detail: String,
}

/// A job's terminal outcome, as journaled and reported.
///
/// Every field is deterministic for a fixed batch configuration — no
/// timestamps, no elapsed durations — which is what lets a resumed run's
/// report be byte-compared against an uninterrupted control.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// The job id.
    pub job: u64,
    /// Attempts consumed (1 = first try succeeded).
    pub attempts: u32,
    /// How the job concluded.
    pub status: JobStatus,
    /// Short deterministic description (property for trusted outcomes,
    /// last failure for [`JobStatus::Failed`]).
    pub detail: String,
    /// [`fingerprint_dtmc`] of the trusted model, when one was produced.
    pub fingerprint: Option<u64>,
    /// Optimizer/checker evaluations spent by the concluding stage.
    pub evaluations: u64,
}

/// FNV-1a digest over a DTMC's exact structure: state count, initial
/// state, and every transition's `(from, to, f64::to_bits(p))`. Two models
/// fingerprint equal iff they are bitwise-identical chains, so this is the
/// resume contract's witness that a re-run reproduced the same model.
pub fn fingerprint_dtmc(model: &Dtmc) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |v: u64| {
        for byte in v.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(PRIME);
        }
    };
    eat(model.num_states() as u64);
    eat(model.initial_state() as u64);
    for s in 0..model.num_states() {
        for (t, p) in model.successors(s) {
            eat(s as u64);
            eat(t as u64);
            eat(p.to_bits());
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use tml_models::DtmcBuilder;

    #[test]
    fn status_and_kind_names_round_trip() {
        for s in [
            JobStatus::Satisfied,
            JobStatus::ModelRepaired,
            JobStatus::DataRepaired,
            JobStatus::Unrepairable,
            JobStatus::Violated,
            JobStatus::Failed,
        ] {
            assert_eq!(JobStatus::parse(s.name()), Some(s));
        }
        assert_eq!(JobStatus::parse("nope"), None);
        for k in [FailureKind::Panic, FailureKind::Error] {
            assert_eq!(FailureKind::parse(k.name()), Some(k));
        }
        assert_eq!(FailureKind::parse("nope"), None);
    }

    #[test]
    fn fingerprint_distinguishes_models() {
        let chain = |p: f64| {
            let mut b = DtmcBuilder::new(2);
            b.transition(0, 1, p).unwrap();
            b.transition(0, 0, 1.0 - p).unwrap();
            b.transition(1, 1, 1.0).unwrap();
            b.build().unwrap()
        };
        let a = fingerprint_dtmc(&chain(0.5));
        let b = fingerprint_dtmc(&chain(0.5));
        let c = fingerprint_dtmc(&chain(0.5 + 1e-15));
        assert_eq!(a, b, "identical chains fingerprint equal");
        assert_ne!(a, c, "one ulp of difference is visible");
    }
}
