//! Seeded retry policy: full-jitter exponential backoff.
//!
//! The delay before attempt `k`'s retry is drawn uniformly from
//! `[0, min(cap, base·2^(k−1))]` — AWS-style *full jitter*, which
//! de-correlates retry storms without tracking per-job state. The draw is
//! seeded from `(batch_seed, job, attempt)`, so a resumed batch sleeps
//! exactly as long as the control run would have at the same point, and
//! the whole schedule is clamped to the remaining batch deadline: a retry
//! never sleeps past the point where the budget would cancel it anyway.

use std::time::Duration;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::corpus::mix;

/// Per-job retry configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum attempts per job (1 = no retries).
    pub max_attempts: u32,
    /// Backoff base: the attempt-1 retry sleeps at most this long.
    pub base: Duration,
    /// Hard ceiling on any single backoff delay.
    pub cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base: Duration::from_millis(25),
            cap: Duration::from_secs(2),
        }
    }
}

impl RetryPolicy {
    /// Whether an attempt may start given the remaining batch deadline.
    ///
    /// A deadline that has already expired (`Some(Duration::ZERO)`)
    /// permits **zero** attempts: without this check the executor would
    /// still run attempt 1 with a clamped-to-zero backoff, burning solver
    /// time on a job whose budget is already spent. `None` means no
    /// deadline, which always permits.
    pub fn permits_attempt(&self, remaining: Option<Duration>) -> bool {
        remaining != Some(Duration::ZERO)
    }

    /// The backoff delay after attempt `attempt` (1-based) of `job` fails.
    ///
    /// Deterministic in `(batch_seed, job, attempt)`; monotonically
    /// bounded by `cap`; never exceeds `remaining` (time left in the batch
    /// deadline) when one is given.
    pub fn backoff(
        &self,
        batch_seed: u64,
        job: u64,
        attempt: u32,
        remaining: Option<Duration>,
    ) -> Duration {
        let exp = attempt.saturating_sub(1).min(20);
        let window = self.base.saturating_mul(1u32 << exp).min(self.cap).as_secs_f64();
        let mut rng = StdRng::seed_from_u64(mix(mix(batch_seed, job), u64::from(attempt)));
        let mut delay = Duration::from_secs_f64(rng.random_range(0.0..=window));
        if let Some(left) = remaining {
            delay = delay.min(left);
        }
        delay
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn window_grows_then_caps() {
        let p = RetryPolicy {
            max_attempts: 10,
            base: Duration::from_millis(100),
            cap: Duration::from_millis(350),
        };
        // The attempt-k window is min(cap, base·2^(k−1)): sample many seeds
        // and check the observed maxima respect those windows.
        for (attempt, window_ms) in [(1u32, 100u64), (2, 200), (3, 350), (8, 350)] {
            for seed in 0..200u64 {
                let d = p.backoff(seed, 7, attempt, None);
                assert!(
                    d <= Duration::from_millis(window_ms),
                    "attempt {attempt} delay {d:?} exceeds window {window_ms}ms"
                );
            }
        }
    }

    proptest! {
        /// Satellite property: the schedule is deterministic for a fixed
        /// seed, bounded by the cap, and never exceeds the remaining batch
        /// deadline.
        #[test]
        fn backoff_is_deterministic_capped_and_deadline_clamped(
            batch_seed in 0u64..1_000_000,
            job in 0u64..10_000,
            attempt in 1u32..12,
            cap_ms in 1u64..5_000,
            remaining_ms in 0u64..5_000,
        ) {
            let p = RetryPolicy {
                max_attempts: 12,
                base: Duration::from_millis(10),
                cap: Duration::from_millis(cap_ms),
            };
            let remaining = Duration::from_millis(remaining_ms);
            let a = p.backoff(batch_seed, job, attempt, Some(remaining));
            let b = p.backoff(batch_seed, job, attempt, Some(remaining));
            prop_assert_eq!(a, b, "same inputs, same delay");
            prop_assert!(a <= Duration::from_millis(cap_ms), "cap respected");
            prop_assert!(a <= remaining, "deadline clamp respected");
            let unclamped = p.backoff(batch_seed, job, attempt, None);
            prop_assert!(unclamped <= Duration::from_millis(cap_ms));
        }

        /// Satellite property: an expired deadline yields zero attempts —
        /// `permits_attempt` refuses exactly when the remaining budget is
        /// `Some(ZERO)`, and permits any positive remainder or no deadline.
        #[test]
        fn expired_deadline_permits_zero_attempts(
            remaining_ns in proptest::option::of(0u64..5_000_000),
        ) {
            let p = RetryPolicy::default();
            let remaining = remaining_ns.map(Duration::from_nanos);
            let permitted = p.permits_attempt(remaining);
            match remaining {
                Some(Duration::ZERO) => prop_assert!(!permitted, "expired deadline must yield zero attempts"),
                _ => prop_assert!(permitted, "positive or absent deadline permits the attempt"),
            }
        }
    }
}
