//! Deterministic job corpora: `(corpus_seed, id) → JobSpec → inputs`.
//!
//! Every job is a full learn→verify→repair problem synthesized from the
//! conformance layer's model generators: sample a ground-truth chain,
//! roll seeded trajectories on it, split them into `hit`/`miss` classes
//! by goal reachability, and ask for a *step-bounded* property
//! `P>=θ [ F<=depth "goal" ]` with `θ` placed relative to two checked
//! anchors — `p`, the bounded goal probability of the model learned from
//! the raw dataset, and `p_best`, the same probability when the `miss`
//! class is down-weighted to the Data Repair floor. Bounds below `p`
//! give already-satisfied jobs, bounds between `p` and `p_best` jobs
//! that Data Repair can fix, and bounds beyond `p_best` unrepairable
//! jobs — so a batch exercises every pipeline outcome. The step bound
//! matters twice over: unbounded `P(F goal)` saturates at 1 on these
//! small learned chains (every class collapses into "satisfied"), and
//! bounded properties route Data Repair through its re-learn-and-check
//! constraint fallback, exercising that path under chaos too.
//!
//! Models are kept small (≤ 12 requested states) so every linear solve
//! stays on the dense direct backend; batch results are then independent
//! of circuit-breaker adaptation, which is scheduling-dependent (see
//! DESIGN.md §11).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use tml_checker::Checker;
use tml_conformance::gen::{ModelFamily, GOAL_LABEL};
use tml_core::ModelSpec;
use tml_logic::{parse_formula, parse_query, StateFormula};
use tml_models::{learn, MlOptions, Path, TraceDataset};

use crate::job::JobSpec;

/// SplitMix-style combiner for deriving per-job seeds.
pub(crate) fn mix(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The spec of batch job `id` under `corpus_seed` — pure function, same
/// answer in the control run, the killed run and its resume.
pub fn job_spec(corpus_seed: u64, id: u64) -> JobSpec {
    let mut rng = StdRng::seed_from_u64(mix(corpus_seed, id));
    // Families with cheap generation and a guaranteed reachable goal.
    let families =
        [ModelFamily::Layered, ModelFamily::Absorbing, ModelFamily::Grid, ModelFamily::Dense];
    let family = families[rng.random_range(0..families.len())];
    let num_states = rng.random_range(6..=12usize);
    let trajectories = rng.random_range(24..=48u32);
    let depth = rng.random_range(6..=10u32);
    // Outcome-class selector (~1/3 satisfied, ~1/2 repair-needed, the
    // rest unrepairable): negative → bound below the learned model's
    // probability, moderate → between it and the best reweighted model,
    // large → beyond even that (see `build_job`).
    let bound_shift = match rng.random_range(0..6u32) {
        0 | 1 => -0.15,
        2..=4 => 0.12,
        _ => 0.9,
    };
    JobSpec {
        id,
        family,
        seed: mix(corpus_seed, id ^ 0x5bf0_3635),
        num_states,
        trajectories,
        depth,
        bound_shift,
    }
}

/// Inputs for one pipeline run, built from a [`JobSpec`].
#[derive(Debug, Clone)]
pub struct JobInput {
    /// The sampled trace dataset (`hit` and `miss` classes).
    pub dataset: TraceDataset,
    /// Model decoration (size, initial state, goal labels).
    pub spec: ModelSpec,
    /// The property the trusted model must satisfy.
    pub formula: StateFormula,
}

/// Synthesizes the job's dataset, model spec and property. Deterministic
/// in the spec; errors only on internal invariant violations (rendered as
/// strings so the executor can journal them as structured failures).
///
/// # Errors
///
/// Returns a description of the failed construction step.
pub fn build_job(spec: &JobSpec) -> Result<JobInput, String> {
    let model = spec.family.generate_sized(spec.seed, spec.num_states);
    let n = model.num_states();
    let goal = model.labeling().mask(GOAL_LABEL);
    if !goal.iter().any(|&g| g) {
        return Err(format!("family {} generated no goal state", spec.family.name()));
    }
    let mut rng = StdRng::seed_from_u64(mix(spec.seed, 0x7261_6a65));
    let mut ds = TraceDataset::new();
    let hit = ds.add_class("hit");
    let miss = ds.add_class("miss");
    for _ in 0..spec.trajectories {
        let states = model.sample_path(&mut rng, spec.depth as usize, |s| goal[s]);
        let reached = states.iter().any(|&s| goal[s]);
        ds.push(if reached { hit } else { miss }, Path::from_states(states), 1.0)
            .map_err(|e| format!("trace rejected: {e}"))?;
    }
    let mut mspec = ModelSpec::new(n).initial(model.initial_state());
    for (s, &is_goal) in goal.iter().enumerate() {
        if is_goal {
            mspec = mspec.label(s, GOAL_LABEL);
        }
    }
    // Anchor the bound on checked probabilities: `p` for the model the
    // pipeline will learn from the raw dataset, `p_best` for the best it
    // can reach by down-weighting the `miss` class to the Data Repair
    // keep-weight floor (1e-3; classes are [hit, miss]).
    let horizon = spec.depth;
    let p = reach_probability(&ds, &mspec, horizon, None)?;
    let p_best = reach_probability(&ds, &mspec, horizon, Some(&[1.0, 1e-3]))?;
    let gap = (p_best - p).max(0.0);
    let theta = if spec.bound_shift < 0.0 || (spec.bound_shift < 0.5 && gap < 1e-4) {
        // Satisfied: strictly below what the learned model achieves. A
        // repair-class job whose reweighting gap vanished degrades here.
        p * 0.85
    } else if spec.bound_shift < 0.5 {
        // Repairable: partway into what reweighting can recover.
        p + 0.35 * gap
    } else {
        // Unrepairable: beyond even the fully reweighted model.
        (p_best + 0.5 * (1.0 - p_best)).min(0.999_999)
    };
    let formula = parse_formula(&format!("P>={theta:.6} [ F<={horizon} \"{GOAL_LABEL}\" ]"))
        .map_err(|e| format!("formula: {e}"))?;
    Ok(JobInput { dataset: ds, spec: mspec, formula })
}

/// `P(F<=horizon goal)` at the initial state of the model learned from
/// `dataset` under the given per-class weights — the same learn step (and
/// decoration) the pipeline performs, so the anchors predict its verdict.
fn reach_probability(
    dataset: &TraceDataset,
    spec: &ModelSpec,
    horizon: u32,
    weights: Option<&[f64]>,
) -> Result<f64, String> {
    let mut b = learn::ml_dtmc(spec.num_states, dataset, weights, MlOptions::default())
        .map_err(|e| format!("anchor learn: {e}"))?;
    b.initial_state(spec.initial).map_err(|e| format!("anchor initial: {e}"))?;
    for (s, l) in &spec.labels {
        b.label(*s, l).map_err(|e| format!("anchor label: {e}"))?;
    }
    let model = b.build().map_err(|e| format!("anchor build: {e}"))?;
    let query = parse_query(&format!("P=? [ F<={horizon} \"{GOAL_LABEL}\" ]"))
        .map_err(|e| format!("anchor query: {e}"))?;
    Checker::new().value_dtmc(&model, &query).map_err(|e| format!("anchor check: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_are_deterministic_and_varied() {
        let a = job_spec(7, 3);
        let b = job_spec(7, 3);
        assert_eq!(a, b);
        let shifts: Vec<f64> = (0..64).map(|id| job_spec(7, id).bound_shift).collect();
        assert!(shifts.iter().any(|&s| s < 0.0), "some jobs start satisfied");
        assert!(shifts.iter().any(|&s| (0.0..0.5).contains(&s)), "some jobs need repair");
        assert!(shifts.iter().any(|&s| s > 0.5), "some jobs are unrepairable");
    }

    #[test]
    fn built_jobs_are_deterministic() {
        let spec = job_spec(11, 0);
        let a = build_job(&spec).unwrap();
        let b = build_job(&spec).unwrap();
        assert_eq!(a.dataset.num_traces(), b.dataset.num_traces());
        assert_eq!(a.formula.to_string(), b.formula.to_string());
        assert!(a.dataset.num_traces() as u32 == spec.trajectories);
        assert_eq!(a.dataset.num_classes(), 2);
    }

    #[test]
    fn every_family_in_the_corpus_builds() {
        for id in 0..16 {
            let spec = job_spec(23, id);
            let input = build_job(&spec).expect("corpus jobs always build");
            assert!(input.spec.num_states >= 2);
        }
    }
}
