//! Crash-consistent batch repair runtime (DESIGN.md §11).
//!
//! The single-pipeline API ([`tml_core::pipeline::TmlPipeline`]) answers
//! one repair question; production workloads ask thousands at once — one
//! per learned model shipped that day. This crate is the executor for that
//! shape of work, built around four robustness mechanisms:
//!
//! * **Per-job panic isolation** — every attempt runs under
//!   `catch_unwind`, so one poisoned job becomes a structured
//!   [`job::AttemptFailure`] instead of aborting the batch.
//! * **Seeded retry with backoff** — failed attempts are retried up to a
//!   per-job cap with full-jitter exponential backoff ([`retry`]), seeded
//!   from `(batch_seed, job, attempt)` so two runs of the same batch take
//!   the same delays, clamped to whatever remains of the batch deadline.
//! * **Per-backend circuit breakers** — the checker's per-backend
//!   `checker.backend.<name>.{ok,fail}` counters feed [`breaker`]; a
//!   backend that keeps failing is skipped (under `LinearSolver::Auto`)
//!   until its cooldown expires.
//! * **Crash consistency** — every state transition (attempt started,
//!   checkpoint reached, attempt failed, job concluded) is appended to a
//!   `tml-journal/v1` write-ahead journal ([`journal`]) *before* the next
//!   step runs. After a `kill -9`, resuming from the journal replays
//!   completed jobs and re-runs only in-flight ones, producing a final
//!   report **byte-identical** to an uninterrupted run.
//!
//! A deterministic chaos layer ([`chaos`]) injects panics, poisoned
//! datasets and slow solves from a seeded fault plan keyed on
//! `(job, attempt)` — the same faults strike at the same points in a
//! control run, a killed run and its resume, which is what makes the
//! byte-identity contract testable in CI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod breaker;
pub mod chaos;
pub mod clock;
pub mod corpus;
pub mod executor;
pub mod job;
pub mod journal;
pub mod retry;

pub use breaker::{
    BreakerSnapshot, BreakerState, BreakersSnapshot, CircuitBreaker, SolverBreakers,
};
pub use chaos::{ChaosSpec, Fault};
pub use clock::{system_clock, Clock, ManualClock, SharedClock, SystemClock};
pub use executor::{run_batch, BatchOptions, BatchResult, JobContext, KillSwitch};
pub use job::{AttemptFailure, FailureKind, JobOutcome, JobSpec, JobStatus};
pub use journal::{
    parse_journal, parse_journal_bytes, BatchConfig, Journal, JournalState, Submission, SubmitKind,
};
pub use retry::RetryPolicy;
