//! Deterministic fault injection for batch runs.
//!
//! A [`ChaosSpec`] is a seeded fault *plan*, not a random fault source:
//! whether (and how) attempt `k` of job `j` is sabotaged is a pure
//! function of `(spec.seed, j, k)`. A control run, a `kill -9`'d run and
//! its resume therefore all see identical faults at identical points,
//! which is what lets CI assert their final reports byte-compare equal.
//!
//! Three fault shapes cover the failure modes the executor defends
//! against:
//!
//! * [`Fault::Panic`] — panic at a chosen pipeline checkpoint (exercises
//!   `catch_unwind` isolation and warm-started retries);
//! * [`Fault::PoisonNan`] — poison a trace weight with NaN before the run
//!   (exercises structured-error retries: `TraceDataset::push` rejects
//!   non-finite weights deterministically);
//! * [`Fault::Slow`] — sleep before the run (exercises deadline clamping
//!   and gives mid-batch kills something to land on).

use std::time::Duration;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use tml_core::pipeline::PipelineStage;

use crate::corpus::mix;

/// One injected fault for a specific `(job, attempt)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Panic when the pipeline reaches this stage's checkpoint.
    Panic(PipelineStage),
    /// Replace one trace weight with NaN before running.
    PoisonNan,
    /// Sleep this long before running.
    Slow(Duration),
}

/// A seeded fault plan: independent per-attempt probabilities for each
/// fault shape. Probabilities are evaluated in the fixed order panic →
/// nan → slow from a single uniform draw, so at most one fault fires per
/// attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosSpec {
    /// Probability an attempt panics at a checkpoint.
    pub panic: f64,
    /// Probability an attempt's dataset is NaN-poisoned.
    pub nan: f64,
    /// Probability an attempt is delayed.
    pub slow: f64,
    /// Fault-plan seed (independent of the corpus seed).
    pub seed: u64,
}

impl ChaosSpec {
    /// Parses `"panic=0.2,nan=0.1,slow=0.1,seed=7"`. Keys may appear in
    /// any order; omitted keys default to zero. Probabilities must lie in
    /// `[0, 1]` and sum to at most 1.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed field.
    pub fn parse(s: &str) -> Result<Self, String> {
        let mut spec = ChaosSpec { panic: 0.0, nan: 0.0, slow: 0.0, seed: 0 };
        for part in s.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("chaos field `{part}` is not key=value"))?;
            let (key, value) = (key.trim(), value.trim());
            match key {
                "seed" => {
                    spec.seed =
                        value.parse().map_err(|_| format!("chaos seed `{value}` is not a u64"))?;
                }
                "panic" | "nan" | "slow" => {
                    let p: f64 = value
                        .parse()
                        .map_err(|_| format!("chaos {key} `{value}` is not a number"))?;
                    if !(0.0..=1.0).contains(&p) {
                        return Err(format!("chaos {key} {p} outside [0, 1]"));
                    }
                    match key {
                        "panic" => spec.panic = p,
                        "nan" => spec.nan = p,
                        _ => spec.slow = p,
                    }
                }
                _ => return Err(format!("unknown chaos key `{key}`")),
            }
        }
        if spec.panic + spec.nan + spec.slow > 1.0 {
            return Err("chaos probabilities sum past 1".into());
        }
        Ok(spec)
    }

    /// Canonical string form — `parse(canonical())` round-trips, and the
    /// journal stores this form so `--resume` replays the same plan.
    pub fn canonical(&self) -> String {
        format!("panic={},nan={},slow={},seed={}", self.panic, self.nan, self.slow, self.seed)
    }

    /// The fault (if any) struck onto attempt `attempt` of `job` — a pure
    /// function of the plan and the coordinates.
    pub fn fault(&self, job: u64, attempt: u32) -> Option<Fault> {
        let mut rng =
            StdRng::seed_from_u64(mix(mix(self.seed, job ^ 0x6368_616f), u64::from(attempt)));
        let u: f64 = rng.random_range(0.0..1.0);
        if u < self.panic {
            // Panic at a checkpoint that exists on every code path:
            // learn and verify always fire; data_repair only fires for
            // jobs whose model repair failed first, so it is excluded.
            let stages = [PipelineStage::Learn, PipelineStage::Verify];
            return Some(Fault::Panic(stages[rng.random_range(0..stages.len())]));
        }
        if u < self.panic + self.nan {
            return Some(Fault::PoisonNan);
        }
        if u < self.panic + self.nan + self.slow {
            return Some(Fault::Slow(Duration::from_millis(rng.random_range(5..=25u64))));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_any_order_and_defaults_missing_keys() {
        let spec = ChaosSpec::parse("seed=9,panic=0.25").unwrap();
        assert_eq!(spec, ChaosSpec { panic: 0.25, nan: 0.0, slow: 0.0, seed: 9 });
        let spec = ChaosSpec::parse("nan=0.1, slow=0.2").unwrap();
        assert_eq!(spec.nan, 0.1);
        assert_eq!(spec.slow, 0.2);
        assert_eq!(spec.seed, 0);
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        assert!(ChaosSpec::parse("panic").is_err(), "missing value");
        assert!(ChaosSpec::parse("panic=nope").is_err(), "non-numeric");
        assert!(ChaosSpec::parse("panic=1.5").is_err(), "out of range");
        assert!(ChaosSpec::parse("panic=0.6,nan=0.6").is_err(), "sum past 1");
        assert!(ChaosSpec::parse("boom=0.5").is_err(), "unknown key");
    }

    #[test]
    fn canonical_round_trips() {
        let spec = ChaosSpec { panic: 0.2, nan: 0.1, slow: 0.05, seed: 42 };
        assert_eq!(ChaosSpec::parse(&spec.canonical()).unwrap(), spec);
    }

    #[test]
    fn fault_plan_is_deterministic_and_calibrated() {
        let spec = ChaosSpec { panic: 0.2, nan: 0.2, slow: 0.2, seed: 7 };
        let mut counts = [0u32; 3];
        for job in 0..200u64 {
            for attempt in 1..=3u32 {
                assert_eq!(spec.fault(job, attempt), spec.fault(job, attempt), "pure function");
                match spec.fault(job, attempt) {
                    Some(Fault::Panic(stage)) => {
                        counts[0] += 1;
                        assert!(
                            matches!(stage, PipelineStage::Learn | PipelineStage::Verify),
                            "panics only at unconditional checkpoints"
                        );
                    }
                    Some(Fault::PoisonNan) => counts[1] += 1,
                    Some(Fault::Slow(d)) => {
                        counts[2] += 1;
                        assert!(d >= Duration::from_millis(5) && d <= Duration::from_millis(25));
                    }
                    None => {}
                }
            }
        }
        // 600 draws at p=0.2 each: all three shapes should appear often.
        for (i, count) in counts.iter().enumerate() {
            assert!(*count > 60, "fault shape {i} fired only {count}/600 times");
        }
        let quiet = ChaosSpec { panic: 0.0, nan: 0.0, slow: 0.0, seed: 7 };
        assert_eq!(quiet.fault(3, 1), None, "zero plan injects nothing");
    }
}
