//! Crash-consistency integration tests for the batch runtime, driven
//! entirely through the public API: kill a chaos batch mid-run (including
//! with a torn trailing journal line), resume from the parsed journal,
//! and require the resumed report to be byte-identical to an
//! uninterrupted control run.

use std::time::Duration;

use tml_runtime::journal::{parse_journal, render_report, Journal};
use tml_runtime::{run_batch, BatchOptions, BatchResult, ChaosSpec, JobStatus, KillSwitch};

const JOBS: u64 = 10;

fn chaos_options(corpus_seed: u64) -> BatchOptions {
    let mut opts = BatchOptions::new(corpus_seed, JOBS);
    opts.chaos = Some(ChaosSpec::parse("panic=0.35,nan=0.15,slow=0.05,seed=13").unwrap());
    opts.retry.base = Duration::from_millis(1);
    opts.retry.cap = Duration::from_millis(3);
    opts.workers = 2;
    opts
}

fn run(opts: &BatchOptions, journal_text: Option<&str>) -> (BatchResult, String) {
    let state = journal_text.map(|t| parse_journal(t).expect("journal parses"));
    let journal = match &state {
        Some(s) => Journal::reopen(Vec::new(), s.outcomes.len() as u64),
        None => Journal::create(Vec::new(), &opts.config()),
    }
    .unwrap();
    let result = run_batch(opts, &journal, state.as_ref()).unwrap();
    (result, String::from_utf8(journal.into_inner()).unwrap())
}

#[test]
fn resume_after_torn_tail_matches_control() {
    let control = chaos_options(101);
    let (control_result, _) = run(&control, None);
    assert_eq!(control_result.outcomes.len() as u64, JOBS);
    let control_report = render_report(&control.config(), &control_result.outcomes);

    let mut killed = control.clone();
    killed.kill = KillSwitch::new();
    killed.kill_after = Some(4);
    let (killed_result, killed_journal) = run(&killed, None);
    assert!(killed_result.killed);

    // A kill -9 can cut the last journal line anywhere, including right
    // after a record boundary; the parser must shrug either way.
    let torn = {
        let mut t = killed_journal.clone();
        t.truncate(t.len() - 17);
        t
    };
    for journal_text in [killed_journal.as_str(), torn.as_str()] {
        let mut resumed = control.clone();
        resumed.kill = KillSwitch::new();
        let (resumed_result, appended) = run(&resumed, Some(journal_text));
        assert!(!resumed_result.killed);
        assert_eq!(resumed_result.outcomes.len() as u64, JOBS);
        let report = render_report(&resumed.config(), &resumed_result.outcomes);
        assert_eq!(report, control_report, "resume is byte-identical to control");
        assert!(appended.contains("\"type\":\"resume\""), "resume boundary journaled");
    }
}

#[test]
fn a_twice_killed_batch_still_converges() {
    let control = chaos_options(202);
    let (control_result, _) = run(&control, None);
    let control_report = render_report(&control.config(), &control_result.outcomes);

    // First crash.
    let mut killed = control.clone();
    killed.kill = KillSwitch::new();
    killed.kill_after = Some(3);
    let (_, first_journal) = run(&killed, None);

    // Second crash, mid-resume. The journal segments concatenate the way
    // the CLI's append-mode file does.
    let mut killed_again = control.clone();
    killed_again.kill = KillSwitch::new();
    killed_again.kill_after = Some(3);
    let (_, second_segment) = run(&killed_again, Some(&first_journal));
    let combined = format!("{first_journal}{second_segment}");

    let parsed = parse_journal(&combined).unwrap();
    assert!(parsed.resumed, "second segment marked the resume");
    assert!(!parsed.complete);

    let mut last = control.clone();
    last.kill = KillSwitch::new();
    let (final_result, _) = run(&last, Some(&combined));
    let report = render_report(&last.config(), &final_result.outcomes);
    assert_eq!(report, control_report, "two crashes later, still byte-identical");
}

#[test]
fn chaos_cannot_abort_the_batch() {
    // Maximum hostility: every attempt draws a fault. Panics are caught,
    // poisoned datasets error, retries exhaust — but every job reaches a
    // terminal outcome and the batch completes with a summary.
    let mut opts = BatchOptions::new(77, 6);
    opts.chaos = Some(ChaosSpec::parse("panic=0.7,nan=0.3,seed=3").unwrap());
    opts.retry.base = Duration::from_millis(1);
    opts.retry.cap = Duration::from_millis(2);
    let (result, journal_text) = run(&opts, None);
    assert!(!result.killed);
    assert_eq!(result.outcomes.len(), 6);
    assert!(
        result.outcomes.iter().all(|o| o.status == JobStatus::Failed),
        "p=1.0 faults on every attempt: every job exhausts its retries"
    );
    assert!(result.outcomes.iter().all(|o| o.attempts == opts.retry.max_attempts));
    let state = parse_journal(&journal_text).unwrap();
    assert!(state.complete, "the batch itself never dies");
    assert_eq!(state.failures.len(), 6 * opts.retry.max_attempts as usize);
}
