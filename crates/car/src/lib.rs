//! Autonomous-car obstacle-avoidance case study (paper §V-B, Fig. 1).
//!
//! A car in the right lane must overtake a van parked at position 2 of its
//! lane: switch to the left lane, pass the van, and return to the right
//! lane by the end of the stretch. The MDP has 11 states:
//!
//! ```text
//!   left lane   S5  S6  S7  S8  S9      (positions 0..4)
//!   right lane  S0  S1  S2  S3  S4      (positions 0..4)
//! ```
//!
//! * `S2` — collision with the van (**unsafe**),
//! * `S4` — manoeuvre completed (**goal**, sink),
//! * `S10` — off-road / failed to return by `S4` (**unsafe**, sink).
//!
//! Actions: `0` move forward, `1` change lane to the left, `2` change lane
//! to the right (same position). Driving forward past `S9` or changing
//! lanes off the road lands in `S10`.
//!
//! States carry the paper's three features: lane indicator, normalized
//! distance to the nearest unsafe state, and the goal indicator. The expert
//! demonstration is the safe overtake
//! `(S0,0),(S1,1),(S6,0),(S7,0),(S8,2),(S3,0)`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use tml_core::{QConstraint, WeightedRule};
use tml_irl::{maxent_irl, value_iteration, FeatureMap, IrlOptions, IrlResult, ViOptions};
use tml_logic::TraceFormula;
use tml_models::{Mdp, MdpBuilder, Path};

use tml_core::RepairError;

/// Action id: move forward within the lane.
pub const FORWARD: usize = 0;
/// Action id: change to the left lane (same position).
pub const LEFT: usize = 1;
/// Action id: change to the right lane (same position).
pub const RIGHT: usize = 2;

/// Number of states (S0–S10).
pub const NUM_STATES: usize = 11;
/// The collision state.
pub const COLLISION: usize = 2;
/// The goal sink.
pub const GOAL: usize = 4;
/// The off-road sink.
pub const OFFROAD: usize = 10;

/// Discount factor used throughout the case study.
pub const GAMMA: f64 = 0.9;

/// Builds the Fig. 1 MDP with deterministic manoeuvres.
///
/// Every state in `S0–S3, S5–S9` offers all three actions (in id order
/// `forward`, `left`, `right`); the sinks `S4`/`S10` offer only `forward`
/// self-loops.
///
/// # Errors
///
/// Never fails for this fixed topology; the `Result` mirrors the builder
/// API.
pub fn build_mdp() -> Result<Mdp, RepairError> {
    let mut b = MdpBuilder::new(NUM_STATES);
    let forward_to = |s: usize| -> usize {
        match s {
            0..=3 => s + 1, // right lane advances
            5..=8 => s + 1, // left lane advances
            9 => OFFROAD,   // ran out of road in the left lane
            GOAL => GOAL,
            _ => OFFROAD,
        }
    };
    let left_to = |s: usize| -> usize {
        match s {
            0..=3 => s + 5, // right → left, same position
            5..=9 => OFFROAD,
            _ => s,
        }
    };
    let right_to = |s: usize| -> usize {
        match s {
            5..=9 => s - 5, // left → right, same position
            0..=3 => OFFROAD,
            _ => s,
        }
    };
    for s in 0..NUM_STATES {
        if s == GOAL || s == OFFROAD {
            b.choice(s, "forward", &[(s, 1.0)])?;
            continue;
        }
        b.choice(s, "forward", &[(forward_to(s), 1.0)])?;
        b.choice(s, "left", &[(left_to(s), 1.0)])?;
        b.choice(s, "right", &[(right_to(s), 1.0)])?;
    }
    b.label(COLLISION, "unsafe")?;
    b.label(OFFROAD, "unsafe")?;
    b.label(GOAL, "goal")?;
    for s in 0..=4 {
        b.label(s, "rightlane")?;
    }
    for s in 5..=9 {
        b.label(s, "leftlane")?;
    }
    b.label(1, "s1")?;
    Ok(b.build()?)
}

/// Builds a noisy variant of the Fig. 1 MDP: each manoeuvre succeeds with
/// probability `1 − slip` and otherwise the car drifts forward instead
/// (the action-noise model of real vehicle controllers). `slip = 0`
/// coincides with [`build_mdp`].
///
/// # Errors
///
/// Returns [`RepairError::InvalidInput`] unless `slip ∈ [0, 0.5)`.
pub fn build_mdp_noisy(slip: f64) -> Result<Mdp, RepairError> {
    if !(0.0..0.5).contains(&slip) {
        return Err(RepairError::InvalidInput { detail: format!("slip {slip} outside [0, 0.5)") });
    }
    let ideal = build_mdp()?;
    if slip == 0.0 {
        return Ok(ideal);
    }
    let mut b = MdpBuilder::new(NUM_STATES);
    for s in 0..NUM_STATES {
        for choice in ideal.choices(s) {
            let intended = choice.transitions[0].0;
            let action = ideal.action_name(choice.action);
            // The drift outcome is "forward": the first choice's target.
            let drift = ideal.choices(s)[0].transitions[0].0;
            if choice.action == FORWARD || s == GOAL || s == OFFROAD || intended == drift {
                b.choice(s, action, &[(intended, 1.0)])?;
            } else {
                b.choice(s, action, &[(intended, 1.0 - slip), (drift, slip)])?;
            }
        }
        for label in ideal.labeling().labels_of(s) {
            b.label(s, label)?;
        }
    }
    Ok(b.build()?)
}

/// The paper's three features per state:
///
/// * `φ1` — lane indicator (1 in the right lane `S0–S4`),
/// * `φ2` — distance to the nearest unsafe state (`S2`, `S10`),
///   normalized to `[0, 1]`,
/// * `φ3` — goal indicator (1 at `S4`).
///
/// # Errors
///
/// Never fails for this fixed topology.
pub fn features() -> Result<FeatureMap, RepairError> {
    let coord = |s: usize| -> (f64, f64) {
        // (lane, position); the off-road state sits "outside" both lanes.
        match s {
            0..=4 => (0.0, s as f64),
            5..=9 => (1.0, (s - 5) as f64),
            _ => (2.0, 2.0),
        }
    };
    let dist = |a: usize, b: usize| -> f64 {
        let (la, pa) = coord(a);
        let (lb, pb) = coord(b);
        (la - lb).abs() + (pa - pb).abs()
    };
    let mut rows = Vec::with_capacity(NUM_STATES);
    for s in 0..NUM_STATES {
        let lane = if s <= 4 { 1.0 } else { 0.0 };
        let d_unsafe = dist(s, COLLISION).min(dist(s, OFFROAD)) / 4.0;
        let goal = if s == GOAL { 1.0 } else { 0.0 };
        rows.push(vec![lane, d_unsafe, goal]);
    }
    FeatureMap::new(rows).map_err(tml_core::RepairError::Irl)
}

/// The expert demonstration from the paper:
/// `(S0,0),(S1,1),(S6,0),(S7,0),(S8,2),(S3,0)` ending in `S4`.
pub fn expert_path() -> Path {
    Path::with_actions(
        vec![0, 1, 6, 7, 8, 3, 4],
        vec![FORWARD, LEFT, FORWARD, FORWARD, RIGHT, FORWARD],
    )
    .expect("well-formed expert path")
}

/// IRL options tuned for this case study (moderate training, mild
/// regularization — enough to fit the expert but, as in the paper, not
/// enough to implicitly learn the safety constraint).
pub fn irl_options() -> IrlOptions {
    IrlOptions { horizon: 8, learning_rate: 0.2, iterations: 400, l2: 1e-2, tolerance: 1e-7 }
}

/// Learns the reward weights from the expert demonstration by max-entropy
/// IRL.
///
/// # Errors
///
/// Propagates IRL failures (never for this fixed setup).
pub fn learn_reward(mdp: &Mdp) -> Result<IrlResult, RepairError> {
    let fm = features()?;
    maxent_irl(mdp, &fm, &[expert_path()], irl_options()).map_err(RepairError::Irl)
}

/// The greedy deterministic policy (choice indices) under reward weights
/// `theta`.
///
/// # Errors
///
/// Propagates value-iteration failures.
pub fn greedy_policy(mdp: &Mdp, theta: &[f64]) -> Result<Vec<usize>, RepairError> {
    let fm = features()?;
    let vi =
        value_iteration(mdp, &fm.rewards(theta), ViOptions { gamma: GAMMA, ..Default::default() })
            .map_err(RepairError::Irl)?;
    Ok(vi.policy)
}

/// Rolls the policy out from `S0` (deterministic dynamics) and reports the
/// visited states, stopping at the first repeated state or after
/// `max_steps`.
pub fn rollout(mdp: &Mdp, policy: &[usize], max_steps: usize) -> Vec<usize> {
    let mut states = vec![mdp.initial_state()];
    let mut current = mdp.initial_state();
    for _ in 0..max_steps {
        let choice = &mdp.choices(current)[policy[current]];
        let next = choice.transitions[0].0;
        states.push(next);
        if next == current {
            break;
        }
        current = next;
    }
    states
}

/// Whether a policy's rollout from `S0` avoids both unsafe states and
/// reaches the goal.
pub fn policy_is_safe(mdp: &Mdp, policy: &[usize]) -> bool {
    let states = rollout(mdp, policy, 25);
    states.iter().all(|&s| s != COLLISION && s != OFFROAD) && states.contains(&GOAL)
}

/// The paper's Reward Repair constraint: in `S1` the lane change must beat
/// driving forward, `Q(S1, 1) > Q(S1, 0)`.
pub fn q_repair_constraint() -> QConstraint {
    QConstraint { state: 1, better: LEFT, worse: FORWARD, margin: 0.02 }
}

/// Trajectory-level safety rules for the projection-based repair: never
/// enter an unsafe state.
pub fn safety_rules() -> Vec<WeightedRule> {
    vec![WeightedRule::hard(TraceFormula::never("unsafe"))]
}

#[cfg(test)]
mod tests {
    use super::*;
    use tml_core::{RepairStatus, RewardRepair};

    #[test]
    fn topology_matches_figure_1() {
        let m = build_mdp().unwrap();
        assert_eq!(m.num_states(), NUM_STATES);
        // Action ids are stable: forward=0, left=1, right=2.
        assert_eq!(m.action_id("forward"), Some(FORWARD));
        assert_eq!(m.action_id("left"), Some(LEFT));
        assert_eq!(m.action_id("right"), Some(RIGHT));
        // Expert transitions exist: S1 --left--> S6, S8 --right--> S3.
        let c16 = &m.choices(1)[LEFT];
        assert_eq!(c16.transitions, vec![(6, 1.0)]);
        let c83 = &m.choices(8)[RIGHT];
        assert_eq!(c83.transitions, vec![(3, 1.0)]);
        // Forward at S1 collides.
        assert_eq!(m.choices(1)[FORWARD].transitions, vec![(2, 1.0)]);
        // S9 forward goes off-road; sinks self-loop.
        assert_eq!(m.choices(9)[FORWARD].transitions, vec![(OFFROAD, 1.0)]);
        assert_eq!(m.choices(GOAL).len(), 1);
        assert_eq!(m.choices(OFFROAD).len(), 1);
        assert!(m.labeling().has(COLLISION, "unsafe"));
        assert!(m.labeling().has(OFFROAD, "unsafe"));
        assert!(m.labeling().has(GOAL, "goal"));
    }

    #[test]
    fn expert_path_is_consistent_with_dynamics() {
        let m = build_mdp().unwrap();
        let p = expert_path();
        for i in 0..p.len() {
            let (s, a, t) = (p.states[i], p.actions[i], p.states[i + 1]);
            let c = m.choice_for_action(s, a).expect("action available");
            assert_eq!(m.choices(s)[c].transitions, vec![(t, 1.0)], "step {i}");
        }
        // The expert path is safe and ends at the goal.
        assert!(p.states.iter().all(|&s| s != COLLISION && s != OFFROAD));
        assert_eq!(*p.states.last().unwrap(), GOAL);
    }

    #[test]
    fn features_shape_and_semantics() {
        let fm = features().unwrap();
        assert_eq!(fm.num_states(), NUM_STATES);
        assert_eq!(fm.dim(), 3);
        // φ2 is zero exactly at unsafe states.
        assert_eq!(fm.state_features(COLLISION)[1], 0.0);
        assert_eq!(fm.state_features(OFFROAD)[1], 0.0);
        assert!(fm.state_features(5)[1] > 0.0);
        // φ3 only at the goal.
        for s in 0..NUM_STATES {
            assert_eq!(fm.state_features(s)[2], if s == GOAL { 1.0 } else { 0.0 });
        }
    }

    /// E5: max-ent IRL on the expert demo learns a reward whose greedy
    /// policy drives forward at S1 — into the van (paper §V-B).
    #[test]
    fn learned_reward_is_unsafe_at_s1() {
        let m = build_mdp().unwrap();
        let irl = learn_reward(&m).unwrap();
        let pi = greedy_policy(&m, &irl.theta).unwrap();
        assert_eq!(
            m.choices(1)[pi[1]].action,
            FORWARD,
            "expected the unsafe shortcut at S1; theta = {:?}",
            irl.theta
        );
        assert!(!policy_is_safe(&m, &pi));
    }

    /// E6: Q-constraint reward repair flips S1 to the lane change and the
    /// repaired policy completes the overtake safely.
    #[test]
    fn reward_repair_restores_safety() {
        let m = build_mdp().unwrap();
        let fm = features().unwrap();
        let irl = learn_reward(&m).unwrap();
        let out = RewardRepair::new()
            .q_constraint_repair(&m, &fm, &irl.theta, &[q_repair_constraint()], GAMMA, 3.0)
            .unwrap();
        assert_eq!(out.status, RepairStatus::Repaired, "theta0 = {:?}", irl.theta);
        assert!(out.verified);
        let pi = greedy_policy(&m, &out.theta).unwrap();
        assert_eq!(m.choices(1)[pi[1]].action, LEFT, "repaired theta = {:?}", out.theta);
        assert!(policy_is_safe(&m, &pi), "rollout: {:?}", rollout(&m, &pi, 25));
    }

    #[test]
    fn noisy_dynamics_preserve_structure() {
        let clean = build_mdp().unwrap();
        let noisy = build_mdp_noisy(0.1).unwrap();
        assert_eq!(noisy.num_states(), clean.num_states());
        assert_eq!(noisy.total_choices(), clean.total_choices());
        // The lane change at S1 now drifts into the van with probability 0.1.
        let c = &noisy.choices(1)[LEFT];
        assert!(c.transitions.contains(&(6, 0.9)));
        assert!(c.transitions.contains(&(2, 0.1)));
        // slip = 0 coincides with the ideal model.
        assert_eq!(build_mdp_noisy(0.0).unwrap(), clean);
        assert!(build_mdp_noisy(0.7).is_err());
        assert!(build_mdp_noisy(-0.1).is_err());
    }

    #[test]
    fn noisy_model_weakens_safety_guarantee() {
        use tml_checker::Checker;
        use tml_logic::parse_formula;
        // Even the best scheduler can no longer guarantee the overtake:
        // Pmax(!unsafe U goal) < 1 under slip noise.
        let noisy = build_mdp_noisy(0.1).unwrap();
        let phi = parse_formula("Pmax>=1 [ !\"unsafe\" U \"goal\" ]").unwrap();
        let res = Checker::new().check_mdp(&noisy, &phi).unwrap();
        assert!(!res.holds());
        let relaxed = parse_formula("Pmax>=0.8 [ !\"unsafe\" U \"goal\" ]").unwrap();
        assert!(Checker::new().check_mdp(&noisy, &relaxed).unwrap().holds());
    }

    #[test]
    fn rollout_detects_sinks() {
        let m = build_mdp().unwrap();
        // All-forward policy: S0→S1→S2→S3→S4 (collides at S2 on the way).
        let pi = vec![0; NUM_STATES];
        let states = rollout(&m, &pi, 25);
        assert!(states.contains(&COLLISION));
        assert!(!policy_is_safe(&m, &pi));
    }
}
