use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use crate::ModelError;

/// An assignment of atomic-proposition labels to states.
///
/// Labels are the atoms that PCTL state formulas refer to (e.g.
/// `"delivered"`, `"unsafe"`). A labeling is attached to every [`crate::Dtmc`]
/// and [`crate::Mdp`].
///
/// # Example
///
/// ```
/// use tml_models::Labeling;
///
/// # fn main() -> Result<(), tml_models::ModelError> {
/// let mut l = Labeling::new(3);
/// l.add(2, "goal")?;
/// assert!(l.has(2, "goal"));
/// assert!(!l.has(0, "goal"));
/// assert_eq!(l.states_with("goal").collect::<Vec<_>>(), vec![2]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Labeling {
    num_states: usize,
    map: BTreeMap<String, BTreeSet<usize>>,
}

impl Labeling {
    /// Creates an empty labeling over `num_states` states.
    pub fn new(num_states: usize) -> Self {
        Labeling { num_states, map: BTreeMap::new() }
    }

    /// Number of states this labeling covers.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Attaches `label` to `state`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::StateOutOfBounds`] if `state` is out of range.
    pub fn add(&mut self, state: usize, label: &str) -> Result<(), ModelError> {
        if state >= self.num_states {
            return Err(ModelError::StateOutOfBounds { state, num_states: self.num_states });
        }
        self.map.entry(label.to_owned()).or_default().insert(state);
        Ok(())
    }

    /// Whether `state` carries `label`.
    ///
    /// States out of range simply do not carry any label.
    pub fn has(&self, state: usize, label: &str) -> bool {
        self.map.get(label).is_some_and(|s| s.contains(&state))
    }

    /// Iterates over the states carrying `label` in increasing order.
    ///
    /// An unknown label yields an empty iterator.
    pub fn states_with<'a>(&'a self, label: &str) -> impl Iterator<Item = usize> + 'a {
        self.map.get(label).into_iter().flat_map(|s| s.iter().copied())
    }

    /// Returns a membership mask (one `bool` per state) for `label`.
    pub fn mask(&self, label: &str) -> Vec<bool> {
        let mut m = vec![false; self.num_states];
        for s in self.states_with(label) {
            m[s] = true;
        }
        m
    }

    /// Whether `label` is attached to at least one state.
    pub fn contains_label(&self, label: &str) -> bool {
        self.map.get(label).is_some_and(|s| !s.is_empty())
    }

    /// Iterates over all known label names in lexicographic order.
    pub fn labels(&self) -> impl Iterator<Item = &str> {
        self.map.keys().map(String::as_str)
    }

    /// All labels carried by `state`, in lexicographic order.
    pub fn labels_of(&self, state: usize) -> Vec<&str> {
        self.map
            .iter()
            .filter(|(_, set)| set.contains(&state))
            .map(|(name, _)| name.as_str())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_query() {
        let mut l = Labeling::new(4);
        l.add(0, "a").unwrap();
        l.add(2, "a").unwrap();
        l.add(2, "b").unwrap();
        assert!(l.has(0, "a"));
        assert!(l.has(2, "b"));
        assert!(!l.has(1, "a"));
        assert!(!l.has(0, "zzz"));
        assert_eq!(l.states_with("a").collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(l.mask("a"), vec![true, false, true, false]);
        assert_eq!(l.labels().collect::<Vec<_>>(), vec!["a", "b"]);
        assert_eq!(l.labels_of(2), vec!["a", "b"]);
        assert!(l.contains_label("a"));
        assert!(!l.contains_label("c"));
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mut l = Labeling::new(1);
        let err = l.add(1, "x").unwrap_err();
        assert!(matches!(err, ModelError::StateOutOfBounds { state: 1, num_states: 1 }));
    }

    #[test]
    fn unknown_label_iterates_empty() {
        let l = Labeling::new(2);
        assert_eq!(l.states_with("nope").count(), 0);
        assert_eq!(l.mask("nope"), vec![false, false]);
    }
}
