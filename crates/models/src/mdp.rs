use std::collections::BTreeMap;

use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

use crate::{Dtmc, DtmcBuilder, Labeling, ModelError, Path, RewardStructure, STOCHASTIC_TOLERANCE};

/// One nondeterministic choice available in an MDP state: an action name
/// plus a full probability distribution over successor states.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Choice {
    /// Index into [`Mdp::action_names`].
    pub action: usize,
    /// `(successor, probability)` pairs, sorted by successor.
    pub transitions: Vec<(usize, f64)>,
}

/// A Markov decision process `M = (S, A, R, P, L)` with labels and named
/// reward structures.
///
/// Each state offers one or more [`Choice`]s; a scheduler (policy) resolves
/// the nondeterminism, inducing a [`Dtmc`]. Construct instances via
/// [`MdpBuilder`].
///
/// # Example
///
/// ```
/// use tml_models::MdpBuilder;
///
/// # fn main() -> Result<(), tml_models::ModelError> {
/// let mut b = MdpBuilder::new(2);
/// b.choice(0, "risky", &[(0, 0.5), (1, 0.5)])?;
/// b.choice(0, "safe", &[(0, 1.0)])?;
/// b.choice(1, "stay", &[(1, 1.0)])?;
/// let mdp = b.build()?;
/// assert_eq!(mdp.num_choices(0), 2);
/// assert_eq!(mdp.action_name(mdp.choices(0)[0].action), "risky");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mdp {
    states: Vec<Vec<Choice>>,
    action_names: Vec<String>,
    initial: usize,
    labeling: Labeling,
    rewards: BTreeMap<String, RewardStructure>,
}

impl Mdp {
    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// Total number of state–choice pairs.
    pub fn total_choices(&self) -> usize {
        self.states.iter().map(Vec::len).sum()
    }

    /// Number of choices available in `state`.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn num_choices(&self, state: usize) -> usize {
        self.states[state].len()
    }

    /// The choices of `state`.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn choices(&self, state: usize) -> &[Choice] {
        &self.states[state]
    }

    /// The initial state.
    pub fn initial_state(&self) -> usize {
        self.initial
    }

    /// The state labeling.
    pub fn labeling(&self) -> &Labeling {
        &self.labeling
    }

    /// The global table of action names.
    pub fn action_names(&self) -> &[String] {
        &self.action_names
    }

    /// Resolves an action id to its name.
    ///
    /// # Panics
    ///
    /// Panics if `action` is not a valid id.
    pub fn action_name(&self, action: usize) -> &str {
        &self.action_names[action]
    }

    /// Looks up an action id by name.
    pub fn action_id(&self, name: &str) -> Option<usize> {
        self.action_names.iter().position(|a| a == name)
    }

    /// Returns the index of the choice with the given action id in `state`,
    /// if that action is available there.
    pub fn choice_for_action(&self, state: usize, action: usize) -> Option<usize> {
        self.states.get(state)?.iter().position(|c| c.action == action)
    }

    /// Looks up a reward structure by name.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NotFound`] if no structure has that name.
    pub fn reward_structure(&self, name: &str) -> Result<&RewardStructure, ModelError> {
        self.rewards
            .get(name)
            .ok_or_else(|| ModelError::NotFound { kind: "reward structure", name: name.to_owned() })
    }

    /// The reward structure used when a property does not name one.
    pub fn default_reward_structure(&self) -> Option<&RewardStructure> {
        self.rewards.values().next()
    }

    /// Iterates over all reward structures in name order.
    pub fn reward_structures(&self) -> impl Iterator<Item = &RewardStructure> {
        self.rewards.values()
    }

    /// Induces the DTMC obtained by resolving every state with the given
    /// per-state choice indices, folding choice rewards into state rewards.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::PolicyMismatch`] if `choice_of` has the wrong
    /// length or selects a nonexistent choice.
    pub fn induce(&self, choice_of: &[usize]) -> Result<Dtmc, ModelError> {
        if choice_of.len() != self.num_states() {
            return Err(ModelError::PolicyMismatch {
                detail: format!(
                    "policy covers {} states, model has {}",
                    choice_of.len(),
                    self.num_states()
                ),
            });
        }
        let mut b = DtmcBuilder::new(self.num_states());
        b.initial_state(self.initial)?;
        for (s, &c) in choice_of.iter().enumerate() {
            let choices = &self.states[s];
            let choice = choices.get(c).ok_or_else(|| ModelError::PolicyMismatch {
                detail: format!("state {s} has {} choices, policy picked {c}", choices.len()),
            })?;
            for &(t, p) in &choice.transitions {
                b.transition(s, t, p)?;
            }
        }
        for s in 0..self.num_states() {
            for label in self.labeling.labels_of(s) {
                b.label(s, label)?;
            }
        }
        for rs in self.rewards.values() {
            for (s, &choice) in choice_of.iter().enumerate() {
                b.state_reward(rs.name(), s, rs.step_reward(s, choice))?;
            }
        }
        b.build()
    }

    /// Samples a path of at most `max_steps` transitions starting at the
    /// initial state, resolving nondeterminism with `pick` (which receives
    /// the current state and must return a valid choice index) and stopping
    /// early when `stop` holds.
    pub fn sample_path<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        max_steps: usize,
        mut pick: impl FnMut(&mut R, usize) -> usize,
        stop: impl Fn(usize) -> bool,
    ) -> Path {
        let mut states = vec![self.initial];
        let mut actions = Vec::new();
        let mut current = self.initial;
        for _ in 0..max_steps {
            if stop(current) {
                break;
            }
            let c = pick(rng, current);
            let choice = &self.states[current][c];
            actions.push(choice.action);
            current = sample_from(rng, &choice.transitions);
            states.push(current);
        }
        Path { states, actions }
    }
}

fn sample_from<R: Rng + ?Sized>(rng: &mut R, dist: &[(usize, f64)]) -> usize {
    let mut u: f64 = rng.random_range(0.0..1.0);
    for &(succ, p) in dist {
        if u < p {
            return succ;
        }
        u -= p;
    }
    dist.last().map(|&(s, _)| s).expect("choice has at least one transition")
}

/// Incremental builder for [`Mdp`].
#[derive(Debug, Clone)]
pub struct MdpBuilder {
    num_states: usize,
    states: Vec<Vec<(usize, BTreeMap<usize, f64>)>>,
    action_names: Vec<String>,
    initial: usize,
    labeling: Labeling,
    rewards: BTreeMap<String, RewardStructure>,
}

impl MdpBuilder {
    /// Creates a builder for an MDP with `num_states` states.
    pub fn new(num_states: usize) -> Self {
        MdpBuilder {
            num_states,
            states: vec![Vec::new(); num_states],
            action_names: Vec::new(),
            initial: 0,
            labeling: Labeling::new(num_states),
            rewards: BTreeMap::new(),
        }
    }

    /// Sets the initial state (default `0`).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::StateOutOfBounds`] if out of range.
    pub fn initial_state(&mut self, state: usize) -> Result<&mut Self, ModelError> {
        self.check_state(state)?;
        self.initial = state;
        Ok(self)
    }

    /// Adds a choice named `action` to `state` with the given successor
    /// distribution. Returns the choice's index within the state.
    ///
    /// # Errors
    ///
    /// * [`ModelError::StateOutOfBounds`] for bad indices.
    /// * [`ModelError::InvalidProbability`] for probabilities outside `[0,1]`.
    /// * [`ModelError::NotStochastic`] if the distribution does not sum to 1.
    pub fn choice(
        &mut self,
        state: usize,
        action: &str,
        dist: &[(usize, f64)],
    ) -> Result<usize, ModelError> {
        self.check_state(state)?;
        let mut row = BTreeMap::new();
        let mut sum = 0.0;
        for &(t, p) in dist {
            self.check_state(t)?;
            if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                return Err(ModelError::InvalidProbability {
                    value: p,
                    context: format!("choice {action:?} in state {state}"),
                });
            }
            if p > 0.0 {
                *row.entry(t).or_insert(0.0) += p;
                sum += p;
            }
        }
        if (sum - 1.0).abs() > STOCHASTIC_TOLERANCE {
            return Err(ModelError::NotStochastic { state, sum });
        }
        let action_id = match self.action_names.iter().position(|a| a == action) {
            Some(i) => i,
            None => {
                self.action_names.push(action.to_owned());
                self.action_names.len() - 1
            }
        };
        self.states[state].push((action_id, row));
        Ok(self.states[state].len() - 1)
    }

    /// Attaches `label` to `state`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::StateOutOfBounds`] if out of range.
    pub fn label(&mut self, state: usize, label: &str) -> Result<&mut Self, ModelError> {
        self.labeling.add(state, label)?;
        Ok(self)
    }

    /// Sets the per-step reward of `state` in the named structure.
    ///
    /// # Errors
    ///
    /// Propagates [`RewardStructure::set_state_reward`] errors.
    pub fn state_reward(
        &mut self,
        structure: &str,
        state: usize,
        value: f64,
    ) -> Result<&mut Self, ModelError> {
        let n = self.num_states;
        self.rewards
            .entry(structure.to_owned())
            .or_insert_with(|| RewardStructure::new(structure, n))
            .set_state_reward(state, value)?;
        Ok(self)
    }

    /// Sets the extra reward for taking choice index `choice` in `state`.
    ///
    /// # Errors
    ///
    /// Propagates [`RewardStructure::set_choice_reward`] errors.
    pub fn choice_reward(
        &mut self,
        structure: &str,
        state: usize,
        choice: usize,
        value: f64,
    ) -> Result<&mut Self, ModelError> {
        let n = self.num_states;
        self.rewards
            .entry(structure.to_owned())
            .or_insert_with(|| RewardStructure::new(structure, n))
            .set_choice_reward(state, choice, value)?;
        Ok(self)
    }

    /// Validates and freezes the MDP.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::MissingDistribution`] if any state offers no
    /// choice.
    pub fn build(&self) -> Result<Mdp, ModelError> {
        let mut states = Vec::with_capacity(self.num_states);
        for (state, choices) in self.states.iter().enumerate() {
            if choices.is_empty() {
                return Err(ModelError::MissingDistribution { state });
            }
            states.push(
                choices
                    .iter()
                    .map(|(action, row)| Choice {
                        action: *action,
                        transitions: row.iter().map(|(&t, &p)| (t, p)).collect(),
                    })
                    .collect(),
            );
        }
        Ok(Mdp {
            states,
            action_names: self.action_names.clone(),
            initial: self.initial,
            labeling: self.labeling.clone(),
            rewards: self.rewards.clone(),
        })
    }

    fn check_state(&self, state: usize) -> Result<(), ModelError> {
        if state >= self.num_states {
            return Err(ModelError::StateOutOfBounds { state, num_states: self.num_states });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_mdp() -> Mdp {
        let mut b = MdpBuilder::new(3);
        b.choice(0, "a", &[(1, 0.5), (2, 0.5)]).unwrap();
        b.choice(0, "b", &[(2, 1.0)]).unwrap();
        b.choice(1, "a", &[(1, 1.0)]).unwrap();
        b.choice(2, "a", &[(2, 1.0)]).unwrap();
        b.label(2, "goal").unwrap();
        b.state_reward("cost", 0, 1.0).unwrap();
        b.choice_reward("cost", 0, 1, 0.5).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn builder_and_accessors() {
        let m = sample_mdp();
        assert_eq!(m.num_states(), 3);
        assert_eq!(m.total_choices(), 4);
        assert_eq!(m.num_choices(0), 2);
        assert_eq!(m.action_names(), &["a".to_owned(), "b".to_owned()]);
        assert_eq!(m.action_id("b"), Some(1));
        assert_eq!(m.action_id("zzz"), None);
        assert_eq!(m.choice_for_action(0, 1), Some(1));
        assert_eq!(m.choice_for_action(1, 1), None);
        assert_eq!(m.action_name(0), "a");
    }

    #[test]
    fn build_rejects_choiceless_state() {
        let mut b = MdpBuilder::new(2);
        b.choice(0, "a", &[(0, 1.0)]).unwrap();
        assert!(matches!(b.build().unwrap_err(), ModelError::MissingDistribution { state: 1 }));
    }

    #[test]
    fn choice_validation() {
        let mut b = MdpBuilder::new(1);
        assert!(b.choice(0, "a", &[(0, 0.9)]).is_err());
        assert!(b.choice(0, "a", &[(0, -0.1), (0, 1.1)]).is_err());
        assert!(b.choice(5, "a", &[(0, 1.0)]).is_err());
        assert!(b.choice(0, "a", &[(7, 1.0)]).is_err());
    }

    #[test]
    fn induce_folds_rewards_and_labels() {
        let m = sample_mdp();
        let d = m.induce(&[1, 0, 0]).unwrap();
        assert_eq!(d.probability(0, 2), 1.0);
        assert!(d.labeling().has(2, "goal"));
        // state reward 1.0 + choice reward 0.5 for choice index 1 in state 0
        assert_eq!(d.reward_structure("cost").unwrap().state_reward(0), 1.5);

        let d2 = m.induce(&[0, 0, 0]).unwrap();
        assert_eq!(d2.probability(0, 1), 0.5);
        assert_eq!(d2.reward_structure("cost").unwrap().state_reward(0), 1.0);
    }

    #[test]
    fn induce_rejects_bad_policy() {
        let m = sample_mdp();
        assert!(m.induce(&[0, 0]).is_err());
        assert!(m.induce(&[5, 0, 0]).is_err());
    }

    #[test]
    fn sample_path_respects_picker() {
        let m = sample_mdp();
        let mut rng = StdRng::seed_from_u64(3);
        // Always pick the last available choice: in state 0 that is "b",
        // which moves to the absorbing goal state 2 with certainty.
        let path = m.sample_path(&mut rng, 10, |_, s| m.num_choices(s) - 1, |s| s == 2);
        assert_eq!(path.states[0], 0);
        assert_eq!(*path.states.last().unwrap(), 2);
        assert_eq!(path.actions.len(), path.states.len() - 1);
    }

    #[test]
    fn duplicate_action_names_are_interned() {
        let m = sample_mdp();
        // "a" used in three states but appears once in the table
        assert_eq!(m.action_names().iter().filter(|n| *n == "a").count(), 1);
    }
}
