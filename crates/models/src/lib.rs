//! Markov chains and Markov decision processes for trusted machine learning.
//!
//! This crate provides the modelling layer of the `trusted-ml` workspace:
//!
//! * [`Dtmc`] / [`DtmcBuilder`] — discrete-time Markov chains with state
//!   labels and named reward structures.
//! * [`Mdp`] / [`MdpBuilder`] — Markov decision processes whose states offer
//!   named action choices.
//! * [`DeterministicPolicy`] / [`StochasticPolicy`] — schedulers, and the
//!   DTMC induced by running an MDP under a policy.
//! * [`graph`] — qualitative precomputations (`Prob0`/`Prob1` for DTMCs and
//!   their four MDP variants) that exact PCTL model checking requires.
//! * [`Path`] and simulation — sampling trajectories from models.
//! * [`learn`] — maximum-likelihood estimation of transition probabilities
//!   from trace datasets, the `ML(D)` procedure of the TML pipeline.
//! * [`interval`] — interval DTMCs/MDPs whose transitions carry `[lo, hi]`
//!   probability bounds, calibrated from trace counts for robust checking.
//!
//! # Example
//!
//! Build a "try until success" chain:
//!
//! ```
//! use tml_models::DtmcBuilder;
//!
//! # fn main() -> Result<(), tml_models::ModelError> {
//! let mut b = DtmcBuilder::new(2);
//! b.transition(0, 0, 0.1)?;
//! b.transition(0, 1, 0.9)?;
//! b.transition(1, 1, 1.0)?;
//! b.label(1, "done")?;
//! b.state_reward("attempts", 0, 1.0)?;
//! let chain = b.build()?;
//! assert_eq!(chain.num_states(), 2);
//! assert!(chain.labeling().has(1, "done"));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dsl;
mod dtmc;
mod error;
pub mod graph;
pub mod interval;
mod label;
pub mod learn;
mod mdp;
mod path;
mod policy;
mod reward;

pub use dtmc::{Dtmc, DtmcBuilder};
pub use error::ModelError;
pub use interval::{
    IntervalChoice, IntervalDtmc, IntervalDtmcBuilder, IntervalMdp, IntervalMdpBuilder,
};
pub use label::Labeling;
pub use learn::{MlOptions, TraceDataset, WeightedTrace};
pub use mdp::{Choice, Mdp, MdpBuilder};
pub use path::Path;
pub use policy::{DeterministicPolicy, StochasticPolicy};
pub use reward::RewardStructure;

/// Tolerance used when validating that outgoing probabilities sum to one.
pub const STOCHASTIC_TOLERANCE: f64 = 1e-9;
