use std::error::Error;
use std::fmt;

/// Errors raised while constructing or manipulating probabilistic models.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ModelError {
    /// A state index exceeded the number of states.
    StateOutOfBounds {
        /// The offending state index.
        state: usize,
        /// Number of states in the model.
        num_states: usize,
    },
    /// A probability was negative, non-finite, or above one.
    InvalidProbability {
        /// The offending value.
        value: f64,
        /// Where it occurred, for diagnostics.
        context: String,
    },
    /// The outgoing probabilities of a state (or choice) do not sum to one.
    NotStochastic {
        /// The state whose distribution is broken.
        state: usize,
        /// The actual row sum.
        sum: f64,
    },
    /// A state has no outgoing transition (DTMC) or no choice (MDP).
    MissingDistribution {
        /// The deadlocked state.
        state: usize,
    },
    /// A reward was negative or non-finite where a non-negative finite value
    /// is required.
    InvalidReward {
        /// The offending value.
        value: f64,
        /// Where it occurred.
        context: String,
    },
    /// A named entity (reward structure, action, label) was not found.
    NotFound {
        /// What kind of entity was looked up.
        kind: &'static str,
        /// The name that failed to resolve.
        name: String,
    },
    /// A policy is incompatible with the MDP it is applied to.
    PolicyMismatch {
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// A dataset or trace was malformed.
    InvalidTrace {
        /// Human-readable description of the problem.
        detail: String,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::StateOutOfBounds { state, num_states } => {
                write!(f, "state {state} out of bounds for model with {num_states} states")
            }
            ModelError::InvalidProbability { value, context } => {
                write!(f, "invalid probability {value} ({context})")
            }
            ModelError::NotStochastic { state, sum } => {
                write!(f, "outgoing probabilities of state {state} sum to {sum}, expected 1")
            }
            ModelError::MissingDistribution { state } => {
                write!(f, "state {state} has no outgoing distribution")
            }
            ModelError::InvalidReward { value, context } => {
                write!(f, "invalid reward {value} ({context})")
            }
            ModelError::NotFound { kind, name } => write!(f, "unknown {kind} {name:?}"),
            ModelError::PolicyMismatch { detail } => write!(f, "policy mismatch: {detail}"),
            ModelError::InvalidTrace { detail } => write!(f, "invalid trace: {detail}"),
        }
    }
}

impl Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let errs: Vec<ModelError> = vec![
            ModelError::StateOutOfBounds { state: 9, num_states: 3 },
            ModelError::InvalidProbability { value: -0.5, context: "transition".into() },
            ModelError::NotStochastic { state: 0, sum: 0.9 },
            ModelError::MissingDistribution { state: 2 },
            ModelError::InvalidReward { value: f64::NAN, context: "state reward".into() },
            ModelError::NotFound { kind: "label", name: "goal".into() },
            ModelError::PolicyMismatch { detail: "choice 4 of 2".into() },
            ModelError::InvalidTrace { detail: "empty".into() },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ModelError>();
    }
}
