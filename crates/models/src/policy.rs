use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

use crate::{Dtmc, Mdp, ModelError};

/// A deterministic memoryless policy: one choice index per state.
///
/// Choice indices refer to positions in [`Mdp::choices`], not action ids —
/// this makes a policy unambiguous even when a state offers the same action
/// name twice.
///
/// # Example
///
/// ```
/// use tml_models::{MdpBuilder, DeterministicPolicy};
///
/// # fn main() -> Result<(), tml_models::ModelError> {
/// let mut b = MdpBuilder::new(2);
/// b.choice(0, "go", &[(1, 1.0)])?;
/// b.choice(0, "stay", &[(0, 1.0)])?;
/// b.choice(1, "stay", &[(1, 1.0)])?;
/// let mdp = b.build()?;
/// let pi = DeterministicPolicy::new(vec![0, 0]);
/// let chain = pi.induce(&mdp)?;
/// assert_eq!(chain.probability(0, 1), 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeterministicPolicy {
    choices: Vec<usize>,
}

impl DeterministicPolicy {
    /// Wraps a vector of per-state choice indices.
    pub fn new(choices: Vec<usize>) -> Self {
        DeterministicPolicy { choices }
    }

    /// The uniform "first choice everywhere" policy for an MDP.
    pub fn first_choice(mdp: &Mdp) -> Self {
        DeterministicPolicy { choices: vec![0; mdp.num_states()] }
    }

    /// The choice index selected in `state`.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn choice(&self, state: usize) -> usize {
        self.choices[state]
    }

    /// Borrow the underlying choice vector.
    pub fn choices(&self) -> &[usize] {
        &self.choices
    }

    /// Number of states covered.
    pub fn num_states(&self) -> usize {
        self.choices.len()
    }

    /// The DTMC obtained by running `mdp` under this policy.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::PolicyMismatch`] if the policy does not fit the
    /// MDP.
    pub fn induce(&self, mdp: &Mdp) -> Result<Dtmc, ModelError> {
        mdp.induce(&self.choices)
    }

    /// The action ids this policy takes, per state.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::PolicyMismatch`] if the policy does not fit the
    /// MDP.
    pub fn action_ids(&self, mdp: &Mdp) -> Result<Vec<usize>, ModelError> {
        if self.choices.len() != mdp.num_states() {
            return Err(ModelError::PolicyMismatch {
                detail: format!(
                    "policy covers {} states, model has {}",
                    self.choices.len(),
                    mdp.num_states()
                ),
            });
        }
        self.choices
            .iter()
            .enumerate()
            .map(|(s, &c)| {
                mdp.choices(s).get(c).map(|ch| ch.action).ok_or_else(|| {
                    ModelError::PolicyMismatch {
                        detail: format!(
                            "state {s} has {} choices, policy picked {c}",
                            mdp.num_choices(s)
                        ),
                    }
                })
            })
            .collect()
    }
}

/// A stochastic memoryless policy: a distribution over choice indices per
/// state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StochasticPolicy {
    probs: Vec<Vec<f64>>,
}

impl StochasticPolicy {
    /// Wraps per-state distributions over choice indices.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidProbability`] if any entry is negative
    /// or non-finite, or a row does not sum to one (tolerance 1e-9). Empty
    /// rows are rejected.
    pub fn new(probs: Vec<Vec<f64>>) -> Result<Self, ModelError> {
        for (s, row) in probs.iter().enumerate() {
            if row.is_empty() {
                return Err(ModelError::MissingDistribution { state: s });
            }
            let mut sum = 0.0;
            for &p in row {
                if !p.is_finite() || p < 0.0 {
                    return Err(ModelError::InvalidProbability {
                        value: p,
                        context: format!("policy distribution in state {s}"),
                    });
                }
                sum += p;
            }
            if (sum - 1.0).abs() > 1e-9 {
                return Err(ModelError::NotStochastic { state: s, sum });
            }
        }
        Ok(StochasticPolicy { probs })
    }

    /// The uniform policy over the choices of `mdp`.
    pub fn uniform(mdp: &Mdp) -> Self {
        let probs = (0..mdp.num_states())
            .map(|s| {
                let k = mdp.num_choices(s);
                vec![1.0 / k as f64; k]
            })
            .collect();
        StochasticPolicy { probs }
    }

    /// Number of states covered.
    pub fn num_states(&self) -> usize {
        self.probs.len()
    }

    /// The probability of picking choice `c` in `state`.
    pub fn prob(&self, state: usize, c: usize) -> f64 {
        self.probs.get(state).and_then(|r| r.get(c)).copied().unwrap_or(0.0)
    }

    /// Samples a choice index for `state`.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, state: usize) -> usize {
        let row = &self.probs[state];
        let mut u: f64 = rng.random_range(0.0..1.0);
        for (c, &p) in row.iter().enumerate() {
            if u < p {
                return c;
            }
            u -= p;
        }
        row.len() - 1
    }

    /// The DTMC obtained by running `mdp` under this policy (mixing the
    /// choice distributions), folding expected choice rewards into state
    /// rewards.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::PolicyMismatch`] if shapes do not line up.
    pub fn induce(&self, mdp: &Mdp) -> Result<Dtmc, ModelError> {
        if self.probs.len() != mdp.num_states() {
            return Err(ModelError::PolicyMismatch {
                detail: format!(
                    "policy covers {} states, model has {}",
                    self.probs.len(),
                    mdp.num_states()
                ),
            });
        }
        let mut b = crate::DtmcBuilder::new(mdp.num_states());
        b.initial_state(mdp.initial_state())?;
        for s in 0..mdp.num_states() {
            let row = &self.probs[s];
            if row.len() != mdp.num_choices(s) {
                return Err(ModelError::PolicyMismatch {
                    detail: format!(
                        "state {s}: policy has {} choice probabilities, model offers {}",
                        row.len(),
                        mdp.num_choices(s)
                    ),
                });
            }
            for (c, &pc) in row.iter().enumerate() {
                if pc == 0.0 {
                    continue;
                }
                for &(t, p) in &mdp.choices(s)[c].transitions {
                    b.transition(s, t, pc * p)?;
                }
            }
            for label in mdp.labeling().labels_of(s) {
                b.label(s, label)?;
            }
        }
        for rs in mdp.reward_structures() {
            for s in 0..mdp.num_states() {
                let expected: f64 = self.probs[s]
                    .iter()
                    .enumerate()
                    .map(|(c, &pc)| pc * rs.step_reward(s, c))
                    .sum();
                b.state_reward(rs.name(), s, expected)?;
            }
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MdpBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mdp() -> Mdp {
        let mut b = MdpBuilder::new(2);
        b.choice(0, "go", &[(1, 1.0)]).unwrap();
        b.choice(0, "stay", &[(0, 1.0)]).unwrap();
        b.choice(1, "stay", &[(1, 1.0)]).unwrap();
        b.label(1, "goal").unwrap();
        b.state_reward("cost", 0, 1.0).unwrap();
        b.choice_reward("cost", 0, 1, 1.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn deterministic_policy_induces() {
        let m = mdp();
        let pi = DeterministicPolicy::new(vec![0, 0]);
        let d = pi.induce(&m).unwrap();
        assert_eq!(d.probability(0, 1), 1.0);
        assert_eq!(pi.action_ids(&m).unwrap(), vec![0, 1]);
        assert_eq!(pi.choice(0), 0);
        assert_eq!(pi.num_states(), 2);
    }

    #[test]
    fn first_choice_policy() {
        let m = mdp();
        let pi = DeterministicPolicy::first_choice(&m);
        assert_eq!(pi.choices(), &[0, 0]);
    }

    #[test]
    fn action_ids_detects_mismatch() {
        let m = mdp();
        assert!(DeterministicPolicy::new(vec![0]).action_ids(&m).is_err());
        assert!(DeterministicPolicy::new(vec![9, 0]).action_ids(&m).is_err());
    }

    #[test]
    fn stochastic_policy_mixes() {
        let m = mdp();
        let pi = StochasticPolicy::new(vec![vec![0.25, 0.75], vec![1.0]]).unwrap();
        let d = pi.induce(&m).unwrap();
        assert!((d.probability(0, 1) - 0.25).abs() < 1e-12);
        assert!((d.probability(0, 0) - 0.75).abs() < 1e-12);
        // expected reward: 1.0 state + 0.75 * 1.0 choice reward
        assert!((d.reward_structure("cost").unwrap().state_reward(0) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn stochastic_validation() {
        assert!(StochasticPolicy::new(vec![vec![0.5, 0.4]]).is_err());
        assert!(StochasticPolicy::new(vec![vec![-0.5, 1.5]]).is_err());
        assert!(StochasticPolicy::new(vec![vec![]]).is_err());
    }

    #[test]
    fn uniform_policy_sums_to_one() {
        let m = mdp();
        let pi = StochasticPolicy::uniform(&m);
        assert_eq!(pi.prob(0, 0), 0.5);
        assert_eq!(pi.prob(1, 0), 1.0);
        assert_eq!(pi.prob(5, 0), 0.0);
    }

    #[test]
    fn stochastic_sampling_frequencies() {
        let m = mdp();
        let pi = StochasticPolicy::new(vec![vec![0.3, 0.7], vec![1.0]]).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let zeros = (0..n).filter(|_| pi.sample(&mut rng, 0) == 0).count();
        let frac = zeros as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.02, "got {frac}");
        let _ = m;
    }

    #[test]
    fn stochastic_induce_shape_mismatch() {
        let m = mdp();
        let pi = StochasticPolicy::new(vec![vec![1.0]]).unwrap();
        assert!(pi.induce(&m).is_err());
        let pi2 = StochasticPolicy::new(vec![vec![1.0], vec![1.0]]).unwrap();
        assert!(pi2.induce(&m).is_err()); // state 0 offers 2 choices
    }
}
