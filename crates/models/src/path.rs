use serde::{Deserialize, Serialize};

use crate::ModelError;

/// A finite trajectory `(s₀, a₀), (s₁, a₁), …, sₙ` through an MDP (or, with
/// `actions` empty or action ids from a singleton table, through a DTMC).
///
/// Invariant: `actions.len() + 1 == states.len()` for MDP paths, or
/// `actions.is_empty()` for plain state traces.
///
/// # Example
///
/// ```
/// use tml_models::Path;
///
/// # fn main() -> Result<(), tml_models::ModelError> {
/// let p = Path::with_actions(vec![0, 1, 4], vec![2, 0])?;
/// assert_eq!(p.len(), 2);
/// assert_eq!(p.state(1), Some(1));
/// assert_eq!(p.action(0), Some(2));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Path {
    /// Visited states, in order.
    pub states: Vec<usize>,
    /// Action id taken at each non-final state (may be empty for DTMC traces).
    pub actions: Vec<usize>,
}

impl Path {
    /// A path consisting of states only (a DTMC trace).
    pub fn from_states(states: Vec<usize>) -> Self {
        Path { states, actions: Vec::new() }
    }

    /// A path with explicit actions.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidTrace`] unless
    /// `actions.len() + 1 == states.len()`.
    pub fn with_actions(states: Vec<usize>, actions: Vec<usize>) -> Result<Self, ModelError> {
        if states.is_empty() {
            return Err(ModelError::InvalidTrace {
                detail: "path must contain at least one state".into(),
            });
        }
        if actions.len() + 1 != states.len() {
            return Err(ModelError::InvalidTrace {
                detail: format!("{} states but {} actions", states.len(), actions.len()),
            });
        }
        Ok(Path { states, actions })
    }

    /// Number of transitions (not states) in the path.
    pub fn len(&self) -> usize {
        self.states.len().saturating_sub(1)
    }

    /// Whether the path has no transitions.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of positions (states) in the path.
    pub fn num_positions(&self) -> usize {
        self.states.len()
    }

    /// The state at position `i`, if in range.
    pub fn state(&self, i: usize) -> Option<usize> {
        self.states.get(i).copied()
    }

    /// The action taken at position `i`, if recorded.
    pub fn action(&self, i: usize) -> Option<usize> {
        self.actions.get(i).copied()
    }

    /// The final state.
    ///
    /// # Panics
    ///
    /// Panics if the path is completely empty (which constructors prevent).
    pub fn last_state(&self) -> usize {
        *self.states.last().expect("path has at least one state")
    }

    /// Iterates over `(state, Some(action))` pairs followed by the terminal
    /// `(state, None)`.
    pub fn steps(&self) -> impl Iterator<Item = (usize, Option<usize>)> + '_ {
        self.states.iter().enumerate().map(|(i, &s)| (s, self.actions.get(i).copied()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let p = Path::with_actions(vec![3, 1, 0], vec![0, 1]).unwrap();
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
        assert_eq!(p.num_positions(), 3);
        assert_eq!(p.last_state(), 0);
        assert_eq!(p.state(0), Some(3));
        assert_eq!(p.state(9), None);
        assert_eq!(p.action(1), Some(1));
        assert_eq!(p.action(2), None);
        let steps: Vec<_> = p.steps().collect();
        assert_eq!(steps, vec![(3, Some(0)), (1, Some(1)), (0, None)]);
    }

    #[test]
    fn from_states_has_no_actions() {
        let p = Path::from_states(vec![0, 1]);
        assert_eq!(p.len(), 1);
        assert_eq!(p.action(0), None);
    }

    #[test]
    fn invalid_shapes_rejected() {
        assert!(Path::with_actions(vec![], vec![]).is_err());
        assert!(Path::with_actions(vec![0, 1], vec![]).is_err());
        assert!(Path::with_actions(vec![0], vec![1]).is_err());
    }

    #[test]
    fn singleton_path_is_empty() {
        let p = Path::from_states(vec![7]);
        assert!(p.is_empty());
        assert_eq!(p.last_state(), 7);
    }
}
