//! Interval Markov chains and MDPs: transition probabilities as
//! `[lo, hi]` ranges instead of point values.
//!
//! An [`IntervalDtmc`] describes an *uncertainty set* of DTMCs: every
//! stochastic matrix `P` with `lo(s,t) ≤ P(s,t) ≤ hi(s,t)` row-wise is a
//! member. Robust verification (see the checker's `robust` module)
//! computes pessimistic/optimistic value bounds over all members, which is
//! what makes repair sound against the estimation error of a learned
//! model. Interval models are built three ways:
//!
//! * explicitly, via [`IntervalDtmcBuilder`] or the DSL's `LO..HI`
//!   transition syntax (`0 -> 1: 0.1..0.3`);
//! * by widening a concrete chain: [`IntervalDtmc::from_dtmc`] (fixed
//!   half-width) or [`IntervalDtmc::wilson_around`] (per-transition Wilson
//!   confidence intervals at a given level);
//! * statistically from trace counts: `learn::interval_dtmc_from_traces`.
//!
//! Row validity requires a non-empty polytope: `Σ lo ≤ 1 ≤ Σ hi` and
//! `0 ≤ lo ≤ hi ≤ 1` per entry. The validating builders enforce this; the
//! `unchecked` builders skip it so fault-injection tests can hand malformed
//! sets to the checker, which re-validates and reports structured errors.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::{Dtmc, DtmcBuilder, Labeling, ModelError, RewardStructure, STOCHASTIC_TOLERANCE};

/// One uncertain transition: `(target, lo, hi)`.
pub type IntervalTransition = (usize, f64, f64);

/// A discrete-time Markov chain with interval-valued transition
/// probabilities.
///
/// # Example
///
/// ```
/// use tml_models::interval::IntervalDtmcBuilder;
///
/// # fn main() -> Result<(), tml_models::ModelError> {
/// let mut b = IntervalDtmcBuilder::new(2);
/// b.transition(0, 0, 0.1, 0.3)?;
/// b.transition(0, 1, 0.7, 0.9)?;
/// b.transition(1, 1, 1.0, 1.0)?;
/// b.label(1, "done")?;
/// let m = b.build()?;
/// assert_eq!(m.num_states(), 2);
/// assert_eq!(m.bounds(0, 1), (0.7, 0.9));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IntervalDtmc {
    /// `transitions[s]` lists `(target, lo, hi)` sorted by target.
    transitions: Vec<Vec<IntervalTransition>>,
    initial: usize,
    labeling: Labeling,
    rewards: BTreeMap<String, RewardStructure>,
}

impl IntervalDtmc {
    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.transitions.len()
    }

    /// The initial state.
    pub fn initial_state(&self) -> usize {
        self.initial
    }

    /// The state labeling.
    pub fn labeling(&self) -> &Labeling {
        &self.labeling
    }

    /// The interval row of `state`: `(target, lo, hi)` sorted by target.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn row(&self, state: usize) -> &[IntervalTransition] {
        &self.transitions[state]
    }

    /// Iterates over the uncertain successors of `state`.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn successors(&self, state: usize) -> impl Iterator<Item = IntervalTransition> + '_ {
        self.transitions[state].iter().copied()
    }

    /// The `[lo, hi]` bounds of one transition (`(0, 0)` when absent).
    pub fn bounds(&self, from: usize, to: usize) -> (f64, f64) {
        self.transitions
            .get(from)
            .and_then(|row| row.iter().find(|&&(t, _, _)| t == to))
            .map(|&(_, lo, hi)| (lo, hi))
            .unwrap_or((0.0, 0.0))
    }

    /// Total number of uncertain transitions.
    pub fn num_transitions(&self) -> usize {
        self.transitions.iter().map(Vec::len).sum()
    }

    /// Looks up a reward structure by name.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NotFound`] if no structure has that name.
    pub fn reward_structure(&self, name: &str) -> Result<&RewardStructure, ModelError> {
        self.rewards
            .get(name)
            .ok_or_else(|| ModelError::NotFound { kind: "reward structure", name: name.to_owned() })
    }

    /// The reward structure used when a property does not name one.
    pub fn default_reward_structure(&self) -> Option<&RewardStructure> {
        self.rewards.values().next()
    }

    /// Iterates over all reward structures in name order.
    pub fn reward_structures(&self) -> impl Iterator<Item = &RewardStructure> {
        self.rewards.values()
    }

    /// Widens a concrete chain into the interval model
    /// `[max(p − half_width, 0), min(p + half_width, 1)]` per transition,
    /// keeping labels, rewards and the initial state. The original chain is
    /// always a member of the resulting set.
    pub fn from_dtmc(model: &Dtmc, half_width: f64) -> Self {
        let w = half_width.max(0.0);
        let transitions = (0..model.num_states())
            .map(|s| {
                model.successors(s).map(|(t, p)| (t, (p - w).max(0.0), (p + w).min(1.0))).collect()
            })
            .collect();
        IntervalDtmc {
            transitions,
            initial: model.initial_state(),
            labeling: model.labeling().clone(),
            rewards: model
                .reward_structures()
                .map(|rs| (rs.name().to_owned(), rs.clone()))
                .collect(),
        }
    }

    /// The degenerate interval model `[p, p]` — its uncertainty set is the
    /// singleton `{model}`, so robust values coincide with the scalar
    /// checker's.
    pub fn degenerate(model: &Dtmc) -> Self {
        Self::from_dtmc(model, 0.0)
    }

    /// Widens a concrete chain with per-transition **Wilson score
    /// intervals** at the given `confidence` (e.g. `0.95`), treating each
    /// probability as an estimate from `sample_size` virtual observations
    /// per row. This is the uncertainty ball robust repair searches over
    /// when no trace counts are available (with counts, prefer
    /// `learn::interval_dtmc_from_traces`).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidProbability`] unless
    /// `confidence ∈ (0, 1)` and `sample_size > 0`.
    pub fn wilson_around(
        model: &Dtmc,
        confidence: f64,
        sample_size: f64,
    ) -> Result<Self, ModelError> {
        if !(confidence > 0.0 && confidence < 1.0 && confidence.is_finite()) {
            return Err(ModelError::InvalidProbability {
                value: confidence,
                context: "confidence level must be in (0, 1)".into(),
            });
        }
        if sample_size <= 0.0 || !sample_size.is_finite() {
            return Err(ModelError::InvalidProbability {
                value: sample_size,
                context: "virtual sample size must be positive".into(),
            });
        }
        let alpha = 1.0 - confidence;
        let transitions = (0..model.num_states())
            .map(|s| {
                model
                    .successors(s)
                    .map(|(t, p)| {
                        let ci = tml_numerics::stats::wilson_interval_weighted(
                            p * sample_size,
                            sample_size,
                            alpha,
                        );
                        // The Wilson interval always contains the point
                        // estimate, so the original chain stays a member.
                        (t, ci.low.min(p), ci.high.max(p))
                    })
                    .collect()
            })
            .collect();
        Ok(IntervalDtmc {
            transitions,
            initial: model.initial_state(),
            labeling: model.labeling().clone(),
            rewards: model
                .reward_structures()
                .map(|rs| (rs.name().to_owned(), rs.clone()))
                .collect(),
        })
    }

    /// Whether the concrete chain is a member of this uncertainty set:
    /// same state space, every probability inside its `[lo, hi]` (a
    /// transition absent here has the implicit bounds `[0, 0]`).
    pub fn contains(&self, model: &Dtmc) -> bool {
        if model.num_states() != self.num_states() {
            return false;
        }
        let tol = STOCHASTIC_TOLERANCE;
        for s in 0..self.num_states() {
            for (t, p) in model.successors(s) {
                let (lo, hi) = self.bounds(s, t);
                if p < lo - tol || p > hi + tol {
                    return false;
                }
            }
            // Entries with lo > 0 must be present in the member.
            for &(t, lo, _) in self.row(s) {
                if lo > tol && model.probability(s, t) < lo - tol {
                    return false;
                }
            }
        }
        true
    }

    /// The nominal chain at the (row-normalized) interval midpoints,
    /// carrying over labels, rewards and the initial state.
    ///
    /// # Errors
    ///
    /// Returns a [`ModelError`] when the midpoints cannot be normalized
    /// into a stochastic row (e.g. an all-zero row).
    pub fn nominal_dtmc(&self) -> Result<Dtmc, ModelError> {
        let mut b = DtmcBuilder::new(self.num_states());
        b.initial_state(self.initial)?;
        for s in 0..self.num_states() {
            let mids: Vec<(usize, f64)> =
                self.row(s).iter().map(|&(t, lo, hi)| (t, (lo + hi) / 2.0)).collect();
            let sum: f64 = mids.iter().map(|&(_, m)| m).sum();
            if sum <= 0.0 || !sum.is_finite() {
                return Err(ModelError::MissingDistribution { state: s });
            }
            for (t, m) in mids {
                if m > 0.0 {
                    b.transition(s, t, m / sum)?;
                }
            }
        }
        self.decorate(&mut b)?;
        b.build()
    }

    /// Deterministically samples a member chain of the uncertainty set:
    /// per row, start from the lower bounds and distribute the remaining
    /// mass `1 − Σ lo` across transitions by seeded fractions of their
    /// slack, topping up greedily so the row sums to one. The same seed
    /// always yields the same member.
    ///
    /// # Errors
    ///
    /// Returns a [`ModelError`] when a row polytope is empty (the set has
    /// no members).
    pub fn sample_member(&self, seed: u64) -> Result<Dtmc, ModelError> {
        let mut b = DtmcBuilder::new(self.num_states());
        b.initial_state(self.initial)?;
        for s in 0..self.num_states() {
            let row = self.row(s);
            if row.is_empty() {
                return Err(ModelError::MissingDistribution { state: s });
            }
            let mut probs: Vec<f64> = row.iter().map(|&(_, lo, _)| lo).collect();
            let mut budget = 1.0 - probs.iter().sum::<f64>();
            if budget < -STOCHASTIC_TOLERANCE {
                return Err(ModelError::NotStochastic { state: s, sum: 1.0 - budget });
            }
            // Pass 1: seeded fraction of each slack.
            for (i, &(t, lo, hi)) in row.iter().enumerate() {
                if budget <= 0.0 {
                    break;
                }
                let frac = splitmix_unit(
                    seed ^ (s as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        ^ (t as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9),
                );
                let take = ((hi - lo) * frac).min(budget);
                probs[i] += take;
                budget -= take;
            }
            // Pass 2: greedy top-up to exhaust the remaining mass.
            for (i, &(_, lo, hi)) in row.iter().enumerate() {
                if budget <= 0.0 {
                    break;
                }
                let take = (hi - lo - (probs[i] - lo)).min(budget).max(0.0);
                probs[i] += take;
                budget -= take;
            }
            if budget > STOCHASTIC_TOLERANCE {
                return Err(ModelError::NotStochastic { state: s, sum: 1.0 - budget });
            }
            // Absorb floating-point residue into any entry with headroom.
            if budget != 0.0 {
                for (i, &(_, lo, hi)) in row.iter().enumerate() {
                    let fixed = probs[i] + budget;
                    if fixed >= lo - STOCHASTIC_TOLERANCE && fixed <= hi + STOCHASTIC_TOLERANCE {
                        probs[i] = fixed.clamp(0.0, 1.0);
                        break;
                    }
                }
            }
            for (i, &(t, ..)) in row.iter().enumerate() {
                if probs[i] > 0.0 {
                    b.transition(s, t, probs[i])?;
                }
            }
        }
        self.decorate(&mut b)?;
        b.build()
    }

    fn decorate(&self, b: &mut DtmcBuilder) -> Result<(), ModelError> {
        for s in 0..self.num_states() {
            for label in self.labeling.labels_of(s) {
                b.label(s, label)?;
            }
        }
        for rs in self.rewards.values() {
            for s in 0..self.num_states() {
                let r = rs.state_reward(s);
                if r != 0.0 {
                    b.state_reward(rs.name(), s, r)?;
                }
            }
        }
        Ok(())
    }
}

/// Incremental builder for [`IntervalDtmc`].
#[derive(Debug, Clone)]
pub struct IntervalDtmcBuilder {
    num_states: usize,
    rows: Vec<BTreeMap<usize, (f64, f64)>>,
    initial: usize,
    labeling: Labeling,
    rewards: BTreeMap<String, RewardStructure>,
    validate: bool,
}

impl IntervalDtmcBuilder {
    /// Creates a validating builder for `num_states` states.
    pub fn new(num_states: usize) -> Self {
        IntervalDtmcBuilder {
            num_states,
            rows: vec![BTreeMap::new(); num_states],
            initial: 0,
            labeling: Labeling::new(num_states),
            rewards: BTreeMap::new(),
            validate: true,
        }
    }

    /// A builder that skips probability and row-polytope validation —
    /// state indices are still checked. Used by fault-injection tests to
    /// hand degenerate uncertainty sets (`lo > hi`, NaN endpoints, empty
    /// polytopes) to the checker, which must reject them with a structured
    /// error instead of building garbage silently.
    pub fn unchecked(num_states: usize) -> Self {
        IntervalDtmcBuilder { validate: false, ..Self::new(num_states) }
    }

    /// Sets the initial state (default `0`).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::StateOutOfBounds`] if out of range.
    pub fn initial_state(&mut self, state: usize) -> Result<&mut Self, ModelError> {
        self.check_state(state)?;
        self.initial = state;
        Ok(self)
    }

    /// Adds (or overwrites) the uncertain transition `from → to: [lo, hi]`.
    ///
    /// # Errors
    ///
    /// * [`ModelError::StateOutOfBounds`] for bad indices.
    /// * [`ModelError::InvalidProbability`] (validating builders only) for
    ///   non-finite endpoints, endpoints outside `[0, 1]`, or `lo > hi`.
    pub fn transition(
        &mut self,
        from: usize,
        to: usize,
        lo: f64,
        hi: f64,
    ) -> Result<&mut Self, ModelError> {
        self.check_state(from)?;
        self.check_state(to)?;
        if self.validate {
            for v in [lo, hi] {
                if !v.is_finite() || !(0.0..=1.0).contains(&v) {
                    return Err(ModelError::InvalidProbability {
                        value: v,
                        context: format!("interval transition {from} -> {to}"),
                    });
                }
            }
            if lo > hi {
                return Err(ModelError::InvalidProbability {
                    value: lo,
                    context: format!("inverted interval [{lo}, {hi}] on {from} -> {to}"),
                });
            }
        }
        self.rows[from].insert(to, (lo, hi));
        Ok(self)
    }

    /// Attaches `label` to `state`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::StateOutOfBounds`] if out of range.
    pub fn label(&mut self, state: usize, label: &str) -> Result<&mut Self, ModelError> {
        self.labeling.add(state, label)?;
        Ok(self)
    }

    /// Sets the per-step reward of `state` in the named structure.
    ///
    /// # Errors
    ///
    /// Propagates [`RewardStructure::set_state_reward`] errors.
    pub fn state_reward(
        &mut self,
        structure: &str,
        state: usize,
        value: f64,
    ) -> Result<&mut Self, ModelError> {
        let n = self.num_states;
        self.rewards
            .entry(structure.to_owned())
            .or_insert_with(|| RewardStructure::new(structure, n))
            .set_state_reward(state, value)?;
        Ok(self)
    }

    /// Validates and freezes the interval chain.
    ///
    /// # Errors
    ///
    /// Validating builders return [`ModelError::MissingDistribution`] for a
    /// state without transitions and [`ModelError::NotStochastic`] for an
    /// empty row polytope (`Σ lo > 1` or `Σ hi < 1`).
    pub fn build(&self) -> Result<IntervalDtmc, ModelError> {
        let mut transitions = Vec::with_capacity(self.num_states);
        for (state, row) in self.rows.iter().enumerate() {
            if self.validate {
                if row.is_empty() {
                    return Err(ModelError::MissingDistribution { state });
                }
                let lo_sum: f64 = row.values().map(|&(lo, _)| lo).sum();
                let hi_sum: f64 = row.values().map(|&(_, hi)| hi).sum();
                if lo_sum > 1.0 + STOCHASTIC_TOLERANCE {
                    return Err(ModelError::NotStochastic { state, sum: lo_sum });
                }
                if hi_sum < 1.0 - STOCHASTIC_TOLERANCE {
                    return Err(ModelError::NotStochastic { state, sum: hi_sum });
                }
            }
            transitions.push(row.iter().map(|(&t, &(lo, hi))| (t, lo, hi)).collect());
        }
        Ok(IntervalDtmc {
            transitions,
            initial: self.initial,
            labeling: self.labeling.clone(),
            rewards: self.rewards.clone(),
        })
    }

    fn check_state(&self, state: usize) -> Result<(), ModelError> {
        if state >= self.num_states {
            return Err(ModelError::StateOutOfBounds { state, num_states: self.num_states });
        }
        Ok(())
    }
}

/// One uncertain choice of an interval MDP: an action plus `[lo, hi]`
/// transition bounds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IntervalChoice {
    /// Index into [`IntervalMdp::action_names`].
    pub action: usize,
    /// `(successor, lo, hi)` triples, sorted by successor.
    pub transitions: Vec<IntervalTransition>,
}

/// A Markov decision process with interval-valued transition
/// probabilities: nondeterminism is resolved by the scheduler, the
/// residual probability uncertainty by nature (the adversary).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IntervalMdp {
    states: Vec<Vec<IntervalChoice>>,
    action_names: Vec<String>,
    initial: usize,
    labeling: Labeling,
    rewards: BTreeMap<String, RewardStructure>,
}

impl IntervalMdp {
    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// Number of choices available in `state`.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn num_choices(&self, state: usize) -> usize {
        self.states[state].len()
    }

    /// The choices of `state`.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn choices(&self, state: usize) -> &[IntervalChoice] {
        &self.states[state]
    }

    /// The initial state.
    pub fn initial_state(&self) -> usize {
        self.initial
    }

    /// The state labeling.
    pub fn labeling(&self) -> &Labeling {
        &self.labeling
    }

    /// The global table of action names.
    pub fn action_names(&self) -> &[String] {
        &self.action_names
    }

    /// Resolves an action id to its name.
    ///
    /// # Panics
    ///
    /// Panics if `action` is not a valid id.
    pub fn action_name(&self, action: usize) -> &str {
        &self.action_names[action]
    }

    /// Looks up a reward structure by name.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NotFound`] if no structure has that name.
    pub fn reward_structure(&self, name: &str) -> Result<&RewardStructure, ModelError> {
        self.rewards
            .get(name)
            .ok_or_else(|| ModelError::NotFound { kind: "reward structure", name: name.to_owned() })
    }

    /// The reward structure used when a property does not name one.
    pub fn default_reward_structure(&self) -> Option<&RewardStructure> {
        self.rewards.values().next()
    }

    /// Iterates over all reward structures in name order.
    pub fn reward_structures(&self) -> impl Iterator<Item = &RewardStructure> {
        self.rewards.values()
    }

    /// Widens a concrete MDP by `half_width` per transition, keeping
    /// actions, labels, rewards and the initial state.
    pub fn from_mdp(model: &crate::Mdp, half_width: f64) -> Self {
        let w = half_width.max(0.0);
        let states = (0..model.num_states())
            .map(|s| {
                model
                    .choices(s)
                    .iter()
                    .map(|c| IntervalChoice {
                        action: c.action,
                        transitions: c
                            .transitions
                            .iter()
                            .map(|&(t, p)| (t, (p - w).max(0.0), (p + w).min(1.0)))
                            .collect(),
                    })
                    .collect()
            })
            .collect();
        IntervalMdp {
            states,
            action_names: model.action_names().to_vec(),
            initial: model.initial_state(),
            labeling: model.labeling().clone(),
            rewards: model
                .reward_structures()
                .map(|rs| (rs.name().to_owned(), rs.clone()))
                .collect(),
        }
    }

    /// The degenerate interval MDP whose only member is `model`.
    pub fn degenerate(model: &crate::Mdp) -> Self {
        Self::from_mdp(model, 0.0)
    }
}

/// One state's choice list while building: `(action id, target → (lo, hi))`.
type IntervalChoices = Vec<(usize, BTreeMap<usize, (f64, f64)>)>;

/// Incremental builder for [`IntervalMdp`].
#[derive(Debug, Clone)]
pub struct IntervalMdpBuilder {
    num_states: usize,
    states: Vec<IntervalChoices>,
    action_names: Vec<String>,
    initial: usize,
    labeling: Labeling,
    rewards: BTreeMap<String, RewardStructure>,
    validate: bool,
}

impl IntervalMdpBuilder {
    /// Creates a validating builder for `num_states` states.
    pub fn new(num_states: usize) -> Self {
        IntervalMdpBuilder {
            num_states,
            states: vec![Vec::new(); num_states],
            action_names: Vec::new(),
            initial: 0,
            labeling: Labeling::new(num_states),
            rewards: BTreeMap::new(),
            validate: true,
        }
    }

    /// A builder that skips probability and row-polytope validation (see
    /// [`IntervalDtmcBuilder::unchecked`]).
    pub fn unchecked(num_states: usize) -> Self {
        IntervalMdpBuilder { validate: false, ..Self::new(num_states) }
    }

    /// Sets the initial state (default `0`).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::StateOutOfBounds`] if out of range.
    pub fn initial_state(&mut self, state: usize) -> Result<&mut Self, ModelError> {
        self.check_state(state)?;
        self.initial = state;
        Ok(self)
    }

    /// Adds a choice named `action` to `state` with uncertain successor
    /// bounds. Returns the choice's index within the state.
    ///
    /// # Errors
    ///
    /// * [`ModelError::StateOutOfBounds`] for bad indices.
    /// * [`ModelError::InvalidProbability`] (validating builders only) for
    ///   invalid or inverted interval endpoints.
    /// * [`ModelError::NotStochastic`] (validating builders only) for an
    ///   empty choice polytope.
    pub fn choice(
        &mut self,
        state: usize,
        action: &str,
        dist: &[IntervalTransition],
    ) -> Result<usize, ModelError> {
        self.check_state(state)?;
        let mut row = BTreeMap::new();
        for &(t, lo, hi) in dist {
            self.check_state(t)?;
            if self.validate {
                for v in [lo, hi] {
                    if !v.is_finite() || !(0.0..=1.0).contains(&v) {
                        return Err(ModelError::InvalidProbability {
                            value: v,
                            context: format!("choice {action:?} in state {state}"),
                        });
                    }
                }
                if lo > hi {
                    return Err(ModelError::InvalidProbability {
                        value: lo,
                        context: format!(
                            "inverted interval [{lo}, {hi}] in choice {action:?} of state {state}"
                        ),
                    });
                }
            }
            row.insert(t, (lo, hi));
        }
        if self.validate {
            if row.is_empty() {
                return Err(ModelError::MissingDistribution { state });
            }
            let lo_sum: f64 = row.values().map(|&(lo, _)| lo).sum();
            let hi_sum: f64 = row.values().map(|&(_, hi)| hi).sum();
            if lo_sum > 1.0 + STOCHASTIC_TOLERANCE {
                return Err(ModelError::NotStochastic { state, sum: lo_sum });
            }
            if hi_sum < 1.0 - STOCHASTIC_TOLERANCE {
                return Err(ModelError::NotStochastic { state, sum: hi_sum });
            }
        }
        let action_id = match self.action_names.iter().position(|a| a == action) {
            Some(i) => i,
            None => {
                self.action_names.push(action.to_owned());
                self.action_names.len() - 1
            }
        };
        self.states[state].push((action_id, row));
        Ok(self.states[state].len() - 1)
    }

    /// Attaches `label` to `state`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::StateOutOfBounds`] if out of range.
    pub fn label(&mut self, state: usize, label: &str) -> Result<&mut Self, ModelError> {
        self.labeling.add(state, label)?;
        Ok(self)
    }

    /// Sets the per-step reward of `state` in the named structure.
    ///
    /// # Errors
    ///
    /// Propagates [`RewardStructure::set_state_reward`] errors.
    pub fn state_reward(
        &mut self,
        structure: &str,
        state: usize,
        value: f64,
    ) -> Result<&mut Self, ModelError> {
        let n = self.num_states;
        self.rewards
            .entry(structure.to_owned())
            .or_insert_with(|| RewardStructure::new(structure, n))
            .set_state_reward(state, value)?;
        Ok(self)
    }

    /// Sets the extra reward for taking choice index `choice` in `state`.
    ///
    /// # Errors
    ///
    /// Propagates [`RewardStructure::set_choice_reward`] errors.
    pub fn choice_reward(
        &mut self,
        structure: &str,
        state: usize,
        choice: usize,
        value: f64,
    ) -> Result<&mut Self, ModelError> {
        let n = self.num_states;
        self.rewards
            .entry(structure.to_owned())
            .or_insert_with(|| RewardStructure::new(structure, n))
            .set_choice_reward(state, choice, value)?;
        Ok(self)
    }

    /// Validates and freezes the interval MDP.
    ///
    /// # Errors
    ///
    /// Validating builders return [`ModelError::MissingDistribution`] if
    /// any state offers no choice.
    pub fn build(&self) -> Result<IntervalMdp, ModelError> {
        let mut states = Vec::with_capacity(self.num_states);
        for (state, choices) in self.states.iter().enumerate() {
            if self.validate && choices.is_empty() {
                return Err(ModelError::MissingDistribution { state });
            }
            states.push(
                choices
                    .iter()
                    .map(|(action, row)| IntervalChoice {
                        action: *action,
                        transitions: row.iter().map(|(&t, &(lo, hi))| (t, lo, hi)).collect(),
                    })
                    .collect(),
            );
        }
        Ok(IntervalMdp {
            states,
            action_names: self.action_names.clone(),
            initial: self.initial,
            labeling: self.labeling.clone(),
            rewards: self.rewards.clone(),
        })
    }

    fn check_state(&self, state: usize) -> Result<(), ModelError> {
        if state >= self.num_states {
            return Err(ModelError::StateOutOfBounds { state, num_states: self.num_states });
        }
        Ok(())
    }
}

/// SplitMix64 step mapped to the unit interval — deterministic noise for
/// [`IntervalDtmc::sample_member`].
fn splitmix_unit(seed: u64) -> f64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z = z ^ (z >> 31);
    (z >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> Dtmc {
        let mut b = DtmcBuilder::new(3);
        b.transition(0, 1, 0.8).unwrap();
        b.transition(0, 2, 0.2).unwrap();
        b.transition(1, 1, 1.0).unwrap();
        b.transition(2, 2, 1.0).unwrap();
        b.label(1, "ok").unwrap();
        b.state_reward("steps", 0, 1.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn builder_validates_endpoints_and_polytopes() {
        let mut b = IntervalDtmcBuilder::new(2);
        assert!(b.transition(0, 1, 0.5, 0.4).is_err(), "inverted");
        assert!(b.transition(0, 1, -0.1, 0.4).is_err(), "negative");
        assert!(b.transition(0, 1, 0.4, 1.2).is_err(), "above one");
        assert!(b.transition(0, 1, f64::NAN, 0.4).is_err(), "nan");
        assert!(b.transition(0, 5, 0.1, 0.2).is_err(), "target oob");
        b.transition(0, 0, 0.6, 0.7).unwrap();
        b.transition(0, 1, 0.5, 0.9).unwrap();
        b.transition(1, 1, 1.0, 1.0).unwrap();
        // Σ lo = 1.1 > 1: empty polytope.
        assert!(matches!(b.build().unwrap_err(), ModelError::NotStochastic { state: 0, .. }));

        let mut b = IntervalDtmcBuilder::new(2);
        b.transition(0, 1, 0.1, 0.3).unwrap();
        b.transition(1, 1, 1.0, 1.0).unwrap();
        // Σ hi = 0.3 < 1: empty polytope.
        assert!(matches!(b.build().unwrap_err(), ModelError::NotStochastic { state: 0, .. }));
    }

    #[test]
    fn unchecked_builder_accepts_degenerate_sets() {
        let mut b = IntervalDtmcBuilder::unchecked(2);
        b.transition(0, 1, 0.9, 0.1).unwrap(); // inverted, accepted
        b.transition(1, 1, f64::NAN, 1.0).unwrap(); // NaN, accepted
        let m = b.build().unwrap();
        assert_eq!(m.num_states(), 2);
        assert_eq!(m.bounds(0, 1), (0.9, 0.1));
    }

    #[test]
    fn from_dtmc_widens_and_contains_original() {
        let d = chain();
        let m = IntervalDtmc::from_dtmc(&d, 0.1);
        let (lo, hi) = m.bounds(0, 1);
        assert!((lo - 0.7).abs() < 1e-12 && (hi - 0.9).abs() < 1e-12);
        assert!(m.contains(&d));
        assert!(m.labeling().has(1, "ok"));
        assert_eq!(m.reward_structure("steps").unwrap().state_reward(0), 1.0);
        // A chain outside the ball is rejected.
        let mut b = DtmcBuilder::new(3);
        b.transition(0, 1, 0.5).unwrap();
        b.transition(0, 2, 0.5).unwrap();
        b.transition(1, 1, 1.0).unwrap();
        b.transition(2, 2, 1.0).unwrap();
        assert!(!m.contains(&b.build().unwrap()));
    }

    #[test]
    fn degenerate_set_is_singleton() {
        let d = chain();
        let m = IntervalDtmc::degenerate(&d);
        assert_eq!(m.bounds(0, 1), (0.8, 0.8));
        assert!(m.contains(&d));
        let nominal = m.nominal_dtmc().unwrap();
        assert!((nominal.probability(0, 1) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn wilson_ball_contains_nominal_and_narrows_with_samples() {
        let d = chain();
        let small = IntervalDtmc::wilson_around(&d, 0.95, 100.0).unwrap();
        let large = IntervalDtmc::wilson_around(&d, 0.95, 10_000.0).unwrap();
        assert!(small.contains(&d));
        assert!(large.contains(&d));
        let (slo, shi) = small.bounds(0, 1);
        let (llo, lhi) = large.bounds(0, 1);
        assert!(lhi - llo < shi - slo, "more samples narrow the ball");
        assert!(IntervalDtmc::wilson_around(&d, 1.5, 100.0).is_err());
        assert!(IntervalDtmc::wilson_around(&d, 0.95, 0.0).is_err());
    }

    #[test]
    fn sampled_members_stay_inside_the_ball() {
        let d = chain();
        let m = IntervalDtmc::from_dtmc(&d, 0.15);
        for seed in 0..32 {
            let member = m.sample_member(seed).unwrap();
            assert!(m.contains(&member), "seed {seed}");
        }
        // Distinct seeds produce distinct members for a non-degenerate set.
        let a = m.sample_member(1).unwrap();
        let b = m.sample_member(2).unwrap();
        assert_ne!(a.probability(0, 1), b.probability(0, 1));
        // Degenerate sets sample their unique member.
        let exact = IntervalDtmc::degenerate(&d).sample_member(7).unwrap();
        assert!((exact.probability(0, 1) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn interval_mdp_builder_and_widening() {
        let mut b = IntervalMdpBuilder::new(2);
        b.choice(0, "go", &[(0, 0.1, 0.3), (1, 0.7, 0.9)]).unwrap();
        b.choice(0, "stay", &[(0, 1.0, 1.0)]).unwrap();
        b.choice(1, "stay", &[(1, 1.0, 1.0)]).unwrap();
        b.label(1, "goal").unwrap();
        let m = b.build().unwrap();
        assert_eq!(m.num_choices(0), 2);
        assert_eq!(m.action_name(m.choices(0)[0].action), "go");
        assert!(m.labeling().has(1, "goal"));

        let mut mb = crate::MdpBuilder::new(2);
        mb.choice(0, "go", &[(1, 1.0)]).unwrap();
        mb.choice(1, "stay", &[(1, 1.0)]).unwrap();
        let concrete = mb.build().unwrap();
        let widened = IntervalMdp::from_mdp(&concrete, 0.1);
        assert_eq!(widened.choices(0)[0].transitions, vec![(1, 0.9, 1.0)]);
        let exact = IntervalMdp::degenerate(&concrete);
        assert_eq!(exact.choices(0)[0].transitions, vec![(1, 1.0, 1.0)]);
    }

    #[test]
    fn interval_mdp_choice_validation() {
        let mut b = IntervalMdpBuilder::new(1);
        assert!(b.choice(0, "a", &[(0, 0.5, 0.4)]).is_err(), "inverted");
        assert!(b.choice(0, "a", &[(0, 0.1, 0.2)]).is_err(), "empty polytope");
        assert!(b.choice(0, "a", &[]).is_err(), "empty row");
        let mut u = IntervalMdpBuilder::unchecked(1);
        u.choice(0, "a", &[(0, 0.5, 0.4)]).unwrap();
        assert!(u.build().is_ok());
    }
}
