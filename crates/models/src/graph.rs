//! Qualitative (graph-based) precomputations for probabilistic model
//! checking.
//!
//! Exact PCTL checking of unbounded until `φ U ψ` first classifies states
//! whose probability is exactly 0 or exactly 1, then solves a linear system
//! (DTMC) or runs value iteration (MDP) on the remaining "maybe" states.
//! These classifications depend only on the *graph* of the model, never on
//! the numeric probabilities — a fact the parametric engine also relies on.
//!
//! For MDPs there are four variants, depending on whether we quantify over
//! the best or worst scheduler:
//!
//! | set | meaning |
//! |---|---|
//! | [`prob0a`] | `Pmax(φ U ψ) = 0` (no scheduler can reach) |
//! | [`prob1e`] | `Pmax(φ U ψ) = 1` (some scheduler reaches almost surely) |
//! | [`prob0e`] | `Pmin(φ U ψ) = 0` (some scheduler avoids entirely) |
//! | [`prob1a`] | `Pmin(φ U ψ) = 1` (every scheduler reaches almost surely) |

use crate::{Dtmc, Mdp};

/// States from which `target` is reachable in `dtmc` through `phi`-states.
///
/// A state `s` belongs to the result iff there is a path `s = s₀ … sₖ` with
/// `sₖ ∈ target` and `sᵢ ∈ phi` for all `i < k`. Target states themselves
/// always qualify.
///
/// # Panics
///
/// Panics if the masks do not have one entry per state.
pub fn reach_through(dtmc: &Dtmc, phi: &[bool], target: &[bool]) -> Vec<bool> {
    let n = dtmc.num_states();
    assert_eq!(phi.len(), n, "phi mask length");
    assert_eq!(target.len(), n, "target mask length");
    let preds = FlatPreds::build(dtmc);
    preds.reach_through(phi, target)
}

/// Flat (CSR-style) predecessor adjacency: one shared edge array instead of
/// a `Vec` per state, built with a counting pass so million-state graphs
/// pay two linear scans and three allocations total.
struct FlatPreds {
    start: Vec<usize>,
    edges: Vec<usize>,
}

impl FlatPreds {
    fn build(dtmc: &Dtmc) -> FlatPreds {
        let n = dtmc.num_states();
        let mut start = vec![0usize; n + 1];
        for s in 0..n {
            for (t, _) in dtmc.successors(s) {
                start[t + 1] += 1;
            }
        }
        for i in 0..n {
            start[i + 1] += start[i];
        }
        let mut cursor = start.clone();
        let mut edges = vec![0usize; start[n]];
        for s in 0..n {
            for (t, _) in dtmc.successors(s) {
                edges[cursor[t]] = s;
                cursor[t] += 1;
            }
        }
        FlatPreds { start, edges }
    }

    fn preds_of(&self, s: usize) -> &[usize] {
        &self.edges[self.start[s]..self.start[s + 1]]
    }

    /// Backward BFS from `target` through `phi` states.
    fn reach_through(&self, phi: &[bool], target: &[bool]) -> Vec<bool> {
        let n = self.start.len() - 1;
        let mut reach = target.to_vec();
        let mut stack: Vec<usize> = (0..n).filter(|&s| target[s]).collect();
        while let Some(s) = stack.pop() {
            for &p in self.preds_of(s) {
                if !reach[p] && phi[p] {
                    reach[p] = true;
                    stack.push(p);
                }
            }
        }
        reach
    }
}

/// `Prob0`: states where `P(φ U ψ) = 0` in a DTMC.
pub fn prob0(dtmc: &Dtmc, phi: &[bool], target: &[bool]) -> Vec<bool> {
    reach_through(dtmc, phi, target).iter().map(|&r| !r).collect()
}

/// `Prob1`: states where `P(φ U ψ) = 1` in a DTMC.
///
/// Standard two-pass algorithm: a state has probability one iff it cannot
/// reach a `Prob0` state while staying inside `φ ∧ ¬ψ`.
pub fn prob1(dtmc: &Dtmc, phi: &[bool], target: &[bool]) -> Vec<bool> {
    prob01(dtmc, phi, target).1
}

/// `Prob0` and `Prob1` together, sharing one predecessor-list construction
/// — the qualitative precomputation is two backward BFS passes over the
/// same reversed graph, so computing the sets separately rebuilds (and
/// re-allocates) that graph for nothing. This is the entry point the
/// checker's hot path uses.
///
/// # Panics
///
/// Panics if the masks do not have one entry per state.
pub fn prob01(dtmc: &Dtmc, phi: &[bool], target: &[bool]) -> (Vec<bool>, Vec<bool>) {
    let n = dtmc.num_states();
    assert_eq!(phi.len(), n, "phi mask length");
    assert_eq!(target.len(), n, "target mask length");
    let preds = FlatPreds::build(dtmc);
    let reach = preds.reach_through(phi, target);
    let zero: Vec<bool> = reach.iter().map(|&r| !r).collect();
    // States that can reach a prob0 state through (phi ∧ ¬target) states.
    let inner: Vec<bool> = (0..n).map(|s| phi[s] && !target[s]).collect();
    let bad_reach = preds.reach_through(&inner, &zero);
    let one: Vec<bool> = bad_reach.iter().map(|&b| !b).collect();
    (zero, one)
}

/// Existential backward reachability in an MDP: states where **some**
/// scheduler reaches `target` with positive probability through `phi`.
pub fn exists_reach(mdp: &Mdp, phi: &[bool], target: &[bool]) -> Vec<bool> {
    let n = mdp.num_states();
    assert_eq!(phi.len(), n, "phi mask length");
    assert_eq!(target.len(), n, "target mask length");
    let mut reach = target.to_vec();
    let mut changed = true;
    while changed {
        changed = false;
        for s in 0..n {
            if reach[s] || !phi[s] {
                continue;
            }
            let hit = mdp
                .choices(s)
                .iter()
                .any(|c| c.transitions.iter().any(|&(t, p)| p > 0.0 && reach[t]));
            if hit {
                reach[s] = true;
                changed = true;
            }
        }
    }
    reach
}

/// Universal forward reachability: states where **every** scheduler reaches
/// `target` with positive probability through `phi`.
pub fn forall_reach(mdp: &Mdp, phi: &[bool], target: &[bool]) -> Vec<bool> {
    let n = mdp.num_states();
    assert_eq!(phi.len(), n, "phi mask length");
    assert_eq!(target.len(), n, "target mask length");
    let mut reach = target.to_vec();
    let mut changed = true;
    while changed {
        changed = false;
        for s in 0..n {
            if reach[s] || !phi[s] {
                continue;
            }
            let hit = mdp
                .choices(s)
                .iter()
                .all(|c| c.transitions.iter().any(|&(t, p)| p > 0.0 && reach[t]));
            if hit {
                reach[s] = true;
                changed = true;
            }
        }
    }
    reach
}

/// `Prob0A`: states where `Pmax(φ U ψ) = 0`.
pub fn prob0a(mdp: &Mdp, phi: &[bool], target: &[bool]) -> Vec<bool> {
    exists_reach(mdp, phi, target).iter().map(|&r| !r).collect()
}

/// `Prob0E`: states where `Pmin(φ U ψ) = 0`.
pub fn prob0e(mdp: &Mdp, phi: &[bool], target: &[bool]) -> Vec<bool> {
    forall_reach(mdp, phi, target).iter().map(|&r| !r).collect()
}

/// `Prob1E`: states where `Pmax(φ U ψ) = 1` (some scheduler reaches `ψ`
/// almost surely through `φ`).
///
/// Classic nested fixpoint (de Alfaro):
/// `νZ. μY. ψ ∨ (φ ∧ ∃a. succ(a) ⊆ Z ∧ succ(a) ∩ Y ≠ ∅)`.
pub fn prob1e(mdp: &Mdp, phi: &[bool], target: &[bool]) -> Vec<bool> {
    nested_fixpoint(mdp, phi, target, true)
}

/// `Prob1A`: states where `Pmin(φ U ψ) = 1` (every scheduler reaches `ψ`
/// almost surely through `φ`).
///
/// The universal variant of the nested fixpoint:
/// `νZ. μY. ψ ∨ (φ ∧ ∀a. succ(a) ⊆ Z ∧ succ(a) ∩ Y ≠ ∅)`.
pub fn prob1a(mdp: &Mdp, phi: &[bool], target: &[bool]) -> Vec<bool> {
    nested_fixpoint(mdp, phi, target, false)
}

fn nested_fixpoint(mdp: &Mdp, phi: &[bool], target: &[bool], existential: bool) -> Vec<bool> {
    let n = mdp.num_states();
    assert_eq!(phi.len(), n, "phi mask length");
    assert_eq!(target.len(), n, "target mask length");
    let mut z = vec![true; n];
    loop {
        // Inner least fixpoint Y within the current Z.
        let mut y = target.to_vec();
        let mut changed = true;
        while changed {
            changed = false;
            for s in 0..n {
                if y[s] || !phi[s] || target[s] {
                    continue;
                }
                let choice_ok = |c: &crate::Choice| {
                    let stays = c.transitions.iter().all(|&(t, p)| p == 0.0 || z[t]);
                    let progresses = c.transitions.iter().any(|&(t, p)| p > 0.0 && y[t]);
                    stays && progresses
                };
                let ok = if existential {
                    mdp.choices(s).iter().any(choice_ok)
                } else {
                    mdp.choices(s).iter().all(choice_ok)
                };
                if ok {
                    y[s] = true;
                    changed = true;
                }
            }
        }
        if y == z {
            return z;
        }
        z = y;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DtmcBuilder, MdpBuilder};

    /// Chain: 0 -> {1: 0.5, 2: 0.5}, 1 absorbing (target), 2 absorbing.
    fn split_chain() -> Dtmc {
        let mut b = DtmcBuilder::new(3);
        b.transition(0, 1, 0.5).unwrap();
        b.transition(0, 2, 0.5).unwrap();
        b.transition(1, 1, 1.0).unwrap();
        b.transition(2, 2, 1.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn dtmc_prob0_prob1() {
        let d = split_chain();
        let phi = vec![true; 3];
        let target = vec![false, true, false];
        assert_eq!(prob0(&d, &phi, &target), vec![false, false, true]);
        assert_eq!(prob1(&d, &phi, &target), vec![false, true, false]);
    }

    #[test]
    fn dtmc_prob1_when_certain() {
        // 0 -> 1 w.p. 1, 1 absorbing target.
        let mut b = DtmcBuilder::new(2);
        b.transition(0, 1, 1.0).unwrap();
        b.transition(1, 1, 1.0).unwrap();
        let d = b.build().unwrap();
        let phi = vec![true, true];
        let target = vec![false, true];
        assert_eq!(prob1(&d, &phi, &target), vec![true, true]);
        assert_eq!(prob0(&d, &phi, &target), vec![false, false]);
    }

    #[test]
    fn phi_restriction_blocks_paths() {
        // 0 -> 1 -> 2(target); phi false at 1 cuts the path.
        let mut b = DtmcBuilder::new(3);
        b.transition(0, 1, 1.0).unwrap();
        b.transition(1, 2, 1.0).unwrap();
        b.transition(2, 2, 1.0).unwrap();
        let d = b.build().unwrap();
        let phi = vec![true, false, true];
        let target = vec![false, false, true];
        assert_eq!(prob0(&d, &phi, &target), vec![true, true, false]);
    }

    /// MDP where state 0 has a safe self-loop and a risky coin flip to the
    /// target 1 or the sink 2.
    fn coin_mdp() -> Mdp {
        let mut b = MdpBuilder::new(3);
        b.choice(0, "loop", &[(0, 1.0)]).unwrap();
        b.choice(0, "flip", &[(1, 0.5), (2, 0.5)]).unwrap();
        b.choice(1, "stay", &[(1, 1.0)]).unwrap();
        b.choice(2, "stay", &[(2, 1.0)]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn mdp_qualitative_sets() {
        let m = coin_mdp();
        let phi = vec![true; 3];
        let target = vec![false, true, false];
        // Pmax: flipping forever eventually... no — one flip reaches 1 w.p. 0.5
        // and 2 w.p. 0.5; but the scheduler may loop and flip repeatedly? After
        // reaching 2 it is stuck. Pmax < 1, Pmax > 0.
        assert_eq!(prob0a(&m, &phi, &target), vec![false, false, true]);
        assert_eq!(prob1e(&m, &phi, &target), vec![false, true, false]);
        // Pmin: scheduler can self-loop forever, never reaching the target.
        assert_eq!(prob0e(&m, &phi, &target), vec![true, false, true]);
        assert_eq!(prob1a(&m, &phi, &target), vec![false, true, false]);
    }

    #[test]
    fn mdp_prob1e_with_retry() {
        // 0 --try--> {1: 0.5, 0: 0.5}: retrying forever reaches 1 a.s.
        let mut b = MdpBuilder::new(2);
        b.choice(0, "try", &[(0, 0.5), (1, 0.5)]).unwrap();
        b.choice(1, "stay", &[(1, 1.0)]).unwrap();
        let m = b.build().unwrap();
        let phi = vec![true, true];
        let target = vec![false, true];
        assert_eq!(prob1e(&m, &phi, &target), vec![true, true]);
        assert_eq!(prob1a(&m, &phi, &target), vec![true, true]);
    }

    #[test]
    fn mdp_prob1a_rejects_escapable() {
        // 0 has actions: a -> 1 (target) w.p. 1; b -> 2 (sink) w.p. 1.
        let mut b = MdpBuilder::new(3);
        b.choice(0, "a", &[(1, 1.0)]).unwrap();
        b.choice(0, "b", &[(2, 1.0)]).unwrap();
        b.choice(1, "stay", &[(1, 1.0)]).unwrap();
        b.choice(2, "stay", &[(2, 1.0)]).unwrap();
        let m = b.build().unwrap();
        let phi = vec![true; 3];
        let target = vec![false, true, false];
        assert_eq!(prob1e(&m, &phi, &target), vec![true, true, false]);
        assert_eq!(prob1a(&m, &phi, &target), vec![false, true, false]);
        assert_eq!(prob0e(&m, &phi, &target), vec![true, false, true]);
    }

    #[test]
    fn exists_and_forall_reach_masks() {
        let m = coin_mdp();
        let phi = vec![true; 3];
        let target = vec![false, true, false];
        assert_eq!(exists_reach(&m, &phi, &target), vec![true, true, false]);
        // "flip" reaches the target with positive probability under every
        // scheduler? No: the "loop" choice never progresses, but
        // forall_reach asks that every CHOICE (hence scheduler step) can
        // progress — state 0 fails because of the loop choice.
        assert_eq!(forall_reach(&m, &phi, &target), vec![false, true, false]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::DtmcBuilder;
    use proptest::prelude::*;

    fn random_chain(seed: &[f64], n: usize) -> Dtmc {
        let mut b = DtmcBuilder::new(n);
        let mut k = 0;
        for s in 0..n {
            // two successors per state, probabilities from the seed
            let t1 = (seed[k] * n as f64) as usize % n;
            let t2 = (seed[k + 1] * n as f64) as usize % n;
            let p = 0.1 + 0.8 * seed[k + 2];
            k += 3;
            if t1 == t2 {
                b.transition(s, t1, 1.0).unwrap();
            } else {
                b.transition(s, t1, p).unwrap();
                b.transition(s, t2, 1.0 - p).unwrap();
            }
        }
        b.build().unwrap()
    }

    proptest! {
        /// prob0 and prob1 are disjoint unless the until is trivially
        /// decided, and target states are always prob1.
        #[test]
        fn prob01_consistency(seed in proptest::collection::vec(0.0_f64..1.0, 18)) {
            let n = 6;
            let d = random_chain(&seed, n);
            let phi = vec![true; n];
            let mut target = vec![false; n];
            target[n - 1] = true;
            let p0 = prob0(&d, &phi, &target);
            let p1 = prob1(&d, &phi, &target);
            prop_assert!(p1[n - 1], "target must be prob1");
            for s in 0..n {
                prop_assert!(!(p0[s] && p1[s]), "state {s} cannot be both prob0 and prob1");
            }
        }
    }
}

/// A (maximal) end component of an MDP: a set of states plus, per state,
/// the choice indices under which the process can stay inside the set
/// forever while being able to reach every member state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EndComponent {
    /// The member states, sorted.
    pub states: Vec<usize>,
    /// For each member state, the choice indices whose successors all stay
    /// inside the component.
    pub choices: std::collections::BTreeMap<usize, Vec<usize>>,
}

impl EndComponent {
    /// Whether `state` belongs to the component.
    pub fn contains(&self, state: usize) -> bool {
        self.states.binary_search(&state).is_ok()
    }
}

/// Strongly connected components of an adjacency list, in reverse
/// topological order (Tarjan's algorithm, iterative). Trivial one-state
/// components without a self-edge are included.
pub fn sccs(adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = adj.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut out: Vec<Vec<usize>> = Vec::new();

    // Iterative Tarjan: (node, next child position).
    let mut call: Vec<(usize, usize)> = Vec::new();
    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        call.push((root, 0));
        while let Some(&mut (v, ref mut ci)) = call.last_mut() {
            if *ci == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if *ci < adj[v].len() {
                let w = adj[v][*ci];
                *ci += 1;
                if index[w] == usize::MAX {
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                call.pop();
                if let Some(&mut (parent, _)) = call.last_mut() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack invariant");
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comp.sort_unstable();
                    out.push(comp);
                }
            }
        }
    }
    out
}

/// Maximal end component (MEC) decomposition of an MDP.
///
/// A MEC is a maximal set of states `C` with per-state action subsets such
/// that every enabled action keeps the process in `C` and `C` is strongly
/// connected under them. MECs are where an MDP can dwell forever — they
/// characterize e.g. `Pmax(G φ) > 0` (some reachable MEC inside `φ`) and
/// underpin limit-average objectives.
///
/// # Example
///
/// ```
/// use tml_models::MdpBuilder;
/// use tml_models::graph::maximal_end_components;
///
/// # fn main() -> Result<(), tml_models::ModelError> {
/// let mut b = MdpBuilder::new(2);
/// b.choice(0, "go", &[(1, 1.0)])?;
/// b.choice(1, "stay", &[(1, 1.0)])?;
/// let mdp = b.build()?;
/// let mecs = maximal_end_components(&mdp);
/// assert_eq!(mecs.len(), 1);
/// assert_eq!(mecs[0].states, vec![1]);
/// # Ok(())
/// # }
/// ```
pub fn maximal_end_components(mdp: &Mdp) -> Vec<EndComponent> {
    let n = mdp.num_states();
    let mut result = Vec::new();
    let mut worklist: Vec<Vec<usize>> = vec![(0..n).collect()];

    while let Some(candidate) = worklist.pop() {
        let mut member = vec![false; n];
        for &s in &candidate {
            member[s] = true;
        }
        // Allowed choices: all successors stay inside the candidate.
        // Remove states without allowed choices until stable.
        let mut alive = member.clone();
        let mut changed = true;
        let mut allowed: Vec<Vec<usize>> = vec![Vec::new(); n];
        while changed {
            changed = false;
            for &s in &candidate {
                if !alive[s] {
                    continue;
                }
                allowed[s] = mdp
                    .choices(s)
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| c.transitions.iter().all(|&(t, p)| p == 0.0 || alive[t]))
                    .map(|(i, _)| i)
                    .collect();
                if allowed[s].is_empty() {
                    alive[s] = false;
                    changed = true;
                }
            }
        }
        let survivors: Vec<usize> = candidate.iter().copied().filter(|&s| alive[s]).collect();
        if survivors.is_empty() {
            continue;
        }
        // SCCs of the surviving sub-graph restricted to allowed choices.
        let mut dense_index = vec![usize::MAX; n];
        for (i, &s) in survivors.iter().enumerate() {
            dense_index[s] = i;
        }
        let adj: Vec<Vec<usize>> = survivors
            .iter()
            .map(|&s| {
                let mut succ: Vec<usize> = allowed[s]
                    .iter()
                    .flat_map(|&c| mdp.choices(s)[c].transitions.iter())
                    .filter(|&&(_, p)| p > 0.0)
                    .map(|&(t, _)| dense_index[t])
                    .collect();
                succ.sort_unstable();
                succ.dedup();
                succ
            })
            .collect();
        let components = sccs(&adj);
        let split = components.len() > 1 || survivors.len() < candidate.len();
        for comp in components {
            let states: Vec<usize> = comp.iter().map(|&i| survivors[i]).collect();
            if split {
                // Not yet stable: reprocess the refined candidate.
                worklist.push(states);
                continue;
            }
            // Stable: this is a MEC provided it can actually dwell (a
            // one-state component needs a self-looping allowed choice).
            let closed_choices: std::collections::BTreeMap<usize, Vec<usize>> =
                states.iter().map(|&s| (s, allowed[s].clone())).collect();
            let dwells =
                states.len() > 1 || closed_choices.get(&states[0]).is_some_and(|cs| !cs.is_empty());
            if dwells {
                result.push(EndComponent { states, choices: closed_choices });
            }
        }
    }
    result.sort_by(|a, b| a.states.cmp(&b.states));
    result
}

#[cfg(test)]
mod mec_tests {
    use super::*;
    use crate::MdpBuilder;

    #[test]
    fn sccs_of_cycle_and_dag() {
        // 0 -> 1 -> 2 -> 0 cycle plus a tail 3 -> 0.
        let adj = vec![vec![1], vec![2], vec![0], vec![0]];
        let comps = sccs(&adj);
        assert!(comps.contains(&vec![0, 1, 2]));
        assert!(comps.contains(&vec![3]));
        // pure DAG: all singletons
        let dag = vec![vec![1], vec![2], vec![]];
        assert_eq!(sccs(&dag).len(), 3);
    }

    #[test]
    fn mec_of_absorbing_state() {
        let mut b = MdpBuilder::new(3);
        b.choice(0, "a", &[(1, 0.5), (2, 0.5)]).unwrap();
        b.choice(1, "stay", &[(1, 1.0)]).unwrap();
        b.choice(2, "stay", &[(2, 1.0)]).unwrap();
        let m = b.build().unwrap();
        let mecs = maximal_end_components(&m);
        assert_eq!(mecs.len(), 2);
        assert_eq!(mecs[0].states, vec![1]);
        assert_eq!(mecs[1].states, vec![2]);
        assert!(mecs[0].contains(1));
        assert!(!mecs[0].contains(0));
    }

    #[test]
    fn mec_with_internal_cycle_and_escape() {
        // {0,1} cycle under action "loop"; action "leave" exits to sink 2.
        let mut b = MdpBuilder::new(3);
        b.choice(0, "loop", &[(1, 1.0)]).unwrap();
        b.choice(0, "leave", &[(2, 1.0)]).unwrap();
        b.choice(1, "loop", &[(0, 1.0)]).unwrap();
        b.choice(2, "stay", &[(2, 1.0)]).unwrap();
        let m = b.build().unwrap();
        let mecs = maximal_end_components(&m);
        assert_eq!(mecs.len(), 2);
        let cycle = mecs.iter().find(|c| c.states == vec![0, 1]).expect("cycle MEC");
        // The escaping action is pruned from state 0's allowed choices.
        assert_eq!(cycle.choices[&0], vec![0]);
        assert_eq!(cycle.choices[&1], vec![0]);
    }

    #[test]
    fn probabilistic_branching_requires_closure() {
        // Action from 0 goes to 1 or 2 with probability 1/2 each; only a
        // component containing all three can hold it, but 2 cannot return:
        // so 0 is in no MEC.
        let mut b = MdpBuilder::new(3);
        b.choice(0, "a", &[(1, 0.5), (2, 0.5)]).unwrap();
        b.choice(1, "back", &[(0, 1.0)]).unwrap();
        b.choice(2, "stay", &[(2, 1.0)]).unwrap();
        let m = b.build().unwrap();
        let mecs = maximal_end_components(&m);
        assert_eq!(mecs.len(), 1);
        assert_eq!(mecs[0].states, vec![2]);
    }

    #[test]
    fn transient_state_without_self_loop_is_no_mec() {
        // 0 -> 1 (one-way), 1 absorbing: 0 forms no MEC on its own.
        let mut b = MdpBuilder::new(2);
        b.choice(0, "go", &[(1, 1.0)]).unwrap();
        b.choice(1, "stay", &[(1, 1.0)]).unwrap();
        let m = b.build().unwrap();
        let mecs = maximal_end_components(&m);
        assert_eq!(mecs.len(), 1);
        assert_eq!(mecs[0].states, vec![1]);
    }

    #[test]
    fn mecs_relate_to_qualitative_sets() {
        // Pmax(G phi) > 0 iff some MEC inside phi is reachable through phi.
        // Here: phi = {0,1}; the cycle {0,1} is a phi-MEC, so from 0 the
        // scheduler can stay in phi forever.
        let mut b = MdpBuilder::new(3);
        b.choice(0, "loop", &[(1, 1.0)]).unwrap();
        b.choice(0, "leave", &[(2, 1.0)]).unwrap();
        b.choice(1, "loop", &[(0, 1.0)]).unwrap();
        b.choice(2, "stay", &[(2, 1.0)]).unwrap();
        let m = b.build().unwrap();
        let mecs = maximal_end_components(&m);
        let phi_mec = mecs.iter().any(|c| c.states.iter().all(|&s| s < 2));
        assert!(phi_mec);
    }
}
