//! Maximum-likelihood learning of transition probabilities from traces —
//! the `ML(D)` procedure of the TML pipeline.
//!
//! A [`TraceDataset`] groups weighted traces into named *classes*
//! (e.g. "successful forward", "ignore at n11"). Data Repair works by
//! re-weighting whole classes with keep-weights in `[0, 1]`, so the
//! estimators here accept an optional per-class weight vector: the learned
//! transition probability then becomes a *rational function* of those
//! weights, which is exactly the parameterization the paper's Data Repair
//! formulation feeds into parametric model checking.

use serde::{Deserialize, Serialize};

use crate::interval::IntervalDtmcBuilder;
use crate::{DtmcBuilder, MdpBuilder, ModelError, Path};

/// A trace with a multiplicity/confidence weight and a class tag.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeightedTrace {
    /// The observed trajectory.
    pub path: Path,
    /// Multiplicity (how many times this trace was observed) or confidence.
    pub weight: f64,
    /// Index into [`TraceDataset::class_names`].
    pub class: usize,
}

/// A collection of weighted traces grouped into named classes.
///
/// # Example
///
/// ```
/// use tml_models::{TraceDataset, Path};
///
/// # fn main() -> Result<(), tml_models::ModelError> {
/// let mut ds = TraceDataset::new();
/// let ok = ds.add_class("success");
/// ds.push(ok, Path::from_states(vec![0, 1]), 4.0)?;
/// assert_eq!(ds.num_traces(), 1);
/// assert_eq!(ds.total_weight(), 4.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TraceDataset {
    class_names: Vec<String>,
    traces: Vec<WeightedTrace>,
}

impl TraceDataset {
    /// Creates an empty dataset.
    pub fn new() -> Self {
        TraceDataset::default()
    }

    /// Registers a trace class, returning its index. Re-registering an
    /// existing name returns the existing index.
    pub fn add_class(&mut self, name: &str) -> usize {
        if let Some(i) = self.class_names.iter().position(|c| c == name) {
            return i;
        }
        self.class_names.push(name.to_owned());
        self.class_names.len() - 1
    }

    /// Appends a trace to the dataset.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidTrace`] if the class index is unknown or
    /// the weight is negative/non-finite.
    pub fn push(&mut self, class: usize, path: Path, weight: f64) -> Result<(), ModelError> {
        if class >= self.class_names.len() {
            return Err(ModelError::InvalidTrace {
                detail: format!("unknown class index {class}"),
            });
        }
        if !weight.is_finite() || weight < 0.0 {
            return Err(ModelError::InvalidTrace {
                detail: format!("invalid trace weight {weight}"),
            });
        }
        self.traces.push(WeightedTrace { path, weight, class });
        Ok(())
    }

    /// The registered class names, in registration order.
    pub fn class_names(&self) -> &[String] {
        &self.class_names
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.class_names.len()
    }

    /// Number of traces.
    pub fn num_traces(&self) -> usize {
        self.traces.len()
    }

    /// Sum of all trace weights.
    pub fn total_weight(&self) -> f64 {
        self.traces.iter().map(|t| t.weight).sum()
    }

    /// Iterates over the traces.
    pub fn iter(&self) -> impl Iterator<Item = &WeightedTrace> {
        self.traces.iter()
    }

    /// Weighted transition counts `c[s][t]`, scaling each trace by the
    /// keep-weight of its class (`None` means weight 1 for every class).
    ///
    /// # Errors
    ///
    /// * [`ModelError::InvalidTrace`] if a trace mentions a state `≥
    ///   num_states` or `class_weights` has the wrong length.
    pub fn transition_counts(
        &self,
        num_states: usize,
        class_weights: Option<&[f64]>,
    ) -> Result<Vec<Vec<f64>>, ModelError> {
        self.check_weights(class_weights)?;
        let mut counts = vec![vec![0.0; num_states]; num_states];
        for tr in &self.traces {
            let w = tr.weight * class_weights.map_or(1.0, |cw| cw[tr.class]);
            if w == 0.0 {
                continue;
            }
            for win in tr.path.states.windows(2) {
                let (s, t) = (win[0], win[1]);
                if s >= num_states || t >= num_states {
                    return Err(ModelError::InvalidTrace {
                        detail: format!(
                            "trace mentions state {} but model has {num_states}",
                            s.max(t)
                        ),
                    });
                }
                counts[s][t] += w;
            }
        }
        Ok(counts)
    }

    /// Weighted `(state, action, successor)` counts for MDP learning.
    ///
    /// # Errors
    ///
    /// Same conditions as [`transition_counts`](Self::transition_counts),
    /// plus traces must carry actions for every transition.
    #[allow(clippy::type_complexity)]
    pub fn action_counts(
        &self,
        num_states: usize,
        num_actions: usize,
        class_weights: Option<&[f64]>,
    ) -> Result<Vec<Vec<Vec<f64>>>, ModelError> {
        self.check_weights(class_weights)?;
        let mut counts = vec![vec![vec![0.0; num_states]; num_actions]; num_states];
        for tr in &self.traces {
            let w = tr.weight * class_weights.map_or(1.0, |cw| cw[tr.class]);
            if w == 0.0 {
                continue;
            }
            if tr.path.actions.len() + 1 != tr.path.states.len() {
                return Err(ModelError::InvalidTrace {
                    detail: "MDP learning requires an action per transition".into(),
                });
            }
            for i in 0..tr.path.len() {
                let (s, a, t) = (tr.path.states[i], tr.path.actions[i], tr.path.states[i + 1]);
                if s >= num_states || t >= num_states {
                    return Err(ModelError::InvalidTrace {
                        detail: format!(
                            "trace mentions state {} but model has {num_states}",
                            s.max(t)
                        ),
                    });
                }
                if a >= num_actions {
                    return Err(ModelError::InvalidTrace {
                        detail: format!("trace mentions action {a} but model has {num_actions}"),
                    });
                }
                counts[s][a][t] += w;
            }
        }
        Ok(counts)
    }

    fn check_weights(&self, class_weights: Option<&[f64]>) -> Result<(), ModelError> {
        if let Some(cw) = class_weights {
            if cw.len() != self.class_names.len() {
                return Err(ModelError::InvalidTrace {
                    detail: format!(
                        "{} class weights for {} classes",
                        cw.len(),
                        self.class_names.len()
                    ),
                });
            }
            if let Some(&w) = cw.iter().find(|w| !w.is_finite() || **w < 0.0) {
                return Err(ModelError::InvalidTrace {
                    detail: format!("invalid class weight {w}"),
                });
            }
        }
        Ok(())
    }
}

/// Options for maximum-likelihood estimation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MlOptions {
    /// Additive (Dirichlet/Laplace) smoothing added to every *observed*
    /// transition's count. Zero means pure maximum likelihood.
    pub smoothing: f64,
    /// What to do with states that have no outgoing observations: give them
    /// a self-loop (`true`) or fail (`false`).
    pub self_loop_unvisited: bool,
}

impl Default for MlOptions {
    fn default() -> Self {
        MlOptions { smoothing: 0.0, self_loop_unvisited: true }
    }
}

/// Maximum-likelihood DTMC estimation from a trace dataset.
///
/// Returns a [`DtmcBuilder`] (rather than a built chain) so the caller can
/// attach labels and rewards before building.
///
/// # Errors
///
/// * Propagates [`TraceDataset::transition_counts`] errors.
/// * [`ModelError::MissingDistribution`] if a state was never left and
///   `opts.self_loop_unvisited` is false.
///
/// # Example
///
/// ```
/// use tml_models::{learn, MlOptions, TraceDataset, Path};
///
/// # fn main() -> Result<(), tml_models::ModelError> {
/// let mut ds = TraceDataset::new();
/// let c = ds.add_class("obs");
/// ds.push(c, Path::from_states(vec![0, 1, 1]), 1.0)?;
/// ds.push(c, Path::from_states(vec![0, 0, 1]), 1.0)?;
/// let chain = learn::ml_dtmc(2, &ds, None, MlOptions::default())?.build()?;
/// assert!((chain.probability(0, 1) - 2.0 / 3.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn ml_dtmc(
    num_states: usize,
    dataset: &TraceDataset,
    class_weights: Option<&[f64]>,
    opts: MlOptions,
) -> Result<DtmcBuilder, ModelError> {
    let counts = dataset.transition_counts(num_states, class_weights)?;
    let mut b = DtmcBuilder::new(num_states);
    for (s, row) in counts.iter().enumerate() {
        let smoothed: Vec<(usize, f64)> = row
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0.0)
            .map(|(t, &c)| (t, c + opts.smoothing))
            .collect();
        let total: f64 = smoothed.iter().map(|&(_, c)| c).sum();
        if total == 0.0 {
            if opts.self_loop_unvisited {
                b.transition(s, s, 1.0)?;
                continue;
            }
            return Err(ModelError::MissingDistribution { state: s });
        }
        for (t, c) in smoothed {
            b.transition(s, t, c / total)?;
        }
    }
    Ok(b)
}

/// Learns an **interval DTMC** from a trace dataset: the point estimate of
/// each transition is replaced by its per-row Wilson score interval at the
/// given `confidence` (e.g. `0.95`), so the resulting uncertainty set is
/// calibrated to how much data actually backs each row. More observations
/// shrink the intervals toward the maximum-likelihood chain; the
/// maximum-likelihood estimate is always a member of the set.
///
/// Returns an [`IntervalDtmcBuilder`] so the caller can attach labels and
/// rewards before building. Smoothing (if any) is applied to the counts
/// before the intervals are formed; unvisited states get the exact
/// self-loop `[1, 1]` when `opts.self_loop_unvisited` holds.
///
/// # Errors
///
/// * Propagates [`TraceDataset::transition_counts`] errors.
/// * [`ModelError::InvalidProbability`] if `confidence` is not in `(0, 1)`.
/// * [`ModelError::MissingDistribution`] if a state was never left and
///   `opts.self_loop_unvisited` is false.
///
/// # Example
///
/// ```
/// use tml_models::{learn, MlOptions, TraceDataset, Path};
///
/// # fn main() -> Result<(), tml_models::ModelError> {
/// let mut ds = TraceDataset::new();
/// let c = ds.add_class("obs");
/// ds.push(c, Path::from_states(vec![0, 1, 1]), 8.0)?;
/// ds.push(c, Path::from_states(vec![0, 0, 1]), 2.0)?;
/// let m = learn::interval_dtmc_from_traces(2, &ds, None, 0.95, MlOptions::default())?
///     .build()?;
/// let (lo, hi) = m.bounds(0, 1);
/// // The ML estimate 0.8 sits inside its Wilson interval.
/// assert!(lo < 0.8 && 0.8 < hi);
/// # Ok(())
/// # }
/// ```
pub fn interval_dtmc_from_traces(
    num_states: usize,
    dataset: &TraceDataset,
    class_weights: Option<&[f64]>,
    confidence: f64,
    opts: MlOptions,
) -> Result<IntervalDtmcBuilder, ModelError> {
    if !(confidence > 0.0 && confidence < 1.0 && confidence.is_finite()) {
        return Err(ModelError::InvalidProbability {
            value: confidence,
            context: "confidence level must be in (0, 1)".into(),
        });
    }
    let alpha = 1.0 - confidence;
    let counts = dataset.transition_counts(num_states, class_weights)?;
    let mut b = IntervalDtmcBuilder::new(num_states);
    for (s, row) in counts.iter().enumerate() {
        let smoothed: Vec<(usize, f64)> = row
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0.0)
            .map(|(t, &c)| (t, c + opts.smoothing))
            .collect();
        let total: f64 = smoothed.iter().map(|&(_, c)| c).sum();
        if total == 0.0 {
            if opts.self_loop_unvisited {
                b.transition(s, s, 1.0, 1.0)?;
                continue;
            }
            return Err(ModelError::MissingDistribution { state: s });
        }
        for (t, c) in smoothed {
            let ci = tml_numerics::stats::wilson_interval_weighted(c, total, alpha);
            // Wilson contains the point estimate c/total, so Σ lo ≤ 1 ≤ Σ hi
            // holds row-wise and the polytope is never empty.
            b.transition(s, t, ci.low, ci.high)?;
        }
    }
    Ok(b)
}

/// Maximum-likelihood MDP estimation from an action-annotated trace dataset.
///
/// `action_names` fixes the action table (traces refer to actions by index
/// into it). States with no observations for any action get a single
/// self-loop choice named after `action_names[0]` when
/// `opts.self_loop_unvisited` holds.
///
/// # Errors
///
/// Propagates [`TraceDataset::action_counts`] errors, and
/// [`ModelError::MissingDistribution`] for unvisited states when
/// `opts.self_loop_unvisited` is false.
pub fn ml_mdp(
    num_states: usize,
    action_names: &[String],
    dataset: &TraceDataset,
    class_weights: Option<&[f64]>,
    opts: MlOptions,
) -> Result<MdpBuilder, ModelError> {
    let counts = dataset.action_counts(num_states, action_names.len(), class_weights)?;
    let mut b = MdpBuilder::new(num_states);
    for (s, per_action) in counts.iter().enumerate() {
        let mut any = false;
        for (a, row) in per_action.iter().enumerate() {
            let smoothed: Vec<(usize, f64)> = row
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0.0)
                .map(|(t, &c)| (t, c + opts.smoothing))
                .collect();
            let total: f64 = smoothed.iter().map(|&(_, c)| c).sum();
            if total == 0.0 {
                continue;
            }
            let dist: Vec<(usize, f64)> =
                smoothed.into_iter().map(|(t, c)| (t, c / total)).collect();
            b.choice(s, &action_names[a], &dist)?;
            any = true;
        }
        if !any {
            if opts.self_loop_unvisited {
                b.choice(s, &action_names[0], &[(s, 1.0)])?;
            } else {
                return Err(ModelError::MissingDistribution { state: s });
            }
        }
    }
    Ok(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset() -> TraceDataset {
        let mut ds = TraceDataset::new();
        let good = ds.add_class("good");
        let bad = ds.add_class("bad");
        ds.push(good, Path::from_states(vec![0, 1]), 2.0).unwrap();
        ds.push(bad, Path::from_states(vec![0, 0]), 1.0).unwrap();
        ds
    }

    #[test]
    fn class_registration_is_idempotent() {
        let mut ds = TraceDataset::new();
        assert_eq!(ds.add_class("x"), 0);
        assert_eq!(ds.add_class("y"), 1);
        assert_eq!(ds.add_class("x"), 0);
        assert_eq!(ds.num_classes(), 2);
    }

    #[test]
    fn push_validation() {
        let mut ds = TraceDataset::new();
        assert!(ds.push(0, Path::from_states(vec![0]), 1.0).is_err());
        let c = ds.add_class("c");
        assert!(ds.push(c, Path::from_states(vec![0]), -1.0).is_err());
        assert!(ds.push(c, Path::from_states(vec![0]), f64::NAN).is_err());
        assert!(ds.push(c, Path::from_states(vec![0]), 1.0).is_ok());
    }

    #[test]
    fn ml_dtmc_unweighted() {
        let ds = dataset();
        let chain = ml_dtmc(2, &ds, None, MlOptions::default()).unwrap().build().unwrap();
        assert!((chain.probability(0, 1) - 2.0 / 3.0).abs() < 1e-12);
        assert!((chain.probability(0, 0) - 1.0 / 3.0).abs() < 1e-12);
        // state 1 unvisited → self loop
        assert_eq!(chain.probability(1, 1), 1.0);
    }

    #[test]
    fn ml_dtmc_class_weights_reweight() {
        let ds = dataset();
        // dropping the "bad" class entirely makes 0 -> 1 certain
        let chain =
            ml_dtmc(2, &ds, Some(&[1.0, 0.0]), MlOptions::default()).unwrap().build().unwrap();
        assert_eq!(chain.probability(0, 1), 1.0);
    }

    #[test]
    fn ml_dtmc_smoothing() {
        let ds = dataset();
        let chain = ml_dtmc(2, &ds, None, MlOptions { smoothing: 1.0, self_loop_unvisited: true })
            .unwrap()
            .build()
            .unwrap();
        // counts become 3 and 2 over observed support
        assert!((chain.probability(0, 1) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn ml_dtmc_unvisited_failure_mode() {
        let ds = dataset();
        let err = ml_dtmc(3, &ds, None, MlOptions { smoothing: 0.0, self_loop_unvisited: false })
            .unwrap_err();
        assert!(matches!(err, ModelError::MissingDistribution { .. }));
    }

    #[test]
    fn ml_dtmc_rejects_out_of_range_state() {
        let ds = dataset();
        assert!(ml_dtmc(1, &ds, None, MlOptions::default()).is_err());
    }

    #[test]
    fn weight_vector_validation() {
        let ds = dataset();
        assert!(ds.transition_counts(2, Some(&[1.0])).is_err());
        assert!(ds.transition_counts(2, Some(&[1.0, -0.5])).is_err());
    }

    #[test]
    fn ml_mdp_learns_per_action() {
        let mut ds = TraceDataset::new();
        let c = ds.add_class("obs");
        ds.push(c, Path::with_actions(vec![0, 1], vec![0]).unwrap(), 3.0).unwrap();
        ds.push(c, Path::with_actions(vec![0, 0], vec![0]).unwrap(), 1.0).unwrap();
        ds.push(c, Path::with_actions(vec![0, 0], vec![1]).unwrap(), 1.0).unwrap();
        let names = vec!["go".to_owned(), "stay".to_owned()];
        let mdp = ml_mdp(2, &names, &ds, None, MlOptions::default()).unwrap().build().unwrap();
        assert_eq!(mdp.num_choices(0), 2);
        let go = mdp.choice_for_action(0, 0).unwrap();
        let dist = &mdp.choices(0)[go].transitions;
        assert!((dist.iter().find(|&&(t, _)| t == 1).unwrap().1 - 0.75).abs() < 1e-12);
        // state 1 unvisited → self loop with first action name
        assert_eq!(mdp.num_choices(1), 1);
    }

    #[test]
    fn ml_mdp_requires_actions() {
        let mut ds = TraceDataset::new();
        let c = ds.add_class("obs");
        ds.push(c, Path::from_states(vec![0, 1]), 1.0).unwrap();
        let names = vec!["a".to_owned()];
        assert!(ml_mdp(2, &names, &ds, None, MlOptions::default()).is_err());
    }

    #[test]
    fn interval_learning_brackets_the_ml_estimate() {
        let ds = dataset();
        let ml = ml_dtmc(2, &ds, None, MlOptions::default()).unwrap().build().unwrap();
        let m = interval_dtmc_from_traces(2, &ds, None, 0.9, MlOptions::default())
            .unwrap()
            .build()
            .unwrap();
        for s in 0..2 {
            for (t, p) in ml.successors(s) {
                let (lo, hi) = m.bounds(s, t);
                assert!(lo <= p && p <= hi, "ML estimate {p} outside [{lo}, {hi}]");
            }
        }
        assert!(m.contains(&ml));
        // Unvisited state 1 gets the exact self-loop.
        assert_eq!(m.bounds(1, 1), (1.0, 1.0));
        // More data at the same confidence tightens the set.
        let mut big = TraceDataset::new();
        let c = big.add_class("good");
        big.add_class("bad");
        big.push(c, Path::from_states(vec![0, 1]), 200.0).unwrap();
        big.push(c, Path::from_states(vec![0, 0]), 100.0).unwrap();
        let tight = interval_dtmc_from_traces(2, &big, None, 0.9, MlOptions::default())
            .unwrap()
            .build()
            .unwrap();
        let (lo, hi) = m.bounds(0, 1);
        let (tlo, thi) = tight.bounds(0, 1);
        assert!(thi - tlo < hi - lo);
        // Class weights flow through to the interval construction.
        let sure = interval_dtmc_from_traces(2, &ds, Some(&[1.0, 0.0]), 0.9, MlOptions::default())
            .unwrap()
            .build()
            .unwrap();
        assert!(sure.bounds(0, 1).1 > 0.9);
        // Bad confidence levels are rejected.
        assert!(interval_dtmc_from_traces(2, &ds, None, 1.5, MlOptions::default()).is_err());
        assert!(interval_dtmc_from_traces(2, &ds, None, 0.0, MlOptions::default()).is_err());
    }

    #[test]
    fn totals() {
        let ds = dataset();
        assert_eq!(ds.num_traces(), 2);
        assert_eq!(ds.total_weight(), 3.0);
        assert_eq!(ds.iter().count(), 2);
    }
}
