//! A small textual model-description language, so models can live in
//! files and be checked from the command line (see the `tml-cli` crate).
//!
//! The format is line-oriented and PRISM-inspired:
//!
//! ```text
//! # a comment
//! dtmc                      # or: mdp
//! states 3
//! initial 0
//! label "goal" = 2
//! reward "steps" 0 = 1.0
//!
//! # DTMC rows: FROM -> TO: PROB, TO: PROB, ...
//! 0 -> 0: 0.25, 1: 0.75
//! 1 -> 2: 1.0
//! 2 -> 2: 1.0
//! ```
//!
//! MDP rows name an action in brackets (a state may have several):
//!
//! ```text
//! mdp
//! states 2
//! 0 [go]   -> 1: 1.0
//! 0 [stay] -> 0: 1.0
//! 1 [stay] -> 1: 1.0
//! ```
//!
//! Choice rewards use `reward "name" STATE [ACTION-INDEX] = VALUE`.
//!
//! Transition probabilities may be **intervals** `LO..HI` instead of point
//! values (`0 -> 0: 0.1..0.3, 1: 0.7..0.9`). A `dtmc`/`mdp` file containing
//! any interval entry is promoted to an interval model; the directives
//! `idtmc`/`imdp` force an interval model even when every entry is a point.

use std::error::Error;
use std::fmt;

use crate::interval::{IntervalDtmc, IntervalDtmcBuilder, IntervalMdp, IntervalMdpBuilder};
use crate::{Dtmc, DtmcBuilder, Mdp, MdpBuilder, ModelError};

/// A parsed model file: any kind of model.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelFile {
    /// A discrete-time Markov chain.
    Dtmc(Dtmc),
    /// A Markov decision process.
    Mdp(Mdp),
    /// A Markov chain with `[lo, hi]` interval transition probabilities.
    IntervalDtmc(IntervalDtmc),
    /// An MDP with `[lo, hi]` interval transition probabilities.
    IntervalMdp(IntervalMdp),
}

impl ModelFile {
    /// The number of states, regardless of kind.
    pub fn num_states(&self) -> usize {
        match self {
            ModelFile::Dtmc(m) => m.num_states(),
            ModelFile::Mdp(m) => m.num_states(),
            ModelFile::IntervalDtmc(m) => m.num_states(),
            ModelFile::IntervalMdp(m) => m.num_states(),
        }
    }

    /// `"dtmc"`, `"mdp"`, `"idtmc"` or `"imdp"`.
    pub fn kind(&self) -> &'static str {
        match self {
            ModelFile::Dtmc(_) => "dtmc",
            ModelFile::Mdp(_) => "mdp",
            ModelFile::IntervalDtmc(_) => "idtmc",
            ModelFile::IntervalMdp(_) => "imdp",
        }
    }
}

/// Error produced when parsing a model description fails.
#[derive(Debug, Clone, PartialEq)]
pub struct DslError {
    /// 1-based line number of the offending line (0 for file-level errors).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl DslError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        DslError { line, message: message.into() }
    }
}

impl fmt::Display for DslError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "model description error at line {}: {}", self.line, self.message)
    }
}

impl Error for DslError {}

/// `(line, from, [(to, lo, hi)])` — one parsed DTMC transition row. Point
/// probabilities are stored as degenerate intervals `lo == hi`.
type DtmcRow = (usize, usize, Vec<(usize, f64, f64)>);
/// `(line, from, action, [(to, lo, hi)])` — one parsed MDP choice row.
type MdpRow = (usize, usize, String, Vec<(usize, f64, f64)>);

/// Parses a model description.
///
/// # Errors
///
/// Returns a [`DslError`] with the offending line on malformed input, or a
/// wrapped [`ModelError`] message if the assembled model is invalid (e.g.
/// rows that do not sum to one).
///
/// # Example
///
/// ```
/// use tml_models::dsl::{parse_model, ModelFile};
///
/// let src = "dtmc\nstates 2\nlabel \"done\" = 1\n0 -> 1: 1.0\n1 -> 1: 1.0\n";
/// let model = parse_model(src).unwrap();
/// assert_eq!(model.kind(), "dtmc");
/// assert_eq!(model.num_states(), 2);
/// ```
pub fn parse_model(source: &str) -> Result<ModelFile, DslError> {
    let mut kind: Option<&str> = None;
    let mut num_states: Option<usize> = None;
    let mut initial = 0usize;
    let mut labels: Vec<(usize, String, usize)> = Vec::new(); // (line, name, state)
    let mut state_rewards: Vec<(usize, String, usize, f64)> = Vec::new();
    let mut choice_rewards: Vec<(usize, String, usize, usize, f64)> = Vec::new();
    let mut dtmc_rows: Vec<DtmcRow> = Vec::new();
    let mut mdp_rows: Vec<MdpRow> = Vec::new();
    let mut saw_interval = false;

    for (idx, raw) in source.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if kind.is_none() {
            match line {
                "dtmc" => kind = Some("dtmc"),
                "mdp" => kind = Some("mdp"),
                "idtmc" => kind = Some("idtmc"),
                "imdp" => kind = Some("imdp"),
                other => {
                    return Err(DslError::new(
                        lineno,
                        format!(
                            "expected 'dtmc', 'mdp', 'idtmc' or 'imdp' as the first directive, \
                             found {other:?}"
                        ),
                    ))
                }
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("states") {
            num_states = Some(parse_usize(rest.trim(), lineno, "state count")?);
        } else if let Some(rest) = line.strip_prefix("initial") {
            initial = parse_usize(rest.trim(), lineno, "initial state")?;
        } else if let Some(rest) = line.strip_prefix("label") {
            let (name, states) = parse_named_assignment(rest, lineno)?;
            for s in states.split(',') {
                labels.push((lineno, name.clone(), parse_usize(s.trim(), lineno, "label state")?));
            }
        } else if line.starts_with("reward") {
            // Parsed in a dedicated second pass (the reward grammar has its
            // own name/state/choice/value shape); validate lazily there.
            continue;
        } else if line.contains("->") {
            let (lhs, rhs) = split_once(line, '-', lineno, "transition row")?;
            let rhs =
                rhs.strip_prefix('>').ok_or_else(|| DslError::new(lineno, "expected '->'"))?;
            let lhs = lhs.trim();
            let (dist, has_interval) = parse_distribution(rhs, lineno)?;
            saw_interval |= has_interval;
            if let Some(open) = lhs.find('[') {
                let close = lhs
                    .find(']')
                    .ok_or_else(|| DslError::new(lineno, "unclosed '[' in action name"))?;
                let from = parse_usize(lhs[..open].trim(), lineno, "source state")?;
                let action = lhs[open + 1..close].trim().to_owned();
                if action.is_empty() {
                    return Err(DslError::new(lineno, "empty action name"));
                }
                mdp_rows.push((lineno, from, action, dist));
            } else {
                let from = parse_usize(lhs, lineno, "source state")?;
                dtmc_rows.push((lineno, from, dist));
            }
        } else {
            return Err(DslError::new(lineno, format!("unrecognized directive {line:?}")));
        }
    }
    // Re-scan for rewards (kept out of the main loop for clarity of the
    // name/assignment split).
    for (idx, raw) in source.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim();
        if let Some(rest) = line.strip_prefix("reward") {
            let (name, state, choice, value) = parse_reward(rest, lineno)?;
            match choice {
                Some(c) => choice_rewards.push((lineno, name, state, c, value)),
                None => state_rewards.push((lineno, name, state, value)),
            }
        }
    }

    let kind = kind.ok_or_else(|| DslError::new(0, "empty model description"))?;
    let n = num_states.ok_or_else(|| DslError::new(0, "missing 'states N' directive"))?;

    // A point-kind file that uses `LO..HI` entries is promoted to the
    // matching interval kind.
    let kind = match (kind, saw_interval) {
        ("dtmc", true) => "idtmc",
        ("mdp", true) => "imdp",
        (k, _) => k,
    };

    let wrap = |lineno: usize, e: ModelError| DslError::new(lineno, e.to_string());
    let is_mdp = matches!(kind, "mdp" | "imdp");
    if is_mdp {
        if let Some((lineno, ..)) = dtmc_rows.first() {
            return Err(DslError::new(
                *lineno,
                "mdp rows need an action name in brackets: STATE [action] -> ...",
            ));
        }
    } else {
        if let Some((lineno, _, action, _)) = mdp_rows.first() {
            return Err(DslError::new(
                *lineno,
                format!("action {action:?} in a dtmc (use 'mdp' as the first directive)"),
            ));
        }
        if let Some((lineno, ..)) = choice_rewards.first() {
            return Err(DslError::new(*lineno, "choice rewards are only valid in an mdp"));
        }
    }
    match kind {
        "dtmc" => {
            let mut b = DtmcBuilder::new(n);
            b.initial_state(initial).map_err(|e| wrap(0, e))?;
            for (lineno, from, dist) in dtmc_rows {
                for (to, p, _) in dist {
                    b.transition(from, to, p).map_err(|e| wrap(lineno, e))?;
                }
            }
            for (lineno, name, s) in labels {
                b.label(s, &name).map_err(|e| wrap(lineno, e))?;
            }
            for (lineno, name, s, v) in state_rewards {
                b.state_reward(&name, s, v).map_err(|e| wrap(lineno, e))?;
            }
            Ok(ModelFile::Dtmc(b.build().map_err(|e| wrap(0, e))?))
        }
        "idtmc" => {
            let mut b = IntervalDtmcBuilder::new(n);
            b.initial_state(initial).map_err(|e| wrap(0, e))?;
            for (lineno, from, dist) in dtmc_rows {
                for (to, lo, hi) in dist {
                    b.transition(from, to, lo, hi).map_err(|e| wrap(lineno, e))?;
                }
            }
            for (lineno, name, s) in labels {
                b.label(s, &name).map_err(|e| wrap(lineno, e))?;
            }
            for (lineno, name, s, v) in state_rewards {
                b.state_reward(&name, s, v).map_err(|e| wrap(lineno, e))?;
            }
            Ok(ModelFile::IntervalDtmc(b.build().map_err(|e| wrap(0, e))?))
        }
        "mdp" => {
            let mut b = MdpBuilder::new(n);
            b.initial_state(initial).map_err(|e| wrap(0, e))?;
            for (lineno, from, action, dist) in mdp_rows {
                let point: Vec<(usize, f64)> = dist.iter().map(|&(t, p, _)| (t, p)).collect();
                b.choice(from, &action, &point).map_err(|e| wrap(lineno, e))?;
            }
            for (lineno, name, s) in labels {
                b.label(s, &name).map_err(|e| wrap(lineno, e))?;
            }
            for (lineno, name, s, v) in state_rewards {
                b.state_reward(&name, s, v).map_err(|e| wrap(lineno, e))?;
            }
            for (lineno, name, s, c, v) in choice_rewards {
                b.choice_reward(&name, s, c, v).map_err(|e| wrap(lineno, e))?;
            }
            Ok(ModelFile::Mdp(b.build().map_err(|e| wrap(0, e))?))
        }
        "imdp" => {
            let mut b = IntervalMdpBuilder::new(n);
            b.initial_state(initial).map_err(|e| wrap(0, e))?;
            for (lineno, from, action, dist) in mdp_rows {
                b.choice(from, &action, &dist).map_err(|e| wrap(lineno, e))?;
            }
            for (lineno, name, s) in labels {
                b.label(s, &name).map_err(|e| wrap(lineno, e))?;
            }
            for (lineno, name, s, v) in state_rewards {
                b.state_reward(&name, s, v).map_err(|e| wrap(lineno, e))?;
            }
            for (lineno, name, s, c, v) in choice_rewards {
                b.choice_reward(&name, s, c, v).map_err(|e| wrap(lineno, e))?;
            }
            Ok(ModelFile::IntervalMdp(b.build().map_err(|e| wrap(0, e))?))
        }
        _ => unreachable!("kind is validated above"),
    }
}

/// Serializes a DTMC back into the textual format (round-trips through
/// [`parse_model`]).
pub fn dtmc_to_dsl(model: &Dtmc) -> String {
    let mut out = String::from("dtmc\n");
    out.push_str(&format!("states {}\n", model.num_states()));
    out.push_str(&format!("initial {}\n", model.initial_state()));
    for label in model.labeling().labels() {
        let states: Vec<String> =
            model.labeling().states_with(label).map(|s| s.to_string()).collect();
        out.push_str(&format!("label \"{label}\" = {}\n", states.join(", ")));
    }
    for rs in model.reward_structures() {
        for s in 0..model.num_states() {
            let r = rs.state_reward(s);
            if r != 0.0 {
                out.push_str(&format!("reward \"{}\" {s} = {r}\n", rs.name()));
            }
        }
    }
    for s in 0..model.num_states() {
        let row: Vec<String> = model.successors(s).map(|(t, p)| format!("{t}: {p}")).collect();
        out.push_str(&format!("{s} -> {}\n", row.join(", ")));
    }
    out
}

/// Serializes an MDP back into the textual format.
pub fn mdp_to_dsl(model: &Mdp) -> String {
    let mut out = String::from("mdp\n");
    out.push_str(&format!("states {}\n", model.num_states()));
    out.push_str(&format!("initial {}\n", model.initial_state()));
    for label in model.labeling().labels() {
        let states: Vec<String> =
            model.labeling().states_with(label).map(|s| s.to_string()).collect();
        out.push_str(&format!("label \"{label}\" = {}\n", states.join(", ")));
    }
    for rs in model.reward_structures() {
        for s in 0..model.num_states() {
            let r = rs.state_reward(s);
            if r != 0.0 {
                out.push_str(&format!("reward \"{}\" {s} = {r}\n", rs.name()));
            }
            for c in 0..model.num_choices(s) {
                let cr = rs.choice_reward(s, c);
                if cr != 0.0 {
                    out.push_str(&format!("reward \"{}\" {s} [{c}] = {cr}\n", rs.name()));
                }
            }
        }
    }
    for s in 0..model.num_states() {
        for choice in model.choices(s) {
            let row: Vec<String> =
                choice.transitions.iter().map(|&(t, p)| format!("{t}: {p}")).collect();
            out.push_str(&format!(
                "{s} [{}] -> {}\n",
                model.action_name(choice.action),
                row.join(", ")
            ));
        }
    }
    out
}

/// Serializes an interval DTMC into the textual format (round-trips
/// through [`parse_model`] — the explicit `idtmc` directive preserves the
/// kind even when every interval is degenerate).
pub fn interval_dtmc_to_dsl(model: &IntervalDtmc) -> String {
    let mut out = String::from("idtmc\n");
    out.push_str(&format!("states {}\n", model.num_states()));
    out.push_str(&format!("initial {}\n", model.initial_state()));
    for label in model.labeling().labels() {
        let states: Vec<String> =
            model.labeling().states_with(label).map(|s| s.to_string()).collect();
        out.push_str(&format!("label \"{label}\" = {}\n", states.join(", ")));
    }
    for rs in model.reward_structures() {
        for s in 0..model.num_states() {
            let r = rs.state_reward(s);
            if r != 0.0 {
                out.push_str(&format!("reward \"{}\" {s} = {r}\n", rs.name()));
            }
        }
    }
    for s in 0..model.num_states() {
        let row: Vec<String> =
            model.successors(s).map(|(t, lo, hi)| format!("{t}: {lo}..{hi}")).collect();
        out.push_str(&format!("{s} -> {}\n", row.join(", ")));
    }
    out
}

/// Serializes an interval MDP into the textual format.
pub fn interval_mdp_to_dsl(model: &IntervalMdp) -> String {
    let mut out = String::from("imdp\n");
    out.push_str(&format!("states {}\n", model.num_states()));
    out.push_str(&format!("initial {}\n", model.initial_state()));
    for label in model.labeling().labels() {
        let states: Vec<String> =
            model.labeling().states_with(label).map(|s| s.to_string()).collect();
        out.push_str(&format!("label \"{label}\" = {}\n", states.join(", ")));
    }
    for rs in model.reward_structures() {
        for s in 0..model.num_states() {
            let r = rs.state_reward(s);
            if r != 0.0 {
                out.push_str(&format!("reward \"{}\" {s} = {r}\n", rs.name()));
            }
            for c in 0..model.num_choices(s) {
                let cr = rs.choice_reward(s, c);
                if cr != 0.0 {
                    out.push_str(&format!("reward \"{}\" {s} [{c}] = {cr}\n", rs.name()));
                }
            }
        }
    }
    for s in 0..model.num_states() {
        for choice in model.choices(s) {
            let row: Vec<String> =
                choice.transitions.iter().map(|&(t, lo, hi)| format!("{t}: {lo}..{hi}")).collect();
            out.push_str(&format!(
                "{s} [{}] -> {}\n",
                model.action_name(choice.action),
                row.join(", ")
            ));
        }
    }
    out
}

fn strip_comment(line: &str) -> &str {
    match line.find('#') {
        Some(i) => &line[..i],
        None => line,
    }
}

fn parse_usize(text: &str, line: usize, what: &str) -> Result<usize, DslError> {
    text.parse().map_err(|_| DslError::new(line, format!("invalid {what}: {text:?}")))
}

fn parse_f64(text: &str, line: usize, what: &str) -> Result<f64, DslError> {
    text.trim().parse().map_err(|_| DslError::new(line, format!("invalid {what}: {text:?}")))
}

/// Parses `"name" = rest` returning `(name, rest)`.
fn parse_named_assignment(rest: &str, line: usize) -> Result<(String, String), DslError> {
    let rest = rest.trim();
    let inner =
        rest.strip_prefix('"').ok_or_else(|| DslError::new(line, "expected a quoted name"))?;
    let close = inner.find('"').ok_or_else(|| DslError::new(line, "unterminated quoted name"))?;
    let name = inner[..close].to_owned();
    let after = inner[close + 1..].trim();
    let value = after
        .strip_prefix('=')
        .ok_or_else(|| DslError::new(line, "expected '=' after the name"))?
        .trim()
        .to_owned();
    Ok((name, value))
}

/// Parses `"name" STATE = V` or `"name" STATE [CHOICE] = V`.
fn parse_reward(rest: &str, line: usize) -> Result<(String, usize, Option<usize>, f64), DslError> {
    let rest = rest.trim();
    let inner = rest
        .strip_prefix('"')
        .ok_or_else(|| DslError::new(line, "expected a quoted reward structure name"))?;
    let close = inner.find('"').ok_or_else(|| DslError::new(line, "unterminated quoted name"))?;
    let name = inner[..close].to_owned();
    let after = inner[close + 1..].trim();
    let (lhs, value) = split_once(after, '=', line, "reward assignment")?;
    let value = parse_f64(&value, line, "reward value")?;
    let lhs = lhs.trim();
    if let Some(open) = lhs.find('[') {
        let close = lhs.find(']').ok_or_else(|| DslError::new(line, "unclosed '['"))?;
        let state = parse_usize(lhs[..open].trim(), line, "reward state")?;
        let choice = parse_usize(lhs[open + 1..close].trim(), line, "choice index")?;
        Ok((name, state, Some(choice), value))
    } else {
        let state = parse_usize(lhs, line, "reward state")?;
        Ok((name, state, None, value))
    }
}

/// `(target, lo, hi)` triples plus whether any entry used interval syntax.
type ParsedDistribution = (Vec<(usize, f64, f64)>, bool);

/// Parses `TO: PROB` / `TO: LO..HI` entries. Returns the triples (point
/// probabilities as degenerate intervals) and whether any entry used the
/// interval syntax.
fn parse_distribution(text: &str, line: usize) -> Result<ParsedDistribution, DslError> {
    let mut dist = Vec::new();
    let mut has_interval = false;
    for part in text.split(',') {
        let (state, prob) = split_once(part, ':', line, "distribution entry")?;
        let target = parse_usize(state.trim(), line, "target state")?;
        let (lo, hi) = match prob.split_once("..") {
            Some((lo, hi)) => {
                has_interval = true;
                (
                    parse_f64(lo, line, "interval lower bound")?,
                    parse_f64(hi, line, "interval upper bound")?,
                )
            }
            None => {
                let p = parse_f64(&prob, line, "probability")?;
                (p, p)
            }
        };
        dist.push((target, lo, hi));
    }
    if dist.is_empty() {
        return Err(DslError::new(line, "empty distribution"));
    }
    Ok((dist, has_interval))
}

fn split_once(
    text: &str,
    sep: char,
    line: usize,
    what: &str,
) -> Result<(String, String), DslError> {
    match text.split_once(sep) {
        Some((a, b)) => Ok((a.trim().to_owned(), b.trim().to_owned())),
        None => Err(DslError::new(line, format!("malformed {what}: {text:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DTMC_SRC: &str = r#"
# gambler's chain
dtmc
states 3
initial 1
label "rich" = 2
label "broke" = 0
reward "steps" 1 = 1.0
0 -> 0: 1.0
1 -> 0: 0.5, 2: 0.5
2 -> 2: 1.0
"#;

    const MDP_SRC: &str = r#"
mdp
states 2
label "goal" = 1
reward "cost" 0 = 1.0
reward "cost" 0 [1] = 0.5
0 [go]   -> 1: 1.0
0 [stay] -> 0: 1.0
1 [stay] -> 1: 1.0
"#;

    #[test]
    fn parses_dtmc() {
        let m = parse_model(DTMC_SRC).unwrap();
        assert_eq!(m.kind(), "dtmc");
        let ModelFile::Dtmc(d) = m else { panic!("expected dtmc") };
        assert_eq!(d.num_states(), 3);
        assert_eq!(d.initial_state(), 1);
        assert_eq!(d.probability(1, 2), 0.5);
        assert!(d.labeling().has(2, "rich"));
        assert_eq!(d.reward_structure("steps").unwrap().state_reward(1), 1.0);
    }

    #[test]
    fn parses_mdp() {
        let m = parse_model(MDP_SRC).unwrap();
        let ModelFile::Mdp(m) = m else { panic!("expected mdp") };
        assert_eq!(m.num_choices(0), 2);
        assert_eq!(m.action_id("go"), Some(0));
        assert_eq!(m.reward_structure("cost").unwrap().choice_reward(0, 1), 0.5);
        assert!(m.labeling().has(1, "goal"));
    }

    #[test]
    fn dtmc_roundtrip() {
        let ModelFile::Dtmc(d) = parse_model(DTMC_SRC).unwrap() else { panic!() };
        let printed = dtmc_to_dsl(&d);
        let ModelFile::Dtmc(d2) = parse_model(&printed).unwrap() else { panic!() };
        assert_eq!(d, d2);
    }

    #[test]
    fn mdp_roundtrip() {
        let ModelFile::Mdp(m) = parse_model(MDP_SRC).unwrap() else { panic!() };
        let printed = mdp_to_dsl(&m);
        let ModelFile::Mdp(m2) = parse_model(&printed).unwrap() else { panic!() };
        assert_eq!(m, m2);
    }

    #[test]
    fn error_reporting_includes_lines() {
        let err = parse_model("dtmc\nstates 1\n0 -> 0: 0.5\n").unwrap_err();
        assert!(err.to_string().contains("sum"), "{err}");

        let err = parse_model("dtmc\nstates 1\nbogus line\n").unwrap_err();
        assert_eq!(err.line, 3);

        let err = parse_model("chain\n").unwrap_err();
        assert_eq!(err.line, 1);

        let err = parse_model("").unwrap_err();
        assert!(err.to_string().contains("empty"));

        let err = parse_model("dtmc\n0 -> 0: 1.0\n").unwrap_err();
        assert!(err.to_string().contains("states"), "{err}");
    }

    #[test]
    fn kind_mismatches_rejected() {
        let err = parse_model("dtmc\nstates 1\n0 [a] -> 0: 1.0\n").unwrap_err();
        assert!(err.to_string().contains("dtmc"), "{err}");
        let err = parse_model("mdp\nstates 1\n0 -> 0: 1.0\n").unwrap_err();
        assert!(err.to_string().contains("action"), "{err}");
        let err =
            parse_model("dtmc\nstates 1\nreward \"r\" 0 [0] = 1.0\n0 -> 0: 1.0\n").unwrap_err();
        assert!(err.to_string().contains("choice rewards"), "{err}");
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let m =
            parse_model("# header\n\ndtmc # kind\nstates 1 # one\n0 -> 0: 1.0 # loop\n").unwrap();
        assert_eq!(m.num_states(), 1);
    }

    const IDTMC_SRC: &str = r#"
idtmc
states 3
initial 0
label "goal" = 2
reward "steps" 0 = 1.0
0 -> 0: 0.1..0.3, 1: 0.5..0.7, 2: 0.1..0.2
1 -> 2: 1.0
2 -> 2: 1.0
"#;

    #[test]
    fn parses_interval_dtmc() {
        let m = parse_model(IDTMC_SRC).unwrap();
        assert_eq!(m.kind(), "idtmc");
        let ModelFile::IntervalDtmc(m) = m else { panic!("expected idtmc") };
        assert_eq!(m.bounds(0, 1), (0.5, 0.7));
        assert_eq!(m.bounds(1, 2), (1.0, 1.0));
        assert!(m.labeling().has(2, "goal"));
        assert_eq!(m.reward_structure("steps").unwrap().state_reward(0), 1.0);
    }

    #[test]
    fn interval_syntax_promotes_point_kinds() {
        let m = parse_model("dtmc\nstates 2\n0 -> 1: 0.9..1.0\n1 -> 1: 1.0\n").unwrap();
        assert_eq!(m.kind(), "idtmc");
        let m = parse_model("mdp\nstates 1\n0 [a] -> 0: 0.9..1.0\n").unwrap();
        assert_eq!(m.kind(), "imdp");
        let ModelFile::IntervalMdp(m) = m else { panic!("expected imdp") };
        assert_eq!(m.choices(0)[0].transitions, vec![(0, 0.9, 1.0)]);
    }

    #[test]
    fn interval_roundtrips() {
        let ModelFile::IntervalDtmc(m) = parse_model(IDTMC_SRC).unwrap() else { panic!() };
        let printed = interval_dtmc_to_dsl(&m);
        let ModelFile::IntervalDtmc(m2) = parse_model(&printed).unwrap() else { panic!() };
        assert_eq!(m, m2);

        let src = "imdp\nstates 2\nlabel \"goal\" = 1\nreward \"cost\" 0 [0] = 0.5\n\
                   0 [go] -> 0: 0.0..0.2, 1: 0.8..1.0\n1 [stay] -> 1: 1.0\n";
        let ModelFile::IntervalMdp(m) = parse_model(src).unwrap() else { panic!() };
        let printed = interval_mdp_to_dsl(&m);
        let ModelFile::IntervalMdp(m2) = parse_model(&printed).unwrap() else { panic!() };
        assert_eq!(m, m2);
    }

    #[test]
    fn interval_errors_reported_with_lines() {
        // Inverted interval: rejected by the validating builder.
        let err = parse_model("idtmc\nstates 1\n0 -> 0: 0.9..0.1\n").unwrap_err();
        assert!(err.to_string().contains("interval"), "{err}");
        assert_eq!(err.line, 3);
        // Empty polytope (Σ hi < 1).
        let err = parse_model("idtmc\nstates 1\n0 -> 0: 0.1..0.4\n").unwrap_err();
        assert!(err.to_string().contains("sum"), "{err}");
        // Malformed endpoints.
        assert!(parse_model("idtmc\nstates 1\n0 -> 0: 0.1..x\n").is_err());
        assert!(parse_model("idtmc\nstates 1\n0 -> 0: ..0.5\n").is_err());
    }

    #[test]
    fn malformed_pieces() {
        assert!(parse_model("dtmc\nstates x\n").is_err());
        assert!(parse_model("dtmc\nstates 1\nlabel goal = 0\n0 -> 0: 1.0\n").is_err());
        assert!(parse_model("dtmc\nstates 1\nlabel \"g = 0\n0 -> 0: 1.0\n").is_err());
        assert!(parse_model("dtmc\nstates 1\n0 -> 0 1.0\n").is_err());
        assert!(parse_model("dtmc\nstates 1\n0 -> : 1.0\n").is_err());
        assert!(parse_model("mdp\nstates 1\n0 [] -> 0: 1.0\n").is_err());
        assert!(parse_model("mdp\nstates 1\n0 [a -> 0: 1.0\n").is_err());
    }
}
