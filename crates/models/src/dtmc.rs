use std::collections::BTreeMap;

use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

use crate::{Labeling, ModelError, RewardStructure, STOCHASTIC_TOLERANCE};

/// A discrete-time Markov chain with labels and named reward structures.
///
/// States are `0..num_states()`. Each state has a full probability
/// distribution over successor states (validated at
/// [`DtmcBuilder::build`]). The chain also records:
///
/// * an *initial state* (defaults to `0`),
/// * a [`Labeling`] assigning atomic propositions to states,
/// * zero or more named [`RewardStructure`]s.
///
/// Construct instances through [`DtmcBuilder`]; a built `Dtmc` is immutable,
/// which lets the checker cache qualitative results safely.
///
/// # Example
///
/// ```
/// use tml_models::DtmcBuilder;
///
/// # fn main() -> Result<(), tml_models::ModelError> {
/// let mut b = DtmcBuilder::new(3);
/// b.transition(0, 1, 0.5)?;
/// b.transition(0, 2, 0.5)?;
/// b.transition(1, 1, 1.0)?;
/// b.transition(2, 2, 1.0)?;
/// let chain = b.build()?;
/// assert_eq!(chain.successors(0).count(), 2);
/// assert_eq!(chain.probability(0, 1), 0.5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dtmc {
    transitions: Vec<Vec<(usize, f64)>>,
    initial: usize,
    labeling: Labeling,
    rewards: BTreeMap<String, RewardStructure>,
}

impl Dtmc {
    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.transitions.len()
    }

    /// Number of non-zero transitions.
    pub fn num_transitions(&self) -> usize {
        self.transitions.iter().map(Vec::len).sum()
    }

    /// The initial state.
    pub fn initial_state(&self) -> usize {
        self.initial
    }

    /// Iterates over the `(successor, probability)` pairs of `state`, in
    /// increasing successor order.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn successors(&self, state: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.transitions[state].iter().copied()
    }

    /// The probability of moving from `from` to `to` (zero if absent).
    pub fn probability(&self, from: usize, to: usize) -> f64 {
        self.transitions
            .get(from)
            .and_then(|row| row.iter().find(|(t, _)| *t == to))
            .map(|(_, p)| *p)
            .unwrap_or(0.0)
    }

    /// The state labeling.
    pub fn labeling(&self) -> &Labeling {
        &self.labeling
    }

    /// Looks up a reward structure by name.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NotFound`] if no structure has that name.
    pub fn reward_structure(&self, name: &str) -> Result<&RewardStructure, ModelError> {
        self.rewards
            .get(name)
            .ok_or_else(|| ModelError::NotFound { kind: "reward structure", name: name.to_owned() })
    }

    /// The reward structure used when a property does not name one: the
    /// lexicographically first, if any exists.
    pub fn default_reward_structure(&self) -> Option<&RewardStructure> {
        self.rewards.values().next()
    }

    /// Iterates over all reward structures in name order.
    pub fn reward_structures(&self) -> impl Iterator<Item = &RewardStructure> {
        self.rewards.values()
    }

    /// Samples a path of at most `max_steps` transitions starting at the
    /// initial state, stopping early when `stop` returns true for the
    /// current state.
    ///
    /// The returned vector always contains at least the start state.
    pub fn sample_path<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        max_steps: usize,
        stop: impl Fn(usize) -> bool,
    ) -> Vec<usize> {
        let mut path = vec![self.initial];
        let mut current = self.initial;
        for _ in 0..max_steps {
            if stop(current) {
                break;
            }
            current = self.sample_successor(rng, current);
            path.push(current);
        }
        path
    }

    /// Samples one successor of `state` according to its distribution.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn sample_successor<R: Rng + ?Sized>(&self, rng: &mut R, state: usize) -> usize {
        let row = &self.transitions[state];
        let mut u: f64 = rng.random_range(0.0..1.0);
        for &(succ, p) in row {
            if u < p {
                return succ;
            }
            u -= p;
        }
        // Floating-point slack: fall back to the last successor.
        row.last().map(|&(s, _)| s).unwrap_or(state)
    }

    /// Returns a copy of this chain with one transition probability row
    /// replaced. The new row must be a full distribution over its targets.
    ///
    /// This is the low-level mutation used by model repair when
    /// instantiating a perturbation candidate.
    ///
    /// # Errors
    ///
    /// * [`ModelError::StateOutOfBounds`] for a bad state index.
    /// * [`ModelError::InvalidProbability`] / [`ModelError::NotStochastic`]
    ///   if the new row is not a distribution.
    pub fn with_row(&self, state: usize, row: Vec<(usize, f64)>) -> Result<Dtmc, ModelError> {
        if state >= self.num_states() {
            return Err(ModelError::StateOutOfBounds { state, num_states: self.num_states() });
        }
        let mut sum = 0.0;
        for &(succ, p) in &row {
            if succ >= self.num_states() {
                return Err(ModelError::StateOutOfBounds {
                    state: succ,
                    num_states: self.num_states(),
                });
            }
            if !(0.0..=1.0 + STOCHASTIC_TOLERANCE).contains(&p) || !p.is_finite() {
                return Err(ModelError::InvalidProbability {
                    value: p,
                    context: format!("replacement row for state {state}"),
                });
            }
            sum += p;
        }
        if (sum - 1.0).abs() > STOCHASTIC_TOLERANCE {
            return Err(ModelError::NotStochastic { state, sum });
        }
        let mut new = self.clone();
        let mut sorted = row;
        sorted.sort_by_key(|&(t, _)| t);
        new.transitions[state] = sorted;
        Ok(new)
    }
}

/// Incremental builder for [`Dtmc`].
///
/// Accumulate transitions, labels and rewards, then call
/// [`build`](DtmcBuilder::build), which validates that every state has a
/// full outgoing distribution.
#[derive(Debug, Clone)]
pub struct DtmcBuilder {
    num_states: usize,
    transitions: Vec<BTreeMap<usize, f64>>,
    initial: usize,
    labeling: Labeling,
    rewards: BTreeMap<String, RewardStructure>,
}

impl DtmcBuilder {
    /// Creates a builder for a chain with `num_states` states.
    pub fn new(num_states: usize) -> Self {
        DtmcBuilder {
            num_states,
            transitions: vec![BTreeMap::new(); num_states],
            initial: 0,
            labeling: Labeling::new(num_states),
            rewards: BTreeMap::new(),
        }
    }

    /// Sets the initial state (default `0`).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::StateOutOfBounds`] if out of range.
    pub fn initial_state(&mut self, state: usize) -> Result<&mut Self, ModelError> {
        self.check_state(state)?;
        self.initial = state;
        Ok(self)
    }

    /// Adds (or accumulates onto) the transition `from → to` with
    /// probability `p`.
    ///
    /// # Errors
    ///
    /// * [`ModelError::StateOutOfBounds`] for bad indices.
    /// * [`ModelError::InvalidProbability`] if `p` is not in `[0, 1]`.
    pub fn transition(&mut self, from: usize, to: usize, p: f64) -> Result<&mut Self, ModelError> {
        self.check_state(from)?;
        self.check_state(to)?;
        if !p.is_finite() || !(0.0..=1.0).contains(&p) {
            return Err(ModelError::InvalidProbability {
                value: p,
                context: format!("transition {from} -> {to}"),
            });
        }
        if p > 0.0 {
            *self.transitions[from].entry(to).or_insert(0.0) += p;
        }
        Ok(self)
    }

    /// Attaches `label` to `state`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::StateOutOfBounds`] if out of range.
    pub fn label(&mut self, state: usize, label: &str) -> Result<&mut Self, ModelError> {
        self.labeling.add(state, label)?;
        Ok(self)
    }

    /// Sets the per-step reward of `state` in the named reward structure,
    /// creating the structure if necessary.
    ///
    /// # Errors
    ///
    /// Propagates [`RewardStructure::set_state_reward`] errors.
    pub fn state_reward(
        &mut self,
        structure: &str,
        state: usize,
        value: f64,
    ) -> Result<&mut Self, ModelError> {
        let n = self.num_states;
        self.rewards
            .entry(structure.to_owned())
            .or_insert_with(|| RewardStructure::new(structure, n))
            .set_state_reward(state, value)?;
        Ok(self)
    }

    /// Validates and freezes the chain.
    ///
    /// # Errors
    ///
    /// * [`ModelError::MissingDistribution`] if a state has no outgoing
    ///   transition.
    /// * [`ModelError::NotStochastic`] if a state's outgoing probabilities
    ///   do not sum to one (within [`STOCHASTIC_TOLERANCE`]).
    pub fn build(&self) -> Result<Dtmc, ModelError> {
        let mut transitions = Vec::with_capacity(self.num_states);
        for (state, row) in self.transitions.iter().enumerate() {
            if row.is_empty() {
                return Err(ModelError::MissingDistribution { state });
            }
            let sum: f64 = row.values().sum();
            if (sum - 1.0).abs() > STOCHASTIC_TOLERANCE {
                return Err(ModelError::NotStochastic { state, sum });
            }
            transitions.push(row.iter().map(|(&t, &p)| (t, p)).collect());
        }
        Ok(Dtmc {
            transitions,
            initial: self.initial,
            labeling: self.labeling.clone(),
            rewards: self.rewards.clone(),
        })
    }

    fn check_state(&self, state: usize) -> Result<(), ModelError> {
        if state >= self.num_states {
            return Err(ModelError::StateOutOfBounds { state, num_states: self.num_states });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_state() -> Dtmc {
        let mut b = DtmcBuilder::new(2);
        b.transition(0, 0, 0.25).unwrap();
        b.transition(0, 1, 0.75).unwrap();
        b.transition(1, 1, 1.0).unwrap();
        b.label(1, "goal").unwrap();
        b.state_reward("cost", 0, 1.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn builder_roundtrip() {
        let c = two_state();
        assert_eq!(c.num_states(), 2);
        assert_eq!(c.num_transitions(), 3);
        assert_eq!(c.initial_state(), 0);
        assert_eq!(c.probability(0, 1), 0.75);
        assert_eq!(c.probability(1, 0), 0.0);
        assert!(c.labeling().has(1, "goal"));
        assert_eq!(c.reward_structure("cost").unwrap().state_reward(0), 1.0);
        assert!(c.reward_structure("nope").is_err());
        assert_eq!(c.default_reward_structure().unwrap().name(), "cost");
    }

    #[test]
    fn build_rejects_deadlock_and_substochastic() {
        let b = DtmcBuilder::new(2);
        assert!(matches!(b.build().unwrap_err(), ModelError::MissingDistribution { state: 0 }));

        let mut b = DtmcBuilder::new(1);
        b.transition(0, 0, 0.5).unwrap();
        assert!(matches!(b.build().unwrap_err(), ModelError::NotStochastic { state: 0, .. }));
    }

    #[test]
    fn transition_accumulates() {
        let mut b = DtmcBuilder::new(1);
        b.transition(0, 0, 0.5).unwrap();
        b.transition(0, 0, 0.5).unwrap();
        let c = b.build().unwrap();
        assert_eq!(c.probability(0, 0), 1.0);
    }

    #[test]
    fn invalid_probability_rejected() {
        let mut b = DtmcBuilder::new(1);
        assert!(b.transition(0, 0, -0.1).is_err());
        assert!(b.transition(0, 0, 1.5).is_err());
        assert!(b.transition(0, 0, f64::NAN).is_err());
        assert!(b.transition(0, 3, 0.5).is_err());
    }

    #[test]
    fn sampling_reaches_absorbing_goal() {
        let c = two_state();
        let mut rng = StdRng::seed_from_u64(7);
        let path = c.sample_path(&mut rng, 1000, |s| c.labeling().has(s, "goal"));
        assert_eq!(*path.last().unwrap(), 1);
        assert!(path.len() >= 2);
    }

    #[test]
    fn sample_successor_distribution_roughly_correct() {
        let c = two_state();
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let hits = (0..n).filter(|_| c.sample_successor(&mut rng, 0) == 1).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.02, "got {frac}");
    }

    #[test]
    fn with_row_replaces_distribution() {
        let c = two_state();
        let c2 = c.with_row(0, vec![(1, 0.4), (0, 0.6)]).unwrap();
        assert_eq!(c2.probability(0, 1), 0.4);
        assert_eq!(c2.probability(0, 0), 0.6);
        // original untouched
        assert_eq!(c.probability(0, 1), 0.75);
        assert!(c.with_row(0, vec![(0, 0.5)]).is_err());
        assert!(c.with_row(9, vec![(0, 1.0)]).is_err());
        assert!(c.with_row(0, vec![(0, 0.5), (1, 0.6)]).is_err());
    }

    #[test]
    fn initial_state_setting() {
        let mut b = DtmcBuilder::new(2);
        b.transition(0, 1, 1.0).unwrap();
        b.transition(1, 1, 1.0).unwrap();
        b.initial_state(1).unwrap();
        assert!(b.initial_state(5).is_err());
        assert_eq!(b.build().unwrap().initial_state(), 1);
    }
}
