use serde::{Deserialize, Serialize};

use crate::ModelError;

/// A named reward structure: a non-negative reward per state and,
/// optionally, per state–choice pair.
///
/// Mirrors PRISM's `rewards "name" ... endrewards` blocks. The checker's
/// `R{"name"}⋈c [...]` operator refers to these by name. For DTMCs only the
/// state rewards are used; for MDPs the reward gained per step from state
/// `s` under choice `c` is `state_reward(s) + choice_reward(s, c)`.
///
/// # Example
///
/// ```
/// use tml_models::RewardStructure;
///
/// # fn main() -> Result<(), tml_models::ModelError> {
/// let mut r = RewardStructure::new("attempts", 3);
/// r.set_state_reward(0, 1.0)?;
/// assert_eq!(r.state_reward(0), 1.0);
/// assert_eq!(r.state_reward(2), 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RewardStructure {
    name: String,
    state_rewards: Vec<f64>,
    /// `choice_rewards[s][c]`, lazily sized per state.
    choice_rewards: Vec<Vec<f64>>,
}

impl RewardStructure {
    /// Creates an all-zero reward structure over `num_states` states.
    pub fn new(name: &str, num_states: usize) -> Self {
        RewardStructure {
            name: name.to_owned(),
            state_rewards: vec![0.0; num_states],
            choice_rewards: vec![Vec::new(); num_states],
        }
    }

    /// The structure's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of states covered.
    pub fn num_states(&self) -> usize {
        self.state_rewards.len()
    }

    /// Sets the reward gained on every step taken *from* `state`.
    ///
    /// # Errors
    ///
    /// * [`ModelError::StateOutOfBounds`] if `state` is out of range.
    /// * [`ModelError::InvalidReward`] if `value` is negative or non-finite.
    pub fn set_state_reward(&mut self, state: usize, value: f64) -> Result<(), ModelError> {
        if state >= self.state_rewards.len() {
            return Err(ModelError::StateOutOfBounds {
                state,
                num_states: self.state_rewards.len(),
            });
        }
        validate_reward(value, "state reward")?;
        self.state_rewards[state] = value;
        Ok(())
    }

    /// Sets the extra reward gained when taking choice index `choice` in
    /// `state` (MDPs only).
    ///
    /// # Errors
    ///
    /// Same conditions as [`set_state_reward`](Self::set_state_reward).
    pub fn set_choice_reward(
        &mut self,
        state: usize,
        choice: usize,
        value: f64,
    ) -> Result<(), ModelError> {
        if state >= self.choice_rewards.len() {
            return Err(ModelError::StateOutOfBounds {
                state,
                num_states: self.choice_rewards.len(),
            });
        }
        validate_reward(value, "choice reward")?;
        let row = &mut self.choice_rewards[state];
        if row.len() <= choice {
            row.resize(choice + 1, 0.0);
        }
        row[choice] = value;
        Ok(())
    }

    /// The reward gained on each step from `state` (zero when out of range).
    pub fn state_reward(&self, state: usize) -> f64 {
        self.state_rewards.get(state).copied().unwrap_or(0.0)
    }

    /// The extra reward for taking `choice` in `state` (zero by default).
    pub fn choice_reward(&self, state: usize, choice: usize) -> f64 {
        self.choice_rewards.get(state).and_then(|r| r.get(choice)).copied().unwrap_or(0.0)
    }

    /// Total step reward from `state` under `choice`.
    pub fn step_reward(&self, state: usize, choice: usize) -> f64 {
        self.state_reward(state) + self.choice_reward(state, choice)
    }

    /// Borrow the dense per-state reward vector.
    pub fn state_rewards(&self) -> &[f64] {
        &self.state_rewards
    }
}

fn validate_reward(value: f64, context: &str) -> Result<(), ModelError> {
    if !value.is_finite() || value < 0.0 {
        return Err(ModelError::InvalidReward { value, context: context.to_owned() });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_and_choice_rewards() {
        let mut r = RewardStructure::new("cost", 2);
        r.set_state_reward(1, 2.5).unwrap();
        r.set_choice_reward(1, 3, 0.5).unwrap();
        assert_eq!(r.name(), "cost");
        assert_eq!(r.state_reward(1), 2.5);
        assert_eq!(r.choice_reward(1, 3), 0.5);
        assert_eq!(r.choice_reward(1, 0), 0.0);
        assert_eq!(r.step_reward(1, 3), 3.0);
        assert_eq!(r.state_rewards(), &[0.0, 2.5]);
    }

    #[test]
    fn rejects_bad_values() {
        let mut r = RewardStructure::new("x", 1);
        assert!(r.set_state_reward(0, -1.0).is_err());
        assert!(r.set_state_reward(0, f64::INFINITY).is_err());
        assert!(r.set_state_reward(5, 1.0).is_err());
        assert!(r.set_choice_reward(5, 0, 1.0).is_err());
    }

    #[test]
    fn out_of_range_reads_are_zero() {
        let r = RewardStructure::new("x", 1);
        assert_eq!(r.state_reward(10), 0.0);
        assert_eq!(r.choice_reward(10, 10), 0.0);
    }
}
