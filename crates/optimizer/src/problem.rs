use crate::OptimizerError;

/// Direction of an inequality constraint `f(x) ⋈ rhs`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstraintSense {
    /// `f(x) ≤ rhs`.
    Le,
    /// `f(x) ≥ rhs`.
    Ge,
}

/// A boxed scalar merit/constraint function over the decision vector.
type ScalarFn = Box<dyn Fn(&[f64]) -> f64 + Send + Sync>;

/// A boxed gradient: writes `∂f/∂x_i` into the output slice.
type GradFn = Box<dyn Fn(&[f64], &mut [f64]) + Send + Sync>;

/// A boxed batch evaluator: writes one value per constraint row.
type BatchFn = Box<dyn Fn(&[f64], &mut [f64]) + Send + Sync>;

/// A boxed batch evaluator producing values and a row-major Jacobian.
type BatchJacFn = Box<dyn Fn(&[f64], &mut [f64], &mut [f64]) + Send + Sync>;

/// One inequality constraint of an [`Nlp`].
pub struct Constraint {
    name: String,
    f: ScalarFn,
    grad: Option<GradFn>,
    sense: ConstraintSense,
    rhs: f64,
    margin: f64,
}

impl Constraint {
    /// The constraint's diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The constraint's sense.
    pub fn sense(&self) -> ConstraintSense {
        self.sense
    }

    /// The right-hand side.
    pub fn rhs(&self) -> f64 {
        self.rhs
    }

    /// Evaluates the raw constraint function.
    pub fn value(&self, x: &[f64]) -> f64 {
        (self.f)(x)
    }

    /// Whether an analytic gradient was provided.
    pub fn has_grad(&self) -> bool {
        self.grad.is_some()
    }

    /// Writes the analytic gradient of the raw function into `out`.
    ///
    /// # Panics
    ///
    /// Panics if no gradient was provided (guard with
    /// [`has_grad`](Self::has_grad)).
    pub fn grad_into(&self, x: &[f64], out: &mut [f64]) {
        (self.grad.as_ref().expect("constraint has no gradient"))(x, out);
    }

    /// The constraint violation at `x`: zero when satisfied (with margin),
    /// positive otherwise. Non-finite function values count as infinitely
    /// violated.
    pub fn violation(&self, x: &[f64]) -> f64 {
        row_violation((self.f)(x), self.sense, self.rhs, self.margin)
    }
}

/// Violation of a single row `value ⋈ rhs` (with margin); non-finite values
/// are infinitely violated.
#[inline]
fn row_violation(value: f64, sense: ConstraintSense, rhs: f64, margin: f64) -> f64 {
    if !value.is_finite() {
        return f64::INFINITY;
    }
    match sense {
        ConstraintSense::Le => (value - rhs + margin).max(0.0),
        ConstraintSense::Ge => (rhs + margin - value).max(0.0),
    }
}

/// Metadata of one row of a [`ConstraintBlock`].
#[derive(Debug, Clone)]
pub struct BlockRow {
    name: String,
    sense: ConstraintSense,
    rhs: f64,
    margin: f64,
}

impl BlockRow {
    /// A row `f(x) ⋈ rhs` with a satisfaction margin.
    pub fn new(name: &str, sense: ConstraintSense, rhs: f64, margin: f64) -> Self {
        BlockRow { name: name.to_owned(), sense, rhs, margin }
    }

    /// The row's diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The row's sense.
    pub fn sense(&self) -> ConstraintSense {
        self.sense
    }

    /// The right-hand side.
    pub fn rhs(&self) -> f64 {
        self.rhs
    }

    /// The satisfaction margin.
    pub fn margin(&self) -> f64 {
        self.margin
    }
}

/// A batch of constraints evaluated in **one pass**.
///
/// This is the optimizer-side mate of
/// `tml_parametric::CompiledConstraintSet`: the repair pipelines compile
/// all their rational constraint functions into one tape set and register
/// it here, so each merit evaluation computes every constraint value (and,
/// with a Jacobian, every gradient) in a single call that shares the
/// per-variable power tables.
pub struct ConstraintBlock {
    rows: Vec<BlockRow>,
    eval: BatchFn,
    jac: Option<BatchJacFn>,
}

impl std::fmt::Debug for ConstraintBlock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ConstraintBlock({} rows, jacobian: {})", self.rows.len(), self.jac.is_some())
    }
}

impl ConstraintBlock {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the block has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The row metadata.
    pub fn rows(&self) -> &[BlockRow] {
        &self.rows
    }

    /// Whether an analytic Jacobian was provided.
    pub fn has_jacobian(&self) -> bool {
        self.jac.is_some()
    }

    /// Evaluates every row's raw value into `values` (length
    /// [`len`](Self::len)).
    pub fn eval_into(&self, x: &[f64], values: &mut [f64]) {
        (self.eval)(x, values);
    }

    /// Evaluates values and the row-major `len() × n` Jacobian.
    ///
    /// # Panics
    ///
    /// Panics if no Jacobian was provided (guard with
    /// [`has_jacobian`](Self::has_jacobian)).
    pub fn eval_jac_into(&self, x: &[f64], values: &mut [f64], jac: &mut [f64]) {
        (self.jac.as_ref().expect("block has no jacobian"))(x, values, jac);
    }
}

/// One-pass violation statistics over all constraints of an [`Nlp`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ViolationStats {
    /// The largest violation.
    pub max: f64,
    /// The sum of squared violations (the quadratic penalty term).
    pub sum_sq: f64,
}

impl std::fmt::Debug for Constraint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let sym = match self.sense {
            ConstraintSense::Le => "<=",
            ConstraintSense::Ge => ">=",
        };
        write!(f, "Constraint({} {} {}, margin {})", self.name, sym, self.rhs, self.margin)
    }
}

/// A box-bounded non-linear program with inequality constraints.
///
/// Objective and constraints are arbitrary closures; the repair crates plug
/// in rational functions produced by parametric model checking or
/// instantiate-and-check oracles that run the full model checker per
/// evaluation.
pub struct Nlp {
    n: usize,
    bounds: Vec<(f64, f64)>,
    objective: Option<ScalarFn>,
    objective_grad: Option<GradFn>,
    constraints: Vec<Constraint>,
    blocks: Vec<ConstraintBlock>,
}

impl std::fmt::Debug for Nlp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Nlp")
            .field("n", &self.n)
            .field("bounds", &self.bounds)
            .field("has_objective", &self.objective.is_some())
            .field("constraints", &self.constraints)
            .field("blocks", &self.blocks)
            .finish()
    }
}

impl Nlp {
    /// Creates a problem over `n` variables with the given box bounds.
    ///
    /// # Errors
    ///
    /// Returns [`OptimizerError::InvalidBounds`] if any pair has `lo > hi`
    /// or a non-finite endpoint, or [`OptimizerError::DimensionMismatch`] if
    /// `bounds.len() != n`.
    pub fn new(n: usize, bounds: Vec<(f64, f64)>) -> Result<Self, OptimizerError> {
        if bounds.len() != n {
            return Err(OptimizerError::DimensionMismatch { expected: n, got: bounds.len() });
        }
        for (i, &(lo, hi)) in bounds.iter().enumerate() {
            if !(lo.is_finite() && hi.is_finite()) || lo > hi {
                return Err(OptimizerError::InvalidBounds { variable: i, lo, hi });
            }
        }
        Ok(Nlp {
            n,
            bounds,
            objective: None,
            objective_grad: None,
            constraints: Vec::new(),
            blocks: Vec::new(),
        })
    }

    /// Sets the objective function (to be minimized).
    pub fn objective(&mut self, f: impl Fn(&[f64]) -> f64 + Send + Sync + 'static) -> &mut Self {
        self.objective = Some(Box::new(f));
        self.objective_grad = None;
        self
    }

    /// Sets the objective together with its analytic gradient. When every
    /// constraint also carries a gradient/Jacobian, the solver switches
    /// from central differences (`2n` merit evaluations per step) to one
    /// analytic gradient evaluation per step.
    pub fn objective_with_grad(
        &mut self,
        f: impl Fn(&[f64]) -> f64 + Send + Sync + 'static,
        grad: impl Fn(&[f64], &mut [f64]) + Send + Sync + 'static,
    ) -> &mut Self {
        self.objective = Some(Box::new(f));
        self.objective_grad = Some(Box::new(grad));
        self
    }

    /// Convenience objective: minimize `‖x‖²` (the canonical perturbation
    /// cost of Model Repair). Registers its analytic gradient `2x`.
    pub fn minimize_norm2(&mut self) -> &mut Self {
        self.objective_with_grad(
            |x| x.iter().map(|v| v * v).sum(),
            |x, g| {
                for (gi, xi) in g.iter_mut().zip(x) {
                    *gi = 2.0 * xi;
                }
            },
        )
    }

    /// Adds an inequality constraint `f(x) ⋈ rhs`.
    pub fn constraint(
        &mut self,
        name: &str,
        sense: ConstraintSense,
        rhs: f64,
        f: impl Fn(&[f64]) -> f64 + Send + Sync + 'static,
    ) -> &mut Self {
        self.constraint_with_margin(name, sense, rhs, 0.0, f)
    }

    /// Adds an inequality constraint with a satisfaction margin — useful to
    /// approximate *strict* inequalities (`f > rhs` becomes
    /// `f ≥ rhs + margin`).
    pub fn constraint_with_margin(
        &mut self,
        name: &str,
        sense: ConstraintSense,
        rhs: f64,
        margin: f64,
        f: impl Fn(&[f64]) -> f64 + Send + Sync + 'static,
    ) -> &mut Self {
        self.constraints.push(Constraint {
            name: name.to_owned(),
            f: Box::new(f),
            grad: None,
            sense,
            rhs,
            margin,
        });
        self
    }

    /// Adds an inequality constraint with margin and an analytic gradient
    /// of the raw function `f`.
    pub fn constraint_with_grad(
        &mut self,
        name: &str,
        sense: ConstraintSense,
        rhs: f64,
        margin: f64,
        f: impl Fn(&[f64]) -> f64 + Send + Sync + 'static,
        grad: impl Fn(&[f64], &mut [f64]) + Send + Sync + 'static,
    ) -> &mut Self {
        self.constraints.push(Constraint {
            name: name.to_owned(),
            f: Box::new(f),
            grad: Some(Box::new(grad)),
            sense,
            rhs,
            margin,
        });
        self
    }

    /// Adds a batch of constraints evaluated in one pass (see
    /// [`ConstraintBlock`]). `eval` writes one raw value per row.
    pub fn constraint_block(
        &mut self,
        rows: Vec<BlockRow>,
        eval: impl Fn(&[f64], &mut [f64]) + Send + Sync + 'static,
    ) -> &mut Self {
        self.blocks.push(ConstraintBlock { rows, eval: Box::new(eval), jac: None });
        self
    }

    /// Adds a batch of constraints with an analytic Jacobian. `jac` writes
    /// one raw value per row plus the row-major `rows × n` Jacobian.
    pub fn constraint_block_with_jacobian(
        &mut self,
        rows: Vec<BlockRow>,
        eval: impl Fn(&[f64], &mut [f64]) + Send + Sync + 'static,
        jac: impl Fn(&[f64], &mut [f64], &mut [f64]) + Send + Sync + 'static,
    ) -> &mut Self {
        self.blocks.push(ConstraintBlock { rows, eval: Box::new(eval), jac: Some(Box::new(jac)) });
        self
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.n
    }

    /// The box bounds.
    pub fn bounds(&self) -> &[(f64, f64)] {
        &self.bounds
    }

    /// The scalar constraints (excluding blocks).
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// The constraint blocks.
    pub fn blocks(&self) -> &[ConstraintBlock] {
        &self.blocks
    }

    /// Total number of constraint rows: scalar constraints plus every block
    /// row. This is the per-point constraint-evaluation cost unit.
    pub fn num_constraint_rows(&self) -> usize {
        self.constraints.len() + self.blocks.iter().map(ConstraintBlock::len).sum::<usize>()
    }

    /// Whether the objective and **every** constraint (scalar and block)
    /// carry analytic gradients, enabling the solver's analytic merit
    /// gradient.
    pub fn has_full_gradients(&self) -> bool {
        self.objective_grad.is_some()
            && self.constraints.iter().all(Constraint::has_grad)
            && self.blocks.iter().all(ConstraintBlock::has_jacobian)
    }

    /// Evaluates the objective; non-finite values are mapped to `+∞` so the
    /// line search rejects them.
    ///
    /// # Panics
    ///
    /// Panics if no objective has been set (the solver validates this
    /// up-front and returns [`OptimizerError::MissingObjective`] instead).
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        let f = self.objective.as_ref().expect("objective not set");
        let v = f(x);
        if v.is_finite() {
            v
        } else {
            f64::INFINITY
        }
    }

    /// Whether an objective has been set.
    pub fn has_objective(&self) -> bool {
        self.objective.is_some()
    }

    /// The largest constraint violation at `x` (scalar constraints and
    /// block rows).
    pub fn max_violation(&self, x: &[f64]) -> f64 {
        let mut scratch = Vec::new();
        self.violation_stats(x, &mut scratch).max
    }

    /// Computes the largest violation **and** the quadratic penalty term in
    /// one pass over every constraint. `scratch` is resized as needed and
    /// reused across calls, so steady-state evaluation performs no
    /// allocation.
    ///
    /// An infinitely violated row (non-finite raw value) makes both
    /// statistics infinite.
    pub fn violation_stats(&self, x: &[f64], scratch: &mut Vec<f64>) -> ViolationStats {
        let mut stats = ViolationStats::default();
        let push = |v: f64, stats: &mut ViolationStats| {
            stats.max = stats.max.max(v);
            stats.sum_sq += v * v;
        };
        for c in &self.constraints {
            push(c.violation(x), &mut stats);
        }
        for b in &self.blocks {
            scratch.resize(b.len(), 0.0);
            b.eval_into(x, scratch);
            for (row, &v) in b.rows.iter().zip(scratch.iter()) {
                push(row_violation(v, row.sense, row.rhs, row.margin), &mut stats);
            }
        }
        if stats.max.is_infinite() {
            stats.sum_sq = f64::INFINITY;
        }
        stats
    }

    /// Evaluates the penalized merit `objective + mu·Σ violationᵢ²` and its
    /// analytic gradient in one pass, writing the gradient into `grad`.
    /// The two scratch vectors are resized as needed and reused across
    /// calls.
    ///
    /// Returns `+∞` (with a zeroed gradient) when any constraint row or the
    /// objective is non-finite at `x` — the caller treats such points
    /// exactly like the central-difference path does.
    ///
    /// # Panics
    ///
    /// Panics unless [`has_full_gradients`](Self::has_full_gradients).
    pub fn merit_value_grad(
        &self,
        x: &[f64],
        mu: f64,
        grad: &mut [f64],
        scratch_vals: &mut Vec<f64>,
        scratch_jac: &mut Vec<f64>,
    ) -> f64 {
        debug_assert!(self.has_full_gradients());
        let og = self.objective_grad.as_ref().expect("objective gradient not set");
        grad.fill(0.0);
        og(x, grad);
        let mut merit = self.objective_value(x);
        // Scalar constraints: g += 2·mu·viol·(±∇f).
        for c in &self.constraints {
            let v = c.value(x);
            let viol = row_violation(v, c.sense, c.rhs, c.margin);
            if viol.is_infinite() {
                grad.fill(0.0);
                return f64::INFINITY;
            }
            merit += mu * viol * viol;
            if viol > 0.0 {
                let sign = match c.sense {
                    ConstraintSense::Le => 1.0,
                    ConstraintSense::Ge => -1.0,
                };
                scratch_vals.resize(self.n, 0.0);
                scratch_vals.fill(0.0);
                c.grad_into(x, scratch_vals);
                for (g, d) in grad.iter_mut().zip(scratch_vals.iter()) {
                    *g += 2.0 * mu * viol * sign * d;
                }
            }
        }
        for b in &self.blocks {
            scratch_vals.resize(b.len(), 0.0);
            scratch_jac.resize(b.len() * self.n, 0.0);
            b.eval_jac_into(x, scratch_vals, scratch_jac);
            for (i, row) in b.rows.iter().enumerate() {
                let viol = row_violation(scratch_vals[i], row.sense, row.rhs, row.margin);
                if viol.is_infinite() {
                    grad.fill(0.0);
                    return f64::INFINITY;
                }
                merit += mu * viol * viol;
                if viol > 0.0 {
                    let sign = match row.sense {
                        ConstraintSense::Le => 1.0,
                        ConstraintSense::Ge => -1.0,
                    };
                    let jrow = &scratch_jac[i * self.n..(i + 1) * self.n];
                    for (g, d) in grad.iter_mut().zip(jrow) {
                        *g += 2.0 * mu * viol * sign * d;
                    }
                }
            }
        }
        if !merit.is_finite() {
            grad.fill(0.0);
            return f64::INFINITY;
        }
        merit
    }

    /// Clamps `x` into the box, in place.
    pub fn project(&self, x: &mut [f64]) {
        for (v, &(lo, hi)) in x.iter_mut().zip(&self.bounds) {
            *v = v.clamp(lo, hi);
        }
    }

    /// The center of the box (default starting point).
    pub fn center(&self) -> Vec<f64> {
        self.bounds.iter().map(|&(lo, hi)| 0.5 * (lo + hi)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validation() {
        assert!(Nlp::new(2, vec![(0.0, 1.0)]).is_err());
        assert!(Nlp::new(1, vec![(1.0, 0.0)]).is_err());
        assert!(Nlp::new(1, vec![(0.0, f64::INFINITY)]).is_err());
        assert!(Nlp::new(1, vec![(0.0, 1.0)]).is_ok());
    }

    #[test]
    fn violations() {
        let mut nlp = Nlp::new(1, vec![(-10.0, 10.0)]).unwrap();
        nlp.constraint("le", ConstraintSense::Le, 2.0, |x| x[0]);
        nlp.constraint("ge", ConstraintSense::Ge, -1.0, |x| x[0]);
        assert_eq!(nlp.max_violation(&[0.0]), 0.0);
        assert_eq!(nlp.max_violation(&[3.0]), 1.0);
        assert_eq!(nlp.max_violation(&[-2.0]), 1.0);
        let c = &nlp.constraints()[0];
        assert_eq!(c.name(), "le");
        assert_eq!(c.sense(), ConstraintSense::Le);
        assert_eq!(c.rhs(), 2.0);
        assert_eq!(c.value(&[5.0]), 5.0);
    }

    #[test]
    fn margin_approximates_strict() {
        let mut nlp = Nlp::new(1, vec![(-1.0, 1.0)]).unwrap();
        nlp.constraint_with_margin("gt", ConstraintSense::Ge, 0.0, 0.1, |x| x[0]);
        assert!(nlp.max_violation(&[0.05]) > 0.0);
        assert_eq!(nlp.max_violation(&[0.2]), 0.0);
    }

    #[test]
    fn non_finite_constraint_is_infinitely_violated() {
        let mut nlp = Nlp::new(1, vec![(-1.0, 1.0)]).unwrap();
        nlp.constraint("nan", ConstraintSense::Le, 0.0, |_| f64::NAN);
        assert!(nlp.max_violation(&[0.0]).is_infinite());
    }

    #[test]
    fn projection_and_center() {
        let nlp = Nlp::new(2, vec![(0.0, 1.0), (-2.0, 2.0)]).unwrap();
        let mut x = vec![1.5, -3.0];
        nlp.project(&mut x);
        assert_eq!(x, vec![1.0, -2.0]);
        assert_eq!(nlp.center(), vec![0.5, 0.0]);
    }

    #[test]
    fn objective_maps_nonfinite_to_inf() {
        let mut nlp = Nlp::new(1, vec![(0.0, 1.0)]).unwrap();
        nlp.objective(|x| if x[0] > 0.5 { f64::NAN } else { x[0] });
        assert_eq!(nlp.objective_value(&[0.25]), 0.25);
        assert!(nlp.objective_value(&[0.75]).is_infinite());
        assert!(nlp.has_objective());
    }
}
