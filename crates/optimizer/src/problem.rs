use crate::OptimizerError;

/// Direction of an inequality constraint `f(x) ⋈ rhs`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstraintSense {
    /// `f(x) ≤ rhs`.
    Le,
    /// `f(x) ≥ rhs`.
    Ge,
}

/// A boxed scalar merit/constraint function over the decision vector.
type ScalarFn = Box<dyn Fn(&[f64]) -> f64 + Send + Sync>;

/// One inequality constraint of an [`Nlp`].
pub struct Constraint {
    name: String,
    f: ScalarFn,
    sense: ConstraintSense,
    rhs: f64,
    margin: f64,
}

impl Constraint {
    /// The constraint's diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The constraint's sense.
    pub fn sense(&self) -> ConstraintSense {
        self.sense
    }

    /// The right-hand side.
    pub fn rhs(&self) -> f64 {
        self.rhs
    }

    /// Evaluates the raw constraint function.
    pub fn value(&self, x: &[f64]) -> f64 {
        (self.f)(x)
    }

    /// The constraint violation at `x`: zero when satisfied (with margin),
    /// positive otherwise. Non-finite function values count as infinitely
    /// violated.
    pub fn violation(&self, x: &[f64]) -> f64 {
        let v = (self.f)(x);
        if !v.is_finite() {
            return f64::INFINITY;
        }
        match self.sense {
            ConstraintSense::Le => (v - self.rhs + self.margin).max(0.0),
            ConstraintSense::Ge => (self.rhs + self.margin - v).max(0.0),
        }
    }
}

impl std::fmt::Debug for Constraint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let sym = match self.sense {
            ConstraintSense::Le => "<=",
            ConstraintSense::Ge => ">=",
        };
        write!(f, "Constraint({} {} {}, margin {})", self.name, sym, self.rhs, self.margin)
    }
}

/// A box-bounded non-linear program with inequality constraints.
///
/// Objective and constraints are arbitrary closures; the repair crates plug
/// in rational functions produced by parametric model checking or
/// instantiate-and-check oracles that run the full model checker per
/// evaluation.
pub struct Nlp {
    n: usize,
    bounds: Vec<(f64, f64)>,
    objective: Option<ScalarFn>,
    constraints: Vec<Constraint>,
}

impl std::fmt::Debug for Nlp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Nlp")
            .field("n", &self.n)
            .field("bounds", &self.bounds)
            .field("has_objective", &self.objective.is_some())
            .field("constraints", &self.constraints)
            .finish()
    }
}

impl Nlp {
    /// Creates a problem over `n` variables with the given box bounds.
    ///
    /// # Errors
    ///
    /// Returns [`OptimizerError::InvalidBounds`] if any pair has `lo > hi`
    /// or a non-finite endpoint, or [`OptimizerError::DimensionMismatch`] if
    /// `bounds.len() != n`.
    pub fn new(n: usize, bounds: Vec<(f64, f64)>) -> Result<Self, OptimizerError> {
        if bounds.len() != n {
            return Err(OptimizerError::DimensionMismatch { expected: n, got: bounds.len() });
        }
        for (i, &(lo, hi)) in bounds.iter().enumerate() {
            if !(lo.is_finite() && hi.is_finite()) || lo > hi {
                return Err(OptimizerError::InvalidBounds { variable: i, lo, hi });
            }
        }
        Ok(Nlp { n, bounds, objective: None, constraints: Vec::new() })
    }

    /// Sets the objective function (to be minimized).
    pub fn objective(&mut self, f: impl Fn(&[f64]) -> f64 + Send + Sync + 'static) -> &mut Self {
        self.objective = Some(Box::new(f));
        self
    }

    /// Convenience objective: minimize `‖x‖²` (the canonical perturbation
    /// cost of Model Repair).
    pub fn minimize_norm2(&mut self) -> &mut Self {
        self.objective(|x| x.iter().map(|v| v * v).sum())
    }

    /// Adds an inequality constraint `f(x) ⋈ rhs`.
    pub fn constraint(
        &mut self,
        name: &str,
        sense: ConstraintSense,
        rhs: f64,
        f: impl Fn(&[f64]) -> f64 + Send + Sync + 'static,
    ) -> &mut Self {
        self.constraint_with_margin(name, sense, rhs, 0.0, f)
    }

    /// Adds an inequality constraint with a satisfaction margin — useful to
    /// approximate *strict* inequalities (`f > rhs` becomes
    /// `f ≥ rhs + margin`).
    pub fn constraint_with_margin(
        &mut self,
        name: &str,
        sense: ConstraintSense,
        rhs: f64,
        margin: f64,
        f: impl Fn(&[f64]) -> f64 + Send + Sync + 'static,
    ) -> &mut Self {
        self.constraints.push(Constraint {
            name: name.to_owned(),
            f: Box::new(f),
            sense,
            rhs,
            margin,
        });
        self
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.n
    }

    /// The box bounds.
    pub fn bounds(&self) -> &[(f64, f64)] {
        &self.bounds
    }

    /// The constraints.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Evaluates the objective; non-finite values are mapped to `+∞` so the
    /// line search rejects them.
    ///
    /// # Panics
    ///
    /// Panics if no objective has been set (the solver validates this
    /// up-front and returns [`OptimizerError::MissingObjective`] instead).
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        let f = self.objective.as_ref().expect("objective not set");
        let v = f(x);
        if v.is_finite() {
            v
        } else {
            f64::INFINITY
        }
    }

    /// Whether an objective has been set.
    pub fn has_objective(&self) -> bool {
        self.objective.is_some()
    }

    /// The largest constraint violation at `x`.
    pub fn max_violation(&self, x: &[f64]) -> f64 {
        self.constraints.iter().map(|c| c.violation(x)).fold(0.0, f64::max)
    }

    /// Clamps `x` into the box, in place.
    pub fn project(&self, x: &mut [f64]) {
        for (v, &(lo, hi)) in x.iter_mut().zip(&self.bounds) {
            *v = v.clamp(lo, hi);
        }
    }

    /// The center of the box (default starting point).
    pub fn center(&self) -> Vec<f64> {
        self.bounds.iter().map(|&(lo, hi)| 0.5 * (lo + hi)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validation() {
        assert!(Nlp::new(2, vec![(0.0, 1.0)]).is_err());
        assert!(Nlp::new(1, vec![(1.0, 0.0)]).is_err());
        assert!(Nlp::new(1, vec![(0.0, f64::INFINITY)]).is_err());
        assert!(Nlp::new(1, vec![(0.0, 1.0)]).is_ok());
    }

    #[test]
    fn violations() {
        let mut nlp = Nlp::new(1, vec![(-10.0, 10.0)]).unwrap();
        nlp.constraint("le", ConstraintSense::Le, 2.0, |x| x[0]);
        nlp.constraint("ge", ConstraintSense::Ge, -1.0, |x| x[0]);
        assert_eq!(nlp.max_violation(&[0.0]), 0.0);
        assert_eq!(nlp.max_violation(&[3.0]), 1.0);
        assert_eq!(nlp.max_violation(&[-2.0]), 1.0);
        let c = &nlp.constraints()[0];
        assert_eq!(c.name(), "le");
        assert_eq!(c.sense(), ConstraintSense::Le);
        assert_eq!(c.rhs(), 2.0);
        assert_eq!(c.value(&[5.0]), 5.0);
    }

    #[test]
    fn margin_approximates_strict() {
        let mut nlp = Nlp::new(1, vec![(-1.0, 1.0)]).unwrap();
        nlp.constraint_with_margin("gt", ConstraintSense::Ge, 0.0, 0.1, |x| x[0]);
        assert!(nlp.max_violation(&[0.05]) > 0.0);
        assert_eq!(nlp.max_violation(&[0.2]), 0.0);
    }

    #[test]
    fn non_finite_constraint_is_infinitely_violated() {
        let mut nlp = Nlp::new(1, vec![(-1.0, 1.0)]).unwrap();
        nlp.constraint("nan", ConstraintSense::Le, 0.0, |_| f64::NAN);
        assert!(nlp.max_violation(&[0.0]).is_infinite());
    }

    #[test]
    fn projection_and_center() {
        let nlp = Nlp::new(2, vec![(0.0, 1.0), (-2.0, 2.0)]).unwrap();
        let mut x = vec![1.5, -3.0];
        nlp.project(&mut x);
        assert_eq!(x, vec![1.0, -2.0]);
        assert_eq!(nlp.center(), vec![0.5, 0.0]);
    }

    #[test]
    fn objective_maps_nonfinite_to_inf() {
        let mut nlp = Nlp::new(1, vec![(0.0, 1.0)]).unwrap();
        nlp.objective(|x| if x[0] > 0.5 { f64::NAN } else { x[0] });
        assert_eq!(nlp.objective_value(&[0.25]), 0.25);
        assert!(nlp.objective_value(&[0.75]).is_infinite());
        assert!(nlp.has_objective());
    }
}
