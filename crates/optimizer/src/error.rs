use std::error::Error;
use std::fmt;

/// Errors raised when a problem is malformed.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum OptimizerError {
    /// A bound pair has `lo > hi`, or a bound is non-finite.
    InvalidBounds {
        /// Index of the offending variable.
        variable: usize,
        /// The lower bound.
        lo: f64,
        /// The upper bound.
        hi: f64,
    },
    /// The problem has no objective function.
    MissingObjective,
    /// A starting point has the wrong dimension.
    DimensionMismatch {
        /// Expected number of variables.
        expected: usize,
        /// Provided number of coordinates.
        got: usize,
    },
}

impl fmt::Display for OptimizerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptimizerError::InvalidBounds { variable, lo, hi } => {
                write!(f, "invalid bounds [{lo}, {hi}] for variable {variable}")
            }
            OptimizerError::MissingObjective => write!(f, "problem has no objective function"),
            OptimizerError::DimensionMismatch { expected, got } => {
                write!(f, "point has {got} coordinates, problem has {expected} variables")
            }
        }
    }
}

impl Error for OptimizerError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(OptimizerError::InvalidBounds { variable: 0, lo: 1.0, hi: 0.0 }
            .to_string()
            .contains("invalid bounds"));
        assert!(OptimizerError::MissingObjective.to_string().contains("objective"));
        assert!(OptimizerError::DimensionMismatch { expected: 2, got: 3 }
            .to_string()
            .contains("coordinates"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<OptimizerError>();
    }
}
