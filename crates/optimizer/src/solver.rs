use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use tml_numerics::{Budget, Exhaustion};
use tml_telemetry::{counter, span};

use crate::{Nlp, OptimizerError};

/// Options for the [`PenaltySolver`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PenaltyOptions {
    /// Number of random restarts (in addition to the box center and any
    /// user-provided starts).
    pub restarts: usize,
    /// Initial quadratic penalty weight.
    pub penalty_init: f64,
    /// Multiplicative growth of the penalty weight per round.
    pub penalty_growth: f64,
    /// Number of penalty-escalation rounds.
    pub penalty_rounds: usize,
    /// Projected-gradient iterations per round.
    pub inner_iterations: usize,
    /// Central-difference step for numeric gradients.
    pub gradient_step: f64,
    /// Initial line-search step size.
    pub step_init: f64,
    /// Stop an inner loop when the iterate moves less than this.
    pub step_tolerance: f64,
    /// A point is declared feasible when its max violation is below this.
    pub feasibility_tolerance: f64,
    /// RNG seed for the restarts (the solver is deterministic given a seed).
    pub seed: u64,
    /// Run the restarts on parallel threads. Restarts are independent and
    /// merged in start order, so with an unlimited evaluation budget the
    /// parallel solve returns **exactly** the serial solution; under a
    /// finite budget the exhaustion point depends on thread scheduling.
    pub parallel: bool,
}

impl Default for PenaltyOptions {
    fn default() -> Self {
        PenaltyOptions {
            restarts: 8,
            penalty_init: 10.0,
            penalty_growth: 10.0,
            // The quadratic penalty leaves a bias of roughly
            // ‖∇objective‖ / (2·μ_max) on the infeasible side, so μ_max must
            // comfortably exceed objective-gradient / feasibility_tolerance.
            penalty_rounds: 9,
            inner_iterations: 250,
            gradient_step: 1e-6,
            step_init: 0.25,
            step_tolerance: 1e-12,
            feasibility_tolerance: 1e-6,
            seed: 0x7319,
            parallel: true,
        }
    }
}

/// Outcome of a solve.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// The best point found.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub objective: f64,
    /// Largest constraint violation at `x`.
    pub max_violation: f64,
    /// Whether `x` satisfies every constraint within tolerance. When
    /// `false`, the problem is reported **infeasible** under the explored
    /// starts — the repair analogue of AMPL's "infeasible problem".
    pub feasible: bool,
    /// Total objective/constraint evaluations spent.
    pub evaluations: usize,
    /// Why the solve stopped early, if a [`Budget`] ran out. The solution
    /// is still the best point found up to that moment.
    pub stopped: Option<Exhaustion>,
    /// Restarts that never ran because the shared budget was already spent
    /// when their turn came. A nonzero value means the multi-start search
    /// was silently narrower than [`PenaltyOptions::restarts`] suggests.
    pub restarts_pruned: usize,
    /// Restarts that ran but were cut short mid-descent by the budget.
    pub restarts_exhausted: usize,
}

/// Quadratic-penalty solver with a projected-gradient inner loop and
/// deterministic multi-start.
///
/// See the crate docs for the problem class. The solver is derivative-free
/// from the caller's perspective: gradients are taken by central
/// differences, so objectives/constraints may be arbitrary closures —
/// including ones that run a full PCTL model check per evaluation.
#[derive(Debug, Clone, Default)]
pub struct PenaltySolver {
    opts: PenaltyOptions,
    extra_starts: Vec<Vec<f64>>,
    budget: Budget,
}

impl PenaltySolver {
    /// A solver with default options.
    pub fn new() -> Self {
        Self::default()
    }

    /// A solver with explicit options.
    pub fn with_options(opts: PenaltyOptions) -> Self {
        PenaltySolver { opts, extra_starts: Vec::new(), budget: Budget::unlimited() }
    }

    /// Attaches an effort budget. The evaluation unit is merit/objective
    /// evaluations (the same count reported in [`Solution::evaluations`]).
    /// On exhaustion the solver returns the best point found so far with
    /// [`Solution::stopped`] set — never an error.
    #[must_use]
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// The options in effect.
    pub fn options(&self) -> &PenaltyOptions {
        &self.opts
    }

    /// The budget in effect (unlimited by default).
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// Adds a user-provided starting point (tried before random restarts).
    pub fn start_from(&mut self, x: Vec<f64>) -> &mut Self {
        self.extra_starts.push(x);
        self
    }

    /// Minimizes the problem.
    ///
    /// # Errors
    ///
    /// * [`OptimizerError::MissingObjective`] if no objective was set.
    /// * [`OptimizerError::DimensionMismatch`] if a provided start has the
    ///   wrong dimension.
    pub fn solve(&self, nlp: &Nlp) -> Result<Solution, OptimizerError> {
        if !nlp.has_objective() {
            return Err(OptimizerError::MissingObjective);
        }
        for s in &self.extra_starts {
            if s.len() != nlp.num_vars() {
                return Err(OptimizerError::DimensionMismatch {
                    expected: nlp.num_vars(),
                    got: s.len(),
                });
            }
        }
        let mut rng = StdRng::seed_from_u64(self.opts.seed);

        let mut starts: Vec<Vec<f64>> = Vec::new();
        starts.push(nlp.center());
        starts.extend(self.extra_starts.iter().cloned().map(|mut s| {
            nlp.project(&mut s);
            s
        }));
        for _ in 0..self.opts.restarts {
            starts.push(
                nlp.bounds()
                    .iter()
                    .map(|&(lo, hi)| if lo == hi { lo } else { rng.random_range(lo..hi) })
                    .collect(),
            );
        }

        let _span = span!(
            "solver.solve",
            starts = starts.len(),
            vars = nlp.num_vars(),
            parallel = self.opts.parallel
        );

        // Fork the caller's budget: every solve gets the full evaluation
        // cap, while all restarts *within* this solve charge one shared
        // atomic counter (see the thread-safety contract in
        // tml_numerics::budget).
        let run_budget = self.budget.fork();
        let indexed: Vec<(usize, Vec<f64>)> = starts.into_iter().enumerate().collect();
        let outcomes: Vec<StartOutcome> = if self.opts.parallel && indexed.len() > 1 {
            use rayon::prelude::*;
            indexed.into_par_iter().map(|(i, s)| self.run_start(nlp, i, s, &run_budget)).collect()
        } else {
            indexed.into_iter().map(|(i, s)| self.run_start(nlp, i, s, &run_budget)).collect()
        };

        // Merge strictly in start order: with an unlimited budget this
        // makes the parallel solve bitwise-identical to the serial one.
        let mut evaluations = 0usize;
        let mut best: Option<Solution> = None;
        let mut stopped: Option<Exhaustion> = None;
        let mut restarts_pruned = 0usize;
        let mut restarts_exhausted = 0usize;
        for outcome in outcomes {
            match outcome {
                StartOutcome::Skipped(cause) => {
                    restarts_pruned += 1;
                    stopped.get_or_insert(cause);
                }
                StartOutcome::Ran(cand, local_evals) => {
                    evaluations += local_evals;
                    if let Some(cause) = cand.stopped {
                        restarts_exhausted += 1;
                        stopped.get_or_insert(cause);
                    }
                    best = Some(match best {
                        None => cand,
                        Some(b) => pick_better(b, cand, self.opts.feasibility_tolerance),
                    });
                }
            }
        }
        let mut sol = match best {
            Some(b) => b,
            None => {
                // The budget was spent before any start ran: fall back to
                // the evaluated box center so callers still get a point.
                let x = nlp.center();
                let objective = nlp.objective_value(&x);
                let max_violation = nlp.max_violation(&x);
                evaluations += 2;
                Solution {
                    x,
                    objective,
                    max_violation,
                    feasible: false,
                    evaluations: 0,
                    stopped,
                    restarts_pruned: 0,
                    restarts_exhausted: 0,
                }
            }
        };
        sol.evaluations = evaluations;
        sol.feasible = sol.max_violation <= self.opts.feasibility_tolerance;
        sol.stopped = stopped;
        sol.restarts_pruned = restarts_pruned;
        sol.restarts_exhausted = restarts_exhausted;
        counter!("solver.penalty.evaluations", sol.evaluations);
        Ok(sol)
    }

    /// Runs one restart, charging the run's shared budget. Returns
    /// [`StartOutcome::Skipped`] when the budget is already exhausted.
    ///
    /// Note on traces: in a parallel solve this span runs on a worker
    /// thread, so its `parent` link is the worker's innermost span (usually
    /// none) rather than `solver.solve` — correlate via the `restart` field.
    fn run_start(&self, nlp: &Nlp, index: usize, start: Vec<f64>, budget: &Budget) -> StartOutcome {
        let _span = span!("solver.restart", restart = index);
        let mut gauge = EvalGauge { budget, local: 0, charged: 0 };
        if let Some(cause) = gauge.poll() {
            counter!("solver.penalty.restarts_skipped", 1);
            return StartOutcome::Skipped(cause);
        }
        counter!("solver.penalty.restarts", 1);
        let sol = self.solve_from(nlp, start, &mut gauge);
        StartOutcome::Ran(sol, gauge.local)
    }

    fn solve_from(&self, nlp: &Nlp, mut x: Vec<f64>, gauge: &mut EvalGauge<'_>) -> Solution {
        nlp.project(&mut x);
        let mut mu = self.opts.penalty_init;
        let mut stopped = None;
        for _ in 0..self.opts.penalty_rounds {
            if let Some(cause) = gauge.poll() {
                stopped = Some(cause);
                break;
            }
            if let Some(cause) = self.projected_gradient(nlp, &mut x, mu, gauge) {
                stopped = Some(cause);
                break;
            }
            if nlp.max_violation(&x) <= self.opts.feasibility_tolerance * 0.1 {
                // Already comfortably feasible: further escalation only
                // fights the objective.
                break;
            }
            mu *= self.opts.penalty_growth;
        }
        let objective = nlp.objective_value(&x);
        let max_violation = nlp.max_violation(&x);
        gauge.add(2);
        Solution {
            x,
            objective,
            max_violation,
            feasible: false,
            evaluations: 0,
            stopped,
            restarts_pruned: 0,
            restarts_exhausted: 0,
        }
    }

    /// Minimizes the penalized merit function with projected gradient
    /// descent and backtracking line search. Returns the exhaustion cause
    /// if the budget ran out mid-descent (leaving `x` at the best accepted
    /// iterate).
    ///
    /// The merit gradient is analytic when the problem provides full
    /// gradients ([`Nlp::has_full_gradients`]); otherwise it falls back to
    /// central differences (`2n` merit evaluations per step).
    fn projected_gradient(
        &self,
        nlp: &Nlp,
        x: &mut Vec<f64>,
        mu: f64,
        gauge: &mut EvalGauge<'_>,
    ) -> Option<Exhaustion> {
        let n = nlp.num_vars();
        let rows = nlp.num_constraint_rows();
        let analytic = nlp.has_full_gradients();
        let mut scratch = Vec::new();
        let mut scratch_jac = Vec::new();
        let merit = |pt: &[f64], gauge: &mut EvalGauge<'_>, scratch: &mut Vec<f64>| -> f64 {
            gauge.add(1 + rows);
            // One pass over all constraints: max violation and the penalty
            // term together.
            let stats = nlp.violation_stats(pt, scratch);
            if stats.max.is_infinite() {
                return f64::INFINITY;
            }
            let m = nlp.objective_value(pt) + mu * stats.sum_sq;
            // A NaN merit (e.g. ∞ − ∞ from a pathological oracle) would
            // poison every comparison below; treat it as worst-possible.
            if m.is_nan() {
                f64::INFINITY
            } else {
                m
            }
        };

        let mut fx = merit(x, gauge, &mut scratch);
        let mut step = self.opts.step_init;
        let mut grad = vec![0.0; n];
        for _ in 0..self.opts.inner_iterations {
            if let Some(cause) = gauge.poll() {
                return Some(cause);
            }
            if analytic {
                // One tape pass yields the merit value and full gradient;
                // charge it like a value+gradient evaluation.
                gauge.add(2 * (1 + rows));
                nlp.merit_value_grad(x, mu, &mut grad, &mut scratch, &mut scratch_jac);
            } else {
                // Central-difference gradient, clamped to the box.
                grad.fill(0.0);
                for i in 0..n {
                    if let Some(cause) = gauge.poll() {
                        return Some(cause);
                    }
                    let h = self.opts.gradient_step * (1.0 + x[i].abs());
                    let (lo, hi) = nlp.bounds()[i];
                    let mut xp = x.clone();
                    let mut xm = x.clone();
                    xp[i] = (x[i] + h).min(hi);
                    xm[i] = (x[i] - h).max(lo);
                    let denom = xp[i] - xm[i];
                    if denom == 0.0 {
                        continue;
                    }
                    let fp = merit(&xp, gauge, &mut scratch);
                    let fm = merit(&xm, gauge, &mut scratch);
                    grad[i] =
                        if fp.is_finite() && fm.is_finite() { (fp - fm) / denom } else { 0.0 };
                }
            }
            let gnorm = grad.iter().map(|g| g * g).sum::<f64>().sqrt();
            if gnorm < 1e-14 || !gnorm.is_finite() {
                break;
            }

            // Backtracking along the projected direction.
            let mut accepted = false;
            let mut t = step;
            for _ in 0..40 {
                if let Some(cause) = gauge.poll() {
                    return Some(cause);
                }
                let mut cand: Vec<f64> =
                    x.iter().zip(&grad).map(|(xi, gi)| xi - t * gi / gnorm).collect();
                nlp.project(&mut cand);
                let fc = merit(&cand, gauge, &mut scratch);
                if fc < fx - 1e-12 {
                    *x = cand;
                    fx = fc;
                    accepted = true;
                    // Mild step growth after success.
                    step = (t * 1.5).min(self.opts.step_init * 4.0);
                    break;
                }
                t *= 0.5;
                if t < self.opts.step_tolerance {
                    break;
                }
            }
            if !accepted {
                break;
            }
        }
        None
    }
}

/// Per-restart outcome, merged in start order by [`PenaltySolver::solve`].
enum StartOutcome {
    /// The shared budget was exhausted before this start could run.
    Skipped(Exhaustion),
    /// The restart ran; carries its local evaluation count.
    Ran(Solution, usize),
}

/// Couples a restart's **local** evaluation counter with the run's shared
/// atomic budget: `add` records work, `poll` charges the delta since the
/// last poll and reports exhaustion against the cumulative total of all
/// restarts.
struct EvalGauge<'a> {
    budget: &'a Budget,
    local: usize,
    charged: usize,
}

impl EvalGauge<'_> {
    fn add(&mut self, n: usize) {
        self.local += n;
    }

    fn poll(&mut self) -> Option<Exhaustion> {
        let delta = (self.local - self.charged) as u64;
        self.charged = self.local;
        self.budget.charge(delta)
    }
}

fn pick_better(a: Solution, b: Solution, tol: f64) -> Solution {
    let fa = a.max_violation <= tol;
    let fb = b.max_violation <= tol;
    match (fa, fb) {
        (true, true) => {
            if b.objective < a.objective {
                b
            } else {
                a
            }
        }
        (true, false) => a,
        (false, true) => b,
        (false, false) => {
            if b.max_violation < a.max_violation {
                b
            } else {
                a
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ConstraintSense;

    #[test]
    fn unconstrained_quadratic() {
        let mut nlp = Nlp::new(2, vec![(-5.0, 5.0), (-5.0, 5.0)]).unwrap();
        nlp.objective(|x| (x[0] - 1.0).powi(2) + (x[1] + 2.0).powi(2));
        let sol = PenaltySolver::new().solve(&nlp).unwrap();
        assert!(sol.feasible);
        assert!((sol.x[0] - 1.0).abs() < 1e-4, "x0 = {}", sol.x[0]);
        assert!((sol.x[1] + 2.0).abs() < 1e-4, "x1 = {}", sol.x[1]);
        assert!(sol.evaluations > 0);
    }

    #[test]
    fn active_constraint_projection() {
        // min ‖x‖² s.t. x0 + x1 ≥ 1 → (0.5, 0.5).
        let mut nlp = Nlp::new(2, vec![(-2.0, 2.0), (-2.0, 2.0)]).unwrap();
        nlp.minimize_norm2();
        nlp.constraint("plane", ConstraintSense::Ge, 1.0, |x| x[0] + x[1]);
        let sol = PenaltySolver::new().solve(&nlp).unwrap();
        assert!(sol.feasible, "violation {}", sol.max_violation);
        assert!((sol.x[0] - 0.5).abs() < 2e-3, "x = {:?}", sol.x);
        assert!((sol.x[1] - 0.5).abs() < 2e-3);
        assert!((sol.objective - 0.5).abs() < 1e-2);
    }

    #[test]
    fn box_active_at_optimum() {
        let mut nlp = Nlp::new(1, vec![(1.0, 3.0)]).unwrap();
        nlp.objective(|x| x[0] * x[0]);
        let sol = PenaltySolver::new().solve(&nlp).unwrap();
        assert!((sol.x[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_problem_detected() {
        // x ≤ -1 and x ≥ 1 cannot both hold.
        let mut nlp = Nlp::new(1, vec![(-2.0, 2.0)]).unwrap();
        nlp.minimize_norm2();
        nlp.constraint("lo", ConstraintSense::Le, -1.0, |x| x[0]);
        nlp.constraint("hi", ConstraintSense::Ge, 1.0, |x| x[0]);
        let sol = PenaltySolver::new().solve(&nlp).unwrap();
        assert!(!sol.feasible);
        assert!(sol.max_violation > 0.5);
    }

    #[test]
    fn multistart_escapes_poor_basin() {
        // W-shaped objective with the good basin away from the center:
        // f(x) = min((x+1)², (x−1)² − 0.5): global min at x = 1.
        let mut nlp = Nlp::new(1, vec![(-2.0, 2.0)]).unwrap();
        nlp.objective(|x| ((x[0] + 1.0).powi(2)).min((x[0] - 1.0).powi(2) - 0.5));
        let sol = PenaltySolver::new().solve(&nlp).unwrap();
        assert!((sol.x[0] - 1.0).abs() < 1e-2, "x = {:?}", sol.x);
        assert!((sol.objective + 0.5).abs() < 1e-3);
    }

    #[test]
    fn user_start_is_respected() {
        let mut nlp = Nlp::new(1, vec![(-100.0, 100.0)]).unwrap();
        nlp.objective(|x| (x[0] - 42.0).powi(2));
        let mut solver =
            PenaltySolver::with_options(PenaltyOptions { restarts: 0, ..Default::default() });
        solver.start_from(vec![41.0]);
        let sol = solver.solve(&nlp).unwrap();
        assert!((sol.x[0] - 42.0).abs() < 1e-3, "x = {:?}", sol.x);
    }

    #[test]
    fn validation_errors() {
        let nlp = Nlp::new(1, vec![(0.0, 1.0)]).unwrap();
        assert!(matches!(PenaltySolver::new().solve(&nlp), Err(OptimizerError::MissingObjective)));
        let mut nlp2 = Nlp::new(2, vec![(0.0, 1.0), (0.0, 1.0)]).unwrap();
        nlp2.minimize_norm2();
        let mut solver = PenaltySolver::new();
        solver.start_from(vec![0.5]);
        assert!(matches!(solver.solve(&nlp2), Err(OptimizerError::DimensionMismatch { .. })));
    }

    #[test]
    fn deterministic_given_seed() {
        let build = || {
            let mut nlp = Nlp::new(2, vec![(-1.0, 1.0), (-1.0, 1.0)]).unwrap();
            nlp.minimize_norm2();
            nlp.constraint("c", ConstraintSense::Ge, 0.5, |x| x[0] * x[1] + x[0]);
            nlp
        };
        let s1 = PenaltySolver::new().solve(&build()).unwrap();
        let s2 = PenaltySolver::new().solve(&build()).unwrap();
        assert_eq!(s1.x, s2.x);
    }

    #[test]
    fn parallel_solve_matches_serial_for_fixed_seed() {
        // Satellite: same seed ⇒ identical Solution whether the restarts
        // run serially or on parallel threads (unlimited budget).
        let build = || {
            let mut nlp = Nlp::new(3, vec![(-1.0, 1.0), (-1.0, 1.0), (0.0, 2.0)]).unwrap();
            nlp.minimize_norm2();
            nlp.constraint("c1", ConstraintSense::Ge, 0.5, |x| x[0] * x[1] + x[2]);
            nlp.constraint("c2", ConstraintSense::Le, 1.5, |x| x[0] + x[1] + x[2]);
            nlp
        };
        let serial =
            PenaltySolver::with_options(PenaltyOptions { parallel: false, ..Default::default() })
                .solve(&build())
                .unwrap();
        let parallel =
            PenaltySolver::with_options(PenaltyOptions { parallel: true, ..Default::default() })
                .solve(&build())
                .unwrap();
        assert_eq!(serial.x, parallel.x);
        assert_eq!(serial.objective, parallel.objective);
        assert_eq!(serial.max_violation, parallel.max_violation);
        assert_eq!(serial.feasible, parallel.feasible);
        assert_eq!(serial.evaluations, parallel.evaluations);
        assert_eq!(serial.stopped, parallel.stopped);
    }

    #[test]
    fn constraint_block_matches_scalar_constraints() {
        // The same plane constraint registered as a block must steer the
        // solve to the same optimum as the scalar form.
        let mut scalar = Nlp::new(2, vec![(-2.0, 2.0), (-2.0, 2.0)]).unwrap();
        scalar.minimize_norm2();
        scalar.constraint("plane", ConstraintSense::Ge, 1.0, |x| x[0] + x[1]);

        let mut block = Nlp::new(2, vec![(-2.0, 2.0), (-2.0, 2.0)]).unwrap();
        block.minimize_norm2();
        block.constraint_block(
            vec![crate::BlockRow::new("plane", ConstraintSense::Ge, 1.0, 0.0)],
            |x, out| out[0] = x[0] + x[1],
        );
        assert_eq!(block.num_constraint_rows(), 1);
        assert!(!block.has_full_gradients(), "block lacks a jacobian");

        let a = PenaltySolver::new().solve(&scalar).unwrap();
        let b = PenaltySolver::new().solve(&block).unwrap();
        assert!(b.feasible);
        assert!((a.x[0] - b.x[0]).abs() < 1e-6, "{:?} vs {:?}", a.x, b.x);
        assert!((a.x[1] - b.x[1]).abs() < 1e-6);
    }

    #[test]
    fn analytic_gradients_reach_the_same_optimum() {
        // min ‖x‖² s.t. x0 + x1 ≥ 1 with full analytic gradients: the
        // solver takes the one-pass merit-gradient path and still lands on
        // (0.5, 0.5).
        let mut nlp = Nlp::new(2, vec![(-2.0, 2.0), (-2.0, 2.0)]).unwrap();
        nlp.minimize_norm2();
        nlp.constraint_block_with_jacobian(
            vec![crate::BlockRow::new("plane", ConstraintSense::Ge, 1.0, 0.0)],
            |x, out| out[0] = x[0] + x[1],
            |_x, out, jac| {
                out[0] = _x[0] + _x[1];
                jac[0] = 1.0;
                jac[1] = 1.0;
            },
        );
        assert!(nlp.has_full_gradients());
        let sol = PenaltySolver::new().solve(&nlp).unwrap();
        assert!(sol.feasible, "violation {}", sol.max_violation);
        assert!((sol.x[0] - 0.5).abs() < 2e-3, "x = {:?}", sol.x);
        assert!((sol.x[1] - 0.5).abs() < 2e-3);
    }

    #[test]
    fn evaluation_budget_yields_best_effort_solution() {
        let mut nlp = Nlp::new(2, vec![(-5.0, 5.0), (-5.0, 5.0)]).unwrap();
        nlp.objective(|x| (x[0] - 1.0).powi(2) + (x[1] + 2.0).powi(2));
        let solver = PenaltySolver::new().with_budget(Budget::unlimited().with_max_evaluations(25));
        let sol = solver.solve(&nlp).unwrap();
        assert_eq!(sol.stopped, Some(Exhaustion::Evaluations));
        assert!(sol.evaluations <= 50, "polling granularity keeps overshoot small");
        assert!(sol.objective.is_finite());
        assert_eq!(sol.x.len(), 2);
    }

    #[test]
    fn restart_diagnostics_account_for_every_start() {
        let mut nlp = Nlp::new(2, vec![(-5.0, 5.0), (-5.0, 5.0)]).unwrap();
        nlp.objective(|x| (x[0] - 1.0).powi(2) + (x[1] + 2.0).powi(2));
        // Unlimited budget: nothing pruned, nothing exhausted.
        let full =
            PenaltySolver::with_options(PenaltyOptions { parallel: false, ..Default::default() })
                .solve(&nlp)
                .unwrap();
        assert_eq!(full.restarts_pruned, 0);
        assert_eq!(full.restarts_exhausted, 0);
        // A tiny budget lets the first start run (truncated) and prunes the
        // rest; the serial path makes the split deterministic.
        let tight =
            PenaltySolver::with_options(PenaltyOptions { parallel: false, ..Default::default() })
                .with_budget(Budget::unlimited().with_max_evaluations(5))
                .solve(&nlp)
                .unwrap();
        assert_eq!(tight.stopped, Some(Exhaustion::Evaluations));
        assert!(tight.restarts_exhausted >= 1, "the running start was cut short");
        assert!(tight.restarts_pruned >= 1, "later starts never ran");
        // 1 center + 8 restarts: every start is accounted for exactly once.
        assert_eq!(tight.restarts_pruned + tight.restarts_exhausted, 9);
    }

    #[test]
    fn zero_budget_still_returns_a_point() {
        let mut nlp = Nlp::new(1, vec![(0.0, 2.0)]).unwrap();
        nlp.objective(|x| x[0]);
        let solver = PenaltySolver::new().with_budget(Budget::unlimited().with_max_evaluations(0));
        let sol = solver.solve(&nlp).unwrap();
        assert_eq!(sol.stopped, Some(Exhaustion::Evaluations));
        // Falls back to the evaluated box center.
        assert_eq!(sol.x, vec![1.0]);
        assert!((sol.objective - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cancellation_stops_the_solver() {
        let token = tml_numerics::CancelToken::new();
        token.cancel();
        let mut nlp = Nlp::new(1, vec![(-1.0, 1.0)]).unwrap();
        nlp.minimize_norm2();
        let solver = PenaltySolver::new().with_budget(Budget::unlimited().with_cancel_token(token));
        let sol = solver.solve(&nlp).unwrap();
        assert_eq!(sol.stopped, Some(Exhaustion::Cancelled));
    }

    #[test]
    fn nan_objective_does_not_poison_the_solve() {
        // The oracle returns NaN on half the domain; the solver must keep
        // working with the finite half and still find the minimum there.
        let mut nlp = Nlp::new(1, vec![(-2.0, 2.0)]).unwrap();
        nlp.objective(|x| if x[0] < 0.0 { f64::NAN } else { (x[0] - 1.0).powi(2) });
        let sol = PenaltySolver::new().solve(&nlp).unwrap();
        assert!(sol.stopped.is_none());
        assert!(sol.objective.is_finite(), "solution must land in the finite region");
        assert!((sol.x[0] - 1.0).abs() < 1e-3, "x = {:?}", sol.x);
    }

    #[test]
    fn nonconvex_rational_constraint() {
        // Mimic a repair constraint: f(v) = 0.4 / (0.4 + 0.6 v) ≥ 0.8 with
        // cost (1-v)². Solution: v ≤ 1/6, cost minimal at v = 1/6.
        let mut nlp = Nlp::new(1, vec![(0.0, 1.0)]).unwrap();
        nlp.objective(|x| (1.0 - x[0]).powi(2));
        nlp.constraint("ratio", ConstraintSense::Ge, 0.8, |x| 0.4 / (0.4 + 0.6 * x[0]));
        let sol = PenaltySolver::new().solve(&nlp).unwrap();
        assert!(sol.feasible);
        assert!((sol.x[0] - 1.0 / 6.0).abs() < 1e-3, "x = {:?}", sol.x);
    }
}
