//! Non-linear constrained optimization for repair problems.
//!
//! Model Repair and Data Repair reduce to small non-convex programs of the
//! form
//!
//! ```text
//! minimize    g(v)                     (perturbation cost, e.g. ‖v‖²)
//! subject to  fᵢ(v) ⋈ bᵢ               (rational constraints from
//!                                       parametric model checking)
//!             lo ≤ v ≤ hi              (probability-validity box)
//! ```
//!
//! The paper hands these to AMPL; this crate is the self-contained
//! replacement: a **quadratic-penalty method** with a projected-gradient
//! inner loop (central-difference gradients, Armijo backtracking) and
//! deterministic multi-start. Infeasibility is reported when even the best
//! start cannot drive the violation below tolerance under the largest
//! penalty weight — which is exactly how the paper's "Model Repair gives
//! infeasible solution" outcome (X = 19) is detected.
//!
//! # Example
//!
//! Minimize `x² + y²` subject to `x + y ≥ 1`:
//!
//! ```
//! use tml_optimizer::{Nlp, ConstraintSense, PenaltySolver};
//!
//! # fn main() -> Result<(), tml_optimizer::OptimizerError> {
//! let mut nlp = Nlp::new(2, vec![(-2.0, 2.0), (-2.0, 2.0)])?;
//! nlp.objective(|x| x[0] * x[0] + x[1] * x[1]);
//! nlp.constraint("sum", ConstraintSense::Ge, 1.0, |x| x[0] + x[1]);
//! let sol = PenaltySolver::new().solve(&nlp)?;
//! assert!(sol.feasible);
//! assert!((sol.x[0] - 0.5).abs() < 1e-3);
//! assert!((sol.x[1] - 0.5).abs() < 1e-3);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod problem;
pub mod restart;
mod solver;

pub use error::OptimizerError;
pub use problem::{BlockRow, Constraint, ConstraintBlock, ConstraintSense, Nlp, ViolationStats};
pub use solver::{PenaltyOptions, PenaltySolver, Solution};
// Budgets are part of the solver API surface.
pub use tml_numerics::{Budget, CancelToken, Diagnostics, Exhaustion};
