//! Bit-exact serialization of solver restart points.
//!
//! The batch runtime checkpoints the best penalty-solver iterate between
//! retry attempts and replays it on resume. A resumed run must be bitwise
//! identical to an uninterrupted one, so restart points round-trip through
//! the journal **exactly**: each `f64` is encoded as the fixed-width hex
//! spelling of its IEEE-754 bit pattern (`f64::to_bits`), never through a
//! decimal formatter. NaN payloads, signed zeros and infinities all
//! survive unchanged.
//!
//! The wire form is a JSON array of 16-digit hex strings:
//!
//! ```text
//! ["3ff0000000000000","bfe0000000000000"]   // [1.0, -0.5]
//! ```

/// Encodes a restart point as a JSON array of hex bit patterns.
pub fn encode_point(x: &[f64]) -> String {
    let mut out = String::with_capacity(2 + 19 * x.len());
    out.push('[');
    for (i, v) in x.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        out.push_str(&format!("{:016x}", v.to_bits()));
        out.push('"');
    }
    out.push(']');
    out
}

/// Decodes a point produced by [`encode_point`].
///
/// # Errors
///
/// Returns a description of the first malformed element. Accepts the
/// already-parsed JSON strings (use a JSON parser for the array framing).
pub fn decode_hex(s: &str) -> Result<f64, String> {
    if s.len() != 16 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
        return Err(format!("bad f64 bit pattern {s:?}: want 16 hex digits"));
    }
    let bits = u64::from_str_radix(s, 16).map_err(|e| format!("bad f64 bit pattern {s:?}: {e}"));
    Ok(f64::from_bits(bits?))
}

/// Decodes a full point from a slice of hex strings.
///
/// # Errors
///
/// Returns a description of the first malformed element.
pub fn decode_point<S: AsRef<str>>(parts: &[S]) -> Result<Vec<f64>, String> {
    parts.iter().map(|s| decode_hex(s.as_ref())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex_parts(encoded: &str) -> Vec<String> {
        encoded
            .trim_start_matches('[')
            .trim_end_matches(']')
            .split(',')
            .filter(|s| !s.is_empty())
            .map(|s| s.trim_matches('"').to_owned())
            .collect()
    }

    #[test]
    fn round_trips_bit_exactly() {
        let points = vec![
            vec![1.0, -0.5, 0.1 + 0.2],
            vec![0.0, -0.0, f64::MIN_POSITIVE, f64::MAX],
            vec![f64::INFINITY, f64::NEG_INFINITY, f64::NAN],
            vec![],
        ];
        for x in points {
            let encoded = encode_point(&x);
            let decoded = decode_point(&hex_parts(&encoded)).unwrap();
            assert_eq!(decoded.len(), x.len());
            for (a, b) in x.iter().zip(&decoded) {
                assert_eq!(a.to_bits(), b.to_bits(), "{a} must survive bit-exactly");
            }
        }
    }

    #[test]
    fn encoding_is_fixed_width_hex() {
        assert_eq!(encode_point(&[1.0]), "[\"3ff0000000000000\"]");
        assert_eq!(encode_point(&[0.0]), "[\"0000000000000000\"]");
        assert_eq!(encode_point(&[]), "[]");
    }

    #[test]
    fn rejects_malformed_patterns() {
        assert!(decode_hex("3ff").is_err(), "too short");
        assert!(decode_hex("3ff000000000000g").is_err(), "non-hex digit");
        assert!(decode_hex("3ff00000000000000").is_err(), "too long");
        assert!(decode_point(&["3ff0000000000000", "nope"]).is_err());
    }
}
