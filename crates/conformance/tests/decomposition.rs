//! Property tests for the SCC-decomposed solver against the structured
//! generator families: block-permuted solves must match dense solves to
//! tight tolerance on every family, and results must be invariant under
//! relabeling of the input states (the decomposition must not depend on
//! the accidental numbering of the chain).

use proptest::prelude::*;
use tml_checker::dtmc::until_probabilities;
use tml_checker::{CheckOptions, LinearSolver};
use tml_conformance::gen::{ModelFamily, GOAL_LABEL};
use tml_models::{Dtmc, DtmcBuilder};

fn scc_opts() -> CheckOptions {
    CheckOptions {
        solver: LinearSolver::Scc,
        tolerance: 1e-12,
        max_iterations: 2_000_000,
        ..CheckOptions::default()
    }
}

fn direct_opts() -> CheckOptions {
    CheckOptions {
        solver: LinearSolver::Direct,
        direct_solver_limit: usize::MAX,
        ..CheckOptions::default()
    }
}

/// Rebuilds `d` with state `s` renamed to `perm[s]`.
fn relabel(d: &Dtmc, perm: &[usize]) -> Dtmc {
    let n = d.num_states();
    let mut b = DtmcBuilder::new(n);
    b.initial_state(perm[d.initial_state()]).unwrap();
    for s in 0..n {
        for (t, p) in d.successors(s) {
            b.transition(perm[s], perm[t], p).unwrap();
        }
        for label in d.labeling().labels_of(s) {
            b.label(perm[s], label).unwrap();
        }
    }
    b.build().unwrap()
}

/// A deterministic pseudo-random permutation of `0..n` derived from `seed`
/// (Fisher–Yates over a simple LCG, so failures reproduce exactly).
fn permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..n).collect();
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    for i in (1..n).rev() {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let j = (state >> 33) as usize % (i + 1);
        perm.swap(i, j);
    }
    perm
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The SCC-decomposed solve agrees with dense LU to 1e-10 on every
    /// generator family, at every state.
    #[test]
    fn scc_matches_dense_on_all_families(
        seed in 0u64..400,
        fam_idx in 0usize..ModelFamily::all().len(),
        size in 9usize..40,
    ) {
        let family = ModelFamily::all()[fam_idx];
        let d = family.generate_sized(seed, size);
        let target = d.labeling().mask(GOAL_LABEL);
        let phi = vec![true; d.num_states()];
        let dense = until_probabilities(&d, &phi, &target, &direct_opts()).unwrap();
        let scc = until_probabilities(&d, &phi, &target, &scc_opts()).unwrap();
        for s in 0..d.num_states() {
            prop_assert!(
                (dense[s] - scc[s]).abs() < 1e-10,
                "{} seed {seed} state {s}: dense {} vs scc {}",
                family.name(), dense[s], scc[s]
            );
        }
    }

    /// Relabeling the states of the input chain permutes the answer and
    /// nothing else: the decomposition must not depend on state numbering.
    #[test]
    fn scc_solve_is_relabeling_invariant(
        seed in 0u64..400,
        fam_idx in 0usize..ModelFamily::all().len(),
        perm_seed in 0u64..1000,
    ) {
        let family = ModelFamily::all()[fam_idx];
        let d = family.generate(seed);
        let n = d.num_states();
        let perm = permutation(n, perm_seed);
        let r = relabel(&d, &perm);

        let target = d.labeling().mask(GOAL_LABEL);
        let phi = vec![true; n];
        let x = until_probabilities(&d, &phi, &target, &scc_opts()).unwrap();

        let target_r = r.labeling().mask(GOAL_LABEL);
        let phi_r = vec![true; n];
        let y = until_probabilities(&r, &phi_r, &target_r, &scc_opts()).unwrap();

        for s in 0..n {
            prop_assert!(
                (x[s] - y[perm[s]]).abs() < 1e-9,
                "{} seed {seed} perm {perm_seed} state {s}: {} vs {}",
                family.name(), x[s], y[perm[s]]
            );
        }
    }
}
