//! `conformance` — fan the differential oracle out over a seed range.
//!
//! ```text
//! conformance --seeds 0..64                       # full sweep, all pairs
//! conformance --seeds 9..10 --families layered    # reproduce one report line
//! conformance --seeds 0..64 --inject              # validate the harness itself
//! ```
//!
//! Exit codes: `0` all engines agree, `1` at least one disagreement,
//! `2` usage error.

use std::io::Write;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use tml_conformance::gen::ModelFamily;
use tml_conformance::oracle::{Injection, Oracle, OracleOptions};
use tml_conformance::report;
use tml_telemetry::sink::JsonlSink;
use tml_telemetry::{summary, Subscriber};

const USAGE: &str = "usage: conformance [options]

differentially tests the trusted-ml engines over seeded random models:
dense vs Gauss-Seidel vs Jacobi solves, compiled tapes vs interpreted
rational functions vs instantiate-and-check, checker values vs Monte Carlo
confidence intervals, and repaired models re-verified by simulation.
Disagreeing models are shrunk to a minimal reproducer.

options:
  --seeds A..B        seed range to sweep, half-open (default 0..16)
  --families LIST     comma-separated model families (default: all of
                      layered,absorbing,grid,dense,near-singular)
  --trajectories N    Monte Carlo trajectories per simulation check
                      (default 20000)
  --out PATH          write the JSONL report (tml-conformance/v1) to PATH
                      instead of only printing the summary
  --no-shrink         report disagreements without shrinking
  --inject            deliberately bias one engine (debug): the sweep must
                      catch it and shrink it to a minimal failing model
  --trace-json PATH   stream a tml-trace/v1 telemetry trace to PATH
  --metrics           print a metrics summary table when the sweep finishes
  -h, --help          print this help and exit";

#[derive(Debug)]
struct UsageError(String);

struct Args {
    seeds: std::ops::Range<u64>,
    families: Vec<ModelFamily>,
    oracle: OracleOptions,
    out: Option<String>,
    trace_json: Option<String>,
    metrics: bool,
    help: bool,
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    match run(&raw) {
        Ok(code) => ExitCode::from(code),
        Err(UsageError(msg)) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn parse_args(raw: &[String]) -> Result<Args, UsageError> {
    let mut args = Args {
        seeds: 0..16,
        families: ModelFamily::all().to_vec(),
        oracle: OracleOptions::default(),
        out: None,
        trace_json: None,
        metrics: false,
        help: false,
    };
    let mut it = raw.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "-h" | "--help" => args.help = true,
            "--metrics" => args.metrics = true,
            "--no-shrink" => args.oracle.shrink = false,
            "--inject" => args.oracle.inject = Some(Injection::default()),
            "--seeds" => {
                let spec = it.next().ok_or_else(|| UsageError("--seeds needs A..B".into()))?;
                let (a, b) = spec
                    .split_once("..")
                    .ok_or_else(|| UsageError(format!("--seeds expects A..B, got {spec:?}")))?;
                let lo: u64 = a.parse().map_err(|_| UsageError(format!("bad seed start {a:?}")))?;
                let hi: u64 = b.parse().map_err(|_| UsageError(format!("bad seed end {b:?}")))?;
                if hi <= lo {
                    return Err(UsageError(format!("empty seed range {spec:?}")));
                }
                args.seeds = lo..hi;
            }
            "--families" => {
                let list = it.next().ok_or_else(|| UsageError("--families needs a list".into()))?;
                let mut families = Vec::new();
                for name in list.split(',') {
                    let f = ModelFamily::parse(name.trim())
                        .ok_or_else(|| UsageError(format!("unknown family {name:?}")))?;
                    families.push(f);
                }
                args.families = families;
            }
            "--trajectories" => {
                let n: u64 = it
                    .next()
                    .ok_or_else(|| UsageError("--trajectories needs a value".into()))?
                    .parse()
                    .map_err(|_| UsageError("--trajectories must be an integer".into()))?;
                if n == 0 {
                    return Err(UsageError("--trajectories must be positive".into()));
                }
                args.oracle.trajectories = n;
            }
            "--out" => {
                let path = it.next().ok_or_else(|| UsageError("--out needs a path".into()))?;
                args.out = Some(path.clone());
            }
            "--trace-json" => {
                let path =
                    it.next().ok_or_else(|| UsageError("--trace-json needs a path".into()))?;
                args.trace_json = Some(path.clone());
            }
            other => return Err(UsageError(format!("unknown argument {other:?}"))),
        }
    }
    Ok(args)
}

fn run(raw: &[String]) -> Result<u8, UsageError> {
    let args = parse_args(raw)?;
    if args.help {
        println!("{USAGE}");
        return Ok(0);
    }
    let subscriber = install_telemetry(&args)?;
    let result = sweep(&args);
    if let Some(sub) = subscriber {
        tml_telemetry::uninstall_global();
        if args.metrics {
            let table = summary::render_metrics(&sub.metrics_snapshot());
            if table.is_empty() {
                println!("no metrics recorded");
            } else {
                print!("{table}");
            }
        }
    }
    result
}

fn sweep(args: &Args) -> Result<u8, UsageError> {
    let start = Instant::now();
    let oracle = Oracle::new(args.oracle);
    let family_names: Vec<&str> = args.families.iter().map(|f| f.name()).collect();
    let seeds_label = format!("{}..{}", args.seeds.start, args.seeds.end);

    let mut report_out: Option<Box<dyn Write>> = match &args.out {
        Some(path) => {
            let file = std::fs::File::create(path)
                .map_err(|e| UsageError(format!("cannot create report file {path:?}: {e}")))?;
            Some(Box::new(std::io::BufWriter::new(file)))
        }
        None => None,
    };
    if let Some(out) = report_out.as_mut() {
        report::write_meta(
            out,
            &seeds_label,
            &family_names,
            args.oracle.trajectories,
            args.oracle.inject.is_some(),
        )
        .map_err(|e| UsageError(format!("report write failed: {e}")))?;
    }

    let (mut checks, mut disagreements) = (0u64, 0u64);
    for seed in args.seeds.clone() {
        let outcome = oracle.run_seed(seed, &args.families);
        checks += outcome.checks.len() as u64;
        disagreements += outcome.disagreements.len() as u64;
        for d in &outcome.disagreements {
            let family = d.family.map(|f| f.name()).unwrap_or("parametric");
            eprintln!("DISAGREEMENT [{}] family={family} seed={}", d.pair.name(), d.seed);
            eprintln!("  {}", d.detail);
            match &d.shrunk {
                Some(s) => eprintln!(
                    "  shrunk to {} states / {} edges (delta {}); reproduce with \
                     --seeds {}..{} --families {family}",
                    s.num_states,
                    s.num_edges,
                    s.delta,
                    d.seed,
                    d.seed + 1
                ),
                None => eprintln!(
                    "  reproduce with --seeds {}..{} --families {family}",
                    d.seed,
                    d.seed + 1
                ),
            }
        }
        if let Some(out) = report_out.as_mut() {
            report::write_seed(out, &outcome)
                .map_err(|e| UsageError(format!("report write failed: {e}")))?;
        }
    }

    let elapsed_ms = start.elapsed().as_millis() as u64;
    if let Some(out) = report_out.as_mut() {
        report::write_summary(out, checks, disagreements, elapsed_ms)
            .map_err(|e| UsageError(format!("report write failed: {e}")))?;
        out.flush().map_err(|e| UsageError(format!("report write failed: {e}")))?;
    }
    println!(
        "conformance: {} seeds x {} families, {checks} checks, {disagreements} disagreements \
         ({elapsed_ms} ms)",
        args.seeds.end - args.seeds.start,
        args.families.len(),
    );
    Ok(if disagreements == 0 { 0 } else { 1 })
}

fn install_telemetry(args: &Args) -> Result<Option<Arc<Subscriber>>, UsageError> {
    if args.trace_json.is_none() && !args.metrics {
        return Ok(None);
    }
    let mut builder = Subscriber::builder();
    if let Some(path) = &args.trace_json {
        let file = std::fs::File::create(path)
            .map_err(|e| UsageError(format!("cannot create trace file {path:?}: {e}")))?;
        let sink = JsonlSink::new(std::io::BufWriter::new(file), "tml")
            .map_err(|e| UsageError(format!("cannot write trace file {path:?}: {e}")))?;
        builder = builder.sink(Arc::new(sink));
    }
    let sub = Arc::new(builder.build());
    if !tml_telemetry::install_global(sub.clone()) {
        return Err(UsageError("a telemetry subscriber is already installed".into()));
    }
    Ok(Some(sub))
}
