//! The differential oracle harness: engine pairs, seed sweeps, and
//! automatic shrinking of disagreeing models.
//!
//! Every *engine pair* computes the same quantity two independent ways and
//! compares within a tolerance:
//!
//! | pair | left engine | right engine |
//! |------|-------------|--------------|
//! | `dense-vs-gs` | dense LU solve | Gauss–Seidel iteration |
//! | `jacobi-vs-dense` | Jacobi on the reachability system | dense LU solve |
//! | `tape-vs-interp` | compiled rational-function tapes | interpreted evaluation |
//! | `tape-vs-instantiate` | compiled tapes | instantiate + concrete checker |
//! | `checker-vs-sim` | bounded-until checker | Monte Carlo confidence interval |
//! | `repair-recheck` | model repair verdict | simulation of the repaired model |
//! | `scc-vs-dense` | SCC-decomposed block solve | dense LU solve |
//! | `interval-contains-direct` | interval-iteration bounds | dense LU (must lie inside) |
//! | `lifting-vs-penalty` | parameter-lifting repair (checker re-verified) | penalty repair (cost never better by more than ε) |
//! | `interval-bound-contains-point` | interval bound over a parameter box | exact tape evaluation at points inside (must lie inside) |
//! | `robust-contains-nominal` | robust VI bracket on the Wilson ball | dense LU on the nominal chain (must lie inside) |
//! | `robust-vs-sampled` | robust VI bracket on the Wilson ball | dense LU on sampled members of the ball (must lie inside) |
//!
//! On disagreement the harness *shrinks* the model while the pair still
//! disagrees — halving the state space (out-of-range transitions are
//! redirected to a fresh absorbing goal) and dropping low-probability
//! edges — so the report points at a minimal reproducer instead of the
//! original haystack. The `--inject` debug flag biases one engine
//! conditioned on model size, which exercises exactly this machinery:
//! the shrinker must converge to the smallest model above the bias
//! threshold.

use tml_checker::dtmc as checker_dtmc;
use tml_checker::{Budget, CheckOptions, Checker, LinearSolver};
use tml_logic::{CmpOp, PathFormula, Query, StateFormula};
use tml_models::{graph, Dtmc, DtmcBuilder, IntervalDtmc};
use tml_numerics::iterative::{jacobi_budgeted, IterOptions};
use tml_numerics::{CsrMatrix, Triplet};
use tml_parametric::CompiledRatFn;
use tml_telemetry::{counter, span};

use crate::gen::{self, ModelFamily, GOAL_LABEL};
use crate::sim::{SimOptions, Simulator};
use crate::stats::{hoeffding_half_width, Verdict};
use tml_core::{ModelRepair, PerturbationTemplate, RepairOptions, RepairStatus, RepairStrategy};

/// A deliberate fault for validating the harness end-to-end: one engine's
/// output is biased, *conditioned on model size*, so a correct shrinker
/// must converge to the smallest model at or above the threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Injection {
    /// Bias fires only when the model has at least this many states.
    pub min_states: usize,
    /// Additive bias applied to the Gauss–Seidel engine's answer.
    pub bias: f64,
}

impl Default for Injection {
    fn default() -> Self {
        Injection { min_states: 9, bias: 1e-3 }
    }
}

/// Oracle configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OracleOptions {
    /// Trajectories for the simulation pairs.
    pub trajectories: u64,
    /// `α` for simulation confidence intervals (small: a CI miss is a bug).
    pub alpha: f64,
    /// Numeric agreement tolerance between exact engines.
    pub tolerance: f64,
    /// Whether to shrink disagreeing models.
    pub shrink: bool,
    /// Optional injected fault (debug).
    pub inject: Option<Injection>,
}

impl Default for OracleOptions {
    fn default() -> Self {
        OracleOptions {
            trajectories: 20_000,
            alpha: 1e-9,
            tolerance: 1e-6,
            shrink: true,
            inject: None,
        }
    }
}

/// The engine pairs the oracle exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnginePair {
    /// Dense LU vs Gauss–Seidel on unbounded reachability.
    DenseVsGaussSeidel,
    /// Jacobi on the reachability fixed-point system vs dense LU.
    JacobiVsDense,
    /// Compiled tapes vs interpreted rational functions, all states.
    TapeVsInterpreted,
    /// Compiled tapes vs instantiate-then-check at the initial state.
    TapeVsInstantiated,
    /// Bounded-until checker value vs Monte Carlo confidence interval.
    CheckerVsSimulation,
    /// Model repair outcome re-verified by independent simulation.
    RepairRecheck,
    /// SCC-decomposed block solve vs dense LU on unbounded reachability.
    SccVsDense,
    /// Interval-iteration bounds must contain the dense LU value at every
    /// state (a containment check, not a distance check).
    IntervalContainsDirect,
    /// Parameter-lifting repair vs penalty repair on the same job: the
    /// lifting repair must re-verify under the concrete checker and its
    /// cost must never exceed the penalty repair's by more than ε.
    LiftingVsPenalty,
    /// Interval bounds of every compiled constraint over random parameter
    /// sub-boxes must contain the exact tape evaluation at random points
    /// inside them (the soundness invariant region pruning rests on).
    IntervalBoundContainsPoint,
    /// Robust value iteration on the Wilson ball around the model: the
    /// `[pessimistic, optimistic]` bracket must contain the dense LU value
    /// of the nominal chain at every state (the ball keeps the point
    /// estimate as a member by construction).
    RobustContainsNominal,
    /// Robust bracket vs sampled members: concrete chains drawn inside the
    /// uncertainty ball, solved exactly, must land inside the bracket.
    RobustVsSampled,
}

impl EnginePair {
    /// All pairs in reporting order.
    pub fn all() -> &'static [EnginePair] {
        &[
            EnginePair::DenseVsGaussSeidel,
            EnginePair::JacobiVsDense,
            EnginePair::TapeVsInterpreted,
            EnginePair::TapeVsInstantiated,
            EnginePair::CheckerVsSimulation,
            EnginePair::RepairRecheck,
            EnginePair::SccVsDense,
            EnginePair::IntervalContainsDirect,
            EnginePair::LiftingVsPenalty,
            EnginePair::IntervalBoundContainsPoint,
            EnginePair::RobustContainsNominal,
            EnginePair::RobustVsSampled,
        ]
    }

    /// Stable kebab-case identifier (used in reports and CLI filters).
    pub fn name(self) -> &'static str {
        match self {
            EnginePair::DenseVsGaussSeidel => "dense-vs-gs",
            EnginePair::JacobiVsDense => "jacobi-vs-dense",
            EnginePair::TapeVsInterpreted => "tape-vs-interp",
            EnginePair::TapeVsInstantiated => "tape-vs-instantiate",
            EnginePair::CheckerVsSimulation => "checker-vs-sim",
            EnginePair::RepairRecheck => "repair-recheck",
            EnginePair::SccVsDense => "scc-vs-dense",
            EnginePair::IntervalContainsDirect => "interval-contains-direct",
            EnginePair::LiftingVsPenalty => "lifting-vs-penalty",
            EnginePair::IntervalBoundContainsPoint => "interval-bound-contains-point",
            EnginePair::RobustContainsNominal => "robust-contains-nominal",
            EnginePair::RobustVsSampled => "robust-vs-sampled",
        }
    }

    /// Parses the output of [`name`](Self::name).
    pub fn parse(name: &str) -> Option<EnginePair> {
        EnginePair::all().iter().copied().find(|p| p.name() == name)
    }
}

/// One agreement check that ran (pass or fail).
#[derive(Debug, Clone)]
pub struct CheckRecord {
    /// Which engine pair.
    pub pair: EnginePair,
    /// Which model family (None for parametric-only pairs).
    pub family: Option<ModelFamily>,
    /// The generating seed.
    pub seed: u64,
    /// Whether the engines agreed.
    pub agreed: bool,
    /// Human-readable context (values compared, sizes, skips).
    pub detail: String,
}

/// The minimal reproducer the shrinker converged to.
#[derive(Debug, Clone)]
pub struct Shrunk {
    /// States of the minimal failing model.
    pub num_states: usize,
    /// Edges of the minimal failing model.
    pub num_edges: usize,
    /// The disagreement magnitude on the minimal model.
    pub delta: f64,
}

/// A confirmed engine disagreement.
#[derive(Debug, Clone)]
pub struct Disagreement {
    /// Which engine pair disagreed.
    pub pair: EnginePair,
    /// Which family produced the model (None for parametric pairs).
    pub family: Option<ModelFamily>,
    /// The generating seed (reproduce with `--seeds S..S+1`).
    pub seed: u64,
    /// States of the original disagreeing model.
    pub num_states: usize,
    /// Left engine's value.
    pub lhs: f64,
    /// Right engine's value.
    pub rhs: f64,
    /// `|lhs − rhs|` (or distance to the CI for simulation pairs).
    pub delta: f64,
    /// Human-readable context.
    pub detail: String,
    /// Minimal reproducer, when shrinking was enabled and made progress.
    pub shrunk: Option<Shrunk>,
}

/// Everything the oracle learned from one seed.
#[derive(Debug, Clone, Default)]
pub struct SeedOutcome {
    /// The seed.
    pub seed: u64,
    /// Every check that ran.
    pub checks: Vec<CheckRecord>,
    /// Every confirmed disagreement.
    pub disagreements: Vec<Disagreement>,
}

/// The numeric outcome of running one engine pair on one model: engine
/// values plus the disagreement magnitude (`None` = agreement).
type PairEval = Option<(f64, f64, f64)>;

/// The differential oracle.
#[derive(Debug, Clone, Default)]
pub struct Oracle {
    opts: OracleOptions,
}

impl Oracle {
    /// An oracle with the given options.
    pub fn new(opts: OracleOptions) -> Self {
        Oracle { opts }
    }

    /// The configured options.
    pub fn options(&self) -> &OracleOptions {
        &self.opts
    }

    /// Runs every engine pair for one seed across the selected families.
    pub fn run_seed(&self, seed: u64, families: &[ModelFamily]) -> SeedOutcome {
        let _span = span!("oracle.seed", seed = seed);
        let mut out = SeedOutcome { seed, ..Default::default() };
        for &family in families {
            let model = family.generate(seed);
            self.run_pair_on_model(EnginePair::DenseVsGaussSeidel, family, seed, &model, &mut out);
            self.run_pair_on_model(EnginePair::JacobiVsDense, family, seed, &model, &mut out);
            self.run_pair_on_model(EnginePair::CheckerVsSimulation, family, seed, &model, &mut out);
            self.run_pair_on_model(EnginePair::RepairRecheck, family, seed, &model, &mut out);
            self.run_pair_on_model(EnginePair::SccVsDense, family, seed, &model, &mut out);
            self.run_pair_on_model(
                EnginePair::IntervalContainsDirect,
                family,
                seed,
                &model,
                &mut out,
            );
            self.run_pair_on_model(EnginePair::LiftingVsPenalty, family, seed, &model, &mut out);
            self.run_pair_on_model(
                EnginePair::RobustContainsNominal,
                family,
                seed,
                &model,
                &mut out,
            );
            self.run_pair_on_model(EnginePair::RobustVsSampled, family, seed, &model, &mut out);
        }
        self.run_parametric_pairs(seed, &mut out);
        counter!("oracle.diff.seeds", 1);
        out
    }

    /// Evaluates one model-based pair, recording the check and (after
    /// shrinking) any disagreement.
    fn run_pair_on_model(
        &self,
        pair: EnginePair,
        family: ModelFamily,
        seed: u64,
        model: &Dtmc,
        out: &mut SeedOutcome,
    ) {
        let eval = |d: &Dtmc| -> PairEval {
            match pair {
                EnginePair::DenseVsGaussSeidel => self.eval_dense_vs_gs(d),
                EnginePair::JacobiVsDense => self.eval_jacobi_vs_dense(d),
                EnginePair::CheckerVsSimulation => self.eval_checker_vs_sim(d, seed),
                EnginePair::RepairRecheck => self.eval_repair_recheck(d, seed),
                EnginePair::SccVsDense => self.eval_scc_vs_dense(d),
                EnginePair::IntervalContainsDirect => self.eval_interval_contains_direct(d),
                EnginePair::LiftingVsPenalty => self.eval_lifting_vs_penalty(d),
                EnginePair::RobustContainsNominal => self.eval_robust_contains_nominal(d),
                EnginePair::RobustVsSampled => self.eval_robust_vs_sampled(d, seed),
                _ => None,
            }
        };
        match eval(model) {
            None => out.checks.push(CheckRecord {
                pair,
                family: Some(family),
                seed,
                agreed: true,
                detail: format!("{} states agree", model.num_states()),
            }),
            Some((lhs, rhs, delta)) => {
                counter!("oracle.diff.disagreements", 1);
                let shrunk = if self.opts.shrink {
                    let minimal = shrink_model(model, &|d| eval(d).is_some());
                    eval(&minimal).map(|(_, _, d)| Shrunk {
                        num_states: minimal.num_states(),
                        num_edges: count_edges(&minimal),
                        delta: d,
                    })
                } else {
                    None
                };
                out.checks.push(CheckRecord {
                    pair,
                    family: Some(family),
                    seed,
                    agreed: false,
                    detail: format!("lhs={lhs} rhs={rhs}"),
                });
                out.disagreements.push(Disagreement {
                    pair,
                    family: Some(family),
                    seed,
                    num_states: model.num_states(),
                    lhs,
                    rhs,
                    delta,
                    detail: format!(
                        "{} on family {} seed {seed}: |{lhs} - {rhs}| = {delta}",
                        pair.name(),
                        family.name()
                    ),
                    shrunk,
                });
            }
        }
    }

    /// Dense LU vs Gauss–Seidel on `P(F goal)` from the initial state.
    fn eval_dense_vs_gs(&self, d: &Dtmc) -> PairEval {
        let target = d.labeling().mask(GOAL_LABEL);
        let phi = vec![true; d.num_states()];
        let lhs = self.direct_value(d, &phi, &target)?;
        let gs = CheckOptions {
            solver: LinearSolver::GaussSeidel,
            tolerance: 1e-12,
            max_iterations: 2_000_000,
            ..CheckOptions::default()
        };
        let mut rhs = checker_dtmc::until_probabilities(d, &phi, &target, &gs)
            .ok()
            .map(|v| v[d.initial_state()])?;
        if let Some(inj) = self.opts.inject {
            if d.num_states() >= inj.min_states {
                rhs += inj.bias;
            }
        }
        disagreement(lhs, rhs, self.opts.tolerance)
    }

    /// Jacobi on the reachability fixed-point system vs dense LU. Gated to
    /// models where the goal is reachable from every state (all generator
    /// families guarantee this), because the plain Jacobi splitting only
    /// contracts there.
    fn eval_jacobi_vs_dense(&self, d: &Dtmc) -> PairEval {
        let n = d.num_states();
        let target = d.labeling().mask(GOAL_LABEL);
        let phi = vec![true; n];
        let dead = graph::prob0(d, &phi, &target);
        if dead.iter().any(|&b| b) {
            return None; // outside the pair's contract; skip silently
        }
        let rhs = self.direct_value(d, &phi, &target)?;
        // The numerics Jacobi iterates the fixed point `x = A·x + b`; for
        // reachability, A is the transition matrix restricted to non-goal
        // columns and b(s) = Σ_{t ∈ goal} P(s,t) (goal rows: empty, b = 1).
        // The iteration contracts because goal is reachable from everywhere.
        let mut triplets = Vec::new();
        let mut b = vec![0.0; n];
        for s in 0..n {
            if target[s] {
                b[s] = 1.0;
                continue;
            }
            for (t, p) in d.successors(s) {
                if target[t] {
                    b[s] += p;
                } else {
                    triplets.push(Triplet { row: s, col: t, value: p });
                }
            }
        }
        let a = CsrMatrix::from_triplets(n, n, &triplets).ok()?;
        let x0 = vec![0.0; n];
        let run = jacobi_budgeted(
            &a,
            &b,
            &x0,
            IterOptions { tolerance: 1e-13, max_iterations: 4_000_000 },
            &Budget::unlimited(),
        )
        .ok()?;
        // A non-converged iterate that nevertheless matches the dense value
        // is agreement; only the values decide.
        disagreement(run.x[d.initial_state()], rhs, self.opts.tolerance)
    }

    /// SCC-decomposed block solve vs dense LU on `P(F goal)` from the
    /// initial state.
    fn eval_scc_vs_dense(&self, d: &Dtmc) -> PairEval {
        let target = d.labeling().mask(GOAL_LABEL);
        let phi = vec![true; d.num_states()];
        let lhs = self.direct_value(d, &phi, &target)?;
        let scc = CheckOptions {
            solver: LinearSolver::Scc,
            tolerance: 1e-12,
            max_iterations: 2_000_000,
            ..CheckOptions::default()
        };
        let rhs = checker_dtmc::until_probabilities(d, &phi, &target, &scc)
            .ok()
            .map(|v| v[d.initial_state()])?;
        disagreement(lhs, rhs, self.opts.tolerance)
    }

    /// Interval-iteration bounds vs dense LU: the dense value must lie
    /// inside `[lo, hi]` at *every* state — a soundness (containment)
    /// property, stronger than pointwise closeness.
    fn eval_interval_contains_direct(&self, d: &Dtmc) -> PairEval {
        let n = d.num_states();
        let target = d.labeling().mask(GOAL_LABEL);
        let phi = vec![true; n];
        let direct = CheckOptions {
            solver: LinearSolver::Direct,
            direct_solver_limit: usize::MAX,
            ..CheckOptions::default()
        };
        let exact = checker_dtmc::until_probabilities(d, &phi, &target, &direct).ok()?;
        let opts = CheckOptions { max_iterations: 2_000_000, ..CheckOptions::default() };
        let (lo, hi, _) =
            checker_dtmc::until_probabilities_bounds(d, &phi, &target, &opts, &Budget::unlimited())
                .ok()?;
        // Direct LU carries its own rounding error, so containment is
        // checked with a hair of slack rather than exactly.
        const SLACK: f64 = 1e-9;
        for s in 0..n {
            if exact[s] < lo[s] - SLACK {
                return Some((exact[s], lo[s], lo[s] - exact[s]));
            }
            if exact[s] > hi[s] + SLACK {
                return Some((exact[s], hi[s], exact[s] - hi[s]));
            }
        }
        None
    }

    /// Bounded-until checker value vs a Monte Carlo confidence interval.
    /// The bounded horizon makes the simulation estimate unbiased (no
    /// truncation), so at `α = 1e-9` an exact value outside the CI is
    /// evidence of a bug, not noise.
    fn eval_checker_vs_sim(&self, d: &Dtmc, seed: u64) -> PairEval {
        let n = d.num_states();
        let target = d.labeling().mask(GOAL_LABEL);
        let phi = vec![true; n];
        let k = (4 * n) as u64;
        let exact =
            checker_dtmc::bounded_until_probabilities(d, &phi, &target, k)[d.initial_state()];
        let sim = Simulator::new(SimOptions {
            trajectories: self.opts.trajectories,
            alpha: self.opts.alpha,
            seed: seed ^ 0x5151_5151,
            ..SimOptions::default()
        });
        let path = PathFormula::Eventually {
            sub: Box::new(StateFormula::Atom(GOAL_LABEL.to_owned())),
            bound: Some(k),
        };
        let est = sim.path_probability(d, &path).ok()?;
        // The Wilson interval is what users see, but its normal
        // approximation under-covers near p = 0 or 1 (one miss in 20 000
        // trajectories puts the upper limit *below* an exact value of
        // 1 − 1e-6). The oracle must not flag statistical bad luck as an
        // engine bug, so the acceptance region is the union of Wilson and
        // the distribution-free Hoeffding band, whose coverage is a hard
        // finite-sample guarantee at the configured alpha.
        let hw = hoeffding_half_width(est.trajectories, self.opts.alpha);
        let low = est.interval.low.min(est.interval.estimate - hw);
        let high = est.interval.high.max(est.interval.estimate + hw);
        if exact < low - 1e-12 || exact > high + 1e-12 {
            let delta = if exact < low { low - exact } else { exact - high };
            Some((exact, est.interval.estimate, delta))
        } else {
            None
        }
    }

    /// Repairs the model toward a tightened reachability bound and
    /// re-verifies the repaired chain by independent simulation: a repair
    /// the checker calls verified must never be *refuted* by simulation.
    fn eval_repair_recheck(&self, d: &Dtmc, seed: u64) -> PairEval {
        let target = d.labeling().mask(GOAL_LABEL);
        let phi = vec![true; d.num_states()];
        let current = self.direct_value(d, &phi, &target)?;
        // Ask for a little more than the model delivers so repair is
        // non-trivial but feasible for mass-shifting templates.
        let bound = (current + 0.02).min(0.999);
        if bound <= current {
            return None; // already at the ceiling; nothing to repair
        }
        let template = mass_shift_template(d, &phi, &target)?;
        let formula = StateFormula::Prob {
            opt: None,
            op: CmpOp::Ge,
            bound,
            path: PathFormula::Eventually {
                sub: Box::new(StateFormula::Atom(GOAL_LABEL.to_owned())),
                bound: None,
            },
        };
        let outcome = ModelRepair::new().repair_dtmc(d, &formula, &template).ok()?;
        if outcome.status != RepairStatus::Repaired || !outcome.verified {
            return None; // infeasible/budget cases are not engine disagreements
        }
        let repaired = outcome.model.as_ref()?;
        let sim = Simulator::new(SimOptions {
            trajectories: self.opts.trajectories,
            alpha: self.opts.alpha,
            seed: seed ^ 0xC0C0_C0C0,
            ..SimOptions::default()
        });
        let check = sim.check_formula(repaired, &formula).ok()?;
        if check.verdict() == Verdict::Refuted {
            let iv = check.interval();
            let delta = if iv.high < bound { bound - iv.high } else { iv.low - bound };
            Some((bound, iv.estimate, delta))
        } else {
            None
        }
    }

    /// Runs the same repair job under both search strategies. Soundness
    /// demands (a) a lifting repair re-verifies under an independent dense
    /// solve, and (b) whenever the penalty search finds a verified repair,
    /// lifting must not prune it away — it must repair too, at a cost no
    /// worse than the certificate tolerance ε.
    fn eval_lifting_vs_penalty(&self, d: &Dtmc) -> PairEval {
        let target = d.labeling().mask(GOAL_LABEL);
        let phi = vec![true; d.num_states()];
        let current = self.direct_value(d, &phi, &target)?;
        let bound = (current + 0.02).min(0.999);
        if bound <= current {
            return None; // already at the ceiling; nothing to repair
        }
        let template = mass_shift_template(d, &phi, &target)?;
        let formula = StateFormula::Prob {
            opt: None,
            op: CmpOp::Ge,
            bound,
            path: PathFormula::Eventually {
                sub: Box::new(StateFormula::Atom(GOAL_LABEL.to_owned())),
                bound: None,
            },
        };
        let penalty = ModelRepair::new().repair_dtmc(d, &formula, &template).ok()?;
        let opts = RepairOptions { strategy: RepairStrategy::Lifting, ..RepairOptions::default() };
        let lifting = ModelRepair::with_options(opts).repair_dtmc(d, &formula, &template).ok()?;
        // (a) independent re-check of the lifting repair.
        if lifting.status == RepairStatus::Repaired && lifting.verified {
            let m = lifting.model.as_ref()?;
            let val = self.direct_value(m, &phi, &m.labeling().mask(GOAL_LABEL))?;
            if val < bound - 1e-6 {
                return Some((val, bound, bound - val));
            }
        }
        // (b) lifting never worse than penalty by more than ε.
        if penalty.status == RepairStatus::Repaired && penalty.verified {
            if lifting.status != RepairStatus::Repaired {
                // The region pruner discarded a feasible repair: unsound.
                return Some((f64::INFINITY, penalty.cost, f64::INFINITY));
            }
            let eps = opts.lifting.epsilon;
            if lifting.cost > penalty.cost + eps {
                return Some((lifting.cost, penalty.cost, lifting.cost - penalty.cost));
            }
        }
        None
    }

    /// Robust VI bracket on the Wilson ball vs dense LU on the nominal
    /// chain: the point estimate is a member of the ball by construction,
    /// so `pessimistic ≤ nominal ≤ optimistic` must hold at every state.
    /// Under `--inject` the pessimistic endpoint is flipped upward by the
    /// bias (an unsound narrowing), which this containment check must
    /// catch.
    fn eval_robust_contains_nominal(&self, d: &Dtmc) -> PairEval {
        let target = d.labeling().mask(GOAL_LABEL);
        let phi = vec![true; d.num_states()];
        let direct = CheckOptions {
            solver: LinearSolver::Direct,
            direct_solver_limit: usize::MAX,
            ..CheckOptions::default()
        };
        let exact = checker_dtmc::until_probabilities(d, &phi, &target, &direct).ok()?;
        let ball = IntervalDtmc::wilson_around(d, 0.95, 200.0).ok()?;
        let bracket = Checker::new().query_interval_dtmc(&ball, &reach_query()).ok()?;
        // Robust VI converges to the checker tolerance; give the
        // containment a matching hair of slack.
        const SLACK: f64 = 1e-7;
        for (s, &point) in exact.iter().enumerate() {
            let (mut lo, hi) = bracket.at(s);
            if let Some(inj) = self.opts.inject {
                if d.num_states() >= inj.min_states {
                    // Deliberately unsound endpoint flip (self-test).
                    lo += inj.bias;
                }
            }
            if point < lo - SLACK {
                return Some((point, lo, lo - point));
            }
            if point > hi + SLACK {
                return Some((point, hi, point - hi));
            }
        }
        None
    }

    /// Robust bracket vs sampled members of the ball: each sampled chain
    /// lies inside the uncertainty set, so its exact dense-LU reachability
    /// value must land inside the robust `[pessimistic, optimistic]`
    /// bracket at the initial state.
    fn eval_robust_vs_sampled(&self, d: &Dtmc, seed: u64) -> PairEval {
        let ball = IntervalDtmc::wilson_around(d, 0.9, 150.0).ok()?;
        let bracket = Checker::new().query_interval_dtmc(&ball, &reach_query()).ok()?;
        let (lo, hi) = bracket.at(d.initial_state());
        const SLACK: f64 = 1e-7;
        for i in 0..4u64 {
            let member = ball.sample_member(seed ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15)).ok()?;
            let target = member.labeling().mask(GOAL_LABEL);
            let phi = vec![true; member.num_states()];
            let v = self.direct_value(&member, &phi, &target)?;
            if v < lo - SLACK {
                return Some((v, lo, lo - v));
            }
            if v > hi + SLACK {
                return Some((v, hi, v - hi));
            }
        }
        None
    }

    /// Compiled tapes vs interpreted evaluation vs instantiate-and-check on
    /// a generated parametric DTMC.
    fn run_parametric_pairs(&self, seed: u64, out: &mut SeedOutcome) {
        let n = 6 + (seed as usize % 5) * 2;
        let nparams = 1 + (seed as usize % 3);
        let generated = gen::parametric_dtmc(seed, n, nparams);
        let target: Vec<bool> = {
            // The parametric builder has no labeling; goal is the last state.
            let mut m = vec![false; generated.pdtmc.num_states()];
            m[generated.pdtmc.num_states() - 1] = true;
            m
        };
        let Ok(fns) = generated.pdtmc.reachability(&target) else {
            out.checks.push(CheckRecord {
                pair: EnginePair::TapeVsInterpreted,
                family: None,
                seed,
                agreed: true,
                detail: "state elimination failed; skipped".to_owned(),
            });
            return;
        };
        let tapes: Vec<CompiledRatFn> = fns.iter().map(CompiledRatFn::compile).collect();
        let points: Vec<Vec<f64>> = [0.0, 0.5, 1.0].iter().map(|&f| generated.point(f)).collect();

        // Pair: tapes vs interpreted, every state, every point.
        let mut worst: PairEval = None;
        'outer: for point in &points {
            for (rf, tape) in fns.iter().zip(&tapes) {
                let (Ok(interp), Ok(compiled)) = (rf.eval(point), tape.eval(point)) else {
                    continue;
                };
                if let Some(found) = disagreement(compiled, interp, 1e-9) {
                    worst = Some(found);
                    break 'outer;
                }
            }
        }
        self.record_parametric(EnginePair::TapeVsInterpreted, seed, n, worst, out);

        // Pair: tapes vs instantiate + concrete checker, initial state.
        let mut worst: PairEval = None;
        for point in &points {
            let Ok(tape_val) = tapes[generated.pdtmc.initial_state()].eval(point) else {
                continue;
            };
            let Ok(inst) = generated.pdtmc.instantiate(point) else { continue };
            let phi = vec![true; inst.num_states()];
            let Some(checked) = self.direct_value(&inst, &phi, &target) else { continue };
            if let Some(found) = disagreement(tape_val, checked, self.opts.tolerance) {
                worst = Some(found);
                break;
            }
        }
        self.record_parametric(EnginePair::TapeVsInstantiated, seed, n, worst, out);

        // Pair: the interval bound of every compiled tape over a random
        // sub-box must contain the exact tape value at random points inside
        // it — the soundness invariant all region pruning rests on. Under
        // `--inject` the bound is deliberately narrowed by the bias, which
        // the containment check must catch.
        let mut worst: PairEval = None;
        // Splitmix-style generator: deterministic per seed, independent of
        // the model-generation stream.
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x1BAD_B002;
        let mut frac = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        const SLACK: f64 = 1e-9;
        'boxes: for round in 0..3 {
            // Round 0 uses a degenerate (point) box: its bound collapses to
            // the exact value, the sharpest containment test there is.
            let bbox: Vec<(f64, f64)> = generated
                .lo
                .iter()
                .zip(&generated.hi)
                .map(|(&l, &h)| {
                    let (a, b) = if round == 0 {
                        let a = frac();
                        (a, a)
                    } else {
                        let (a, b) = (frac(), frac());
                        (a.min(b), a.max(b))
                    };
                    (l + a * (h - l), l + b * (h - l))
                })
                .collect();
            for _ in 0..3 {
                let point: Vec<f64> = bbox.iter().map(|&(l, h)| l + frac() * (h - l)).collect();
                for tape in &tapes {
                    let Ok(bound) = tape.bound(&bbox) else { continue };
                    let Ok(val) = tape.eval(&point) else { continue };
                    let (mut lo_b, mut hi_b) = (bound.lo, bound.hi);
                    if let Some(inj) = self.opts.inject {
                        if n >= inj.min_states {
                            // Deliberately unsound narrowing (self-test).
                            lo_b += inj.bias;
                            hi_b -= inj.bias;
                        }
                    }
                    if val < lo_b - SLACK {
                        worst = Some((val, lo_b, lo_b - val));
                        break 'boxes;
                    }
                    if val > hi_b + SLACK {
                        worst = Some((val, hi_b, val - hi_b));
                        break 'boxes;
                    }
                }
            }
        }
        self.record_parametric(EnginePair::IntervalBoundContainsPoint, seed, n, worst, out);
    }

    fn record_parametric(
        &self,
        pair: EnginePair,
        seed: u64,
        n: usize,
        eval: PairEval,
        out: &mut SeedOutcome,
    ) {
        match eval {
            None => out.checks.push(CheckRecord {
                pair,
                family: None,
                seed,
                agreed: true,
                detail: format!("{n} states agree"),
            }),
            Some((lhs, rhs, delta)) => {
                counter!("oracle.diff.disagreements", 1);
                out.checks.push(CheckRecord {
                    pair,
                    family: None,
                    seed,
                    agreed: false,
                    detail: format!("lhs={lhs} rhs={rhs}"),
                });
                out.disagreements.push(Disagreement {
                    pair,
                    family: None,
                    seed,
                    num_states: n,
                    lhs,
                    rhs,
                    delta,
                    detail: format!(
                        "{} on parametric seed {seed}: |{lhs} - {rhs}| = {delta}",
                        pair.name()
                    ),
                    shrunk: None, // parametric models shrink by regenerating smaller seeds
                });
            }
        }
    }

    /// The reference engine: dense LU via the checker's `Direct` solver.
    fn direct_value(&self, d: &Dtmc, phi: &[bool], target: &[bool]) -> Option<f64> {
        let direct = CheckOptions {
            solver: LinearSolver::Direct,
            direct_solver_limit: usize::MAX,
            ..CheckOptions::default()
        };
        checker_dtmc::until_probabilities(d, phi, target, &direct)
            .ok()
            .map(|v| v[d.initial_state()])
    }
}

/// The `P=? [ F "goal" ]` query every robust pair brackets.
fn reach_query() -> Query {
    Query::Prob {
        opt: None,
        path: PathFormula::Eventually {
            sub: Box::new(StateFormula::Atom(GOAL_LABEL.to_owned())),
            bound: None,
        },
    }
}

/// `Some((lhs, rhs, |lhs − rhs|))` when the values differ beyond `tol`
/// (NaN on either side always disagrees).
fn disagreement(lhs: f64, rhs: f64, tol: f64) -> PairEval {
    let delta = (lhs - rhs).abs();
    if delta.is_nan() || delta > tol {
        Some((lhs, rhs, if delta.is_nan() { f64::INFINITY } else { delta }))
    } else {
        None
    }
}

/// Builds a mass-shifting repair template: for up to three states with at
/// least two successors of different reachability value, one bounded
/// parameter moves probability mass from the worst successor toward the
/// best. Returns `None` when the model offers no such freedom.
fn mass_shift_template(d: &Dtmc, phi: &[bool], target: &[bool]) -> Option<PerturbationTemplate> {
    let values = checker_dtmc::until_probabilities(
        d,
        phi,
        target,
        &CheckOptions {
            solver: LinearSolver::Direct,
            direct_solver_limit: usize::MAX,
            ..CheckOptions::default()
        },
    )
    .ok()?;
    let mut template = PerturbationTemplate::new();
    let mut added = 0;
    for s in 0..d.num_states() {
        if added == 3 {
            break;
        }
        let row: Vec<(usize, f64)> = d.successors(s).collect();
        if row.len() < 2 {
            continue;
        }
        let hi =
            row.iter().copied().max_by(|a, b| values[a.0].partial_cmp(&values[b.0]).unwrap())?;
        let lo =
            row.iter().copied().min_by(|a, b| values[a.0].partial_cmp(&values[b.0]).unwrap())?;
        if hi.0 == lo.0 || values[hi.0] - values[lo.0] < 1e-9 {
            continue;
        }
        // Headroom: keep the donor edge positive and the receiver below 1.
        let cap = (lo.1 * 0.9).min(1.0 - hi.1).max(0.0);
        if cap < 1e-6 {
            continue;
        }
        let p = template.parameter(&format!("shift{s}"), 0.0, cap);
        template.nudge(s, hi.0, p, 1.0).ok()?;
        template.nudge(s, lo.0, p, -1.0).ok()?;
        added += 1;
    }
    if added == 0 {
        None
    } else {
        Some(template)
    }
}

/// Number of transitions with positive probability.
fn count_edges(d: &Dtmc) -> usize {
    (0..d.num_states()).map(|s| d.successors(s).count()).sum()
}

/// Greedily shrinks `model` while `fails` stays true: halve the state
/// space, then drop low-probability edges, until neither reduction
/// preserves the failure. Bounded work: at most 64 accepted reductions.
pub fn shrink_model(model: &Dtmc, fails: &dyn Fn(&Dtmc) -> bool) -> Dtmc {
    let _span = span!("oracle.shrink", states = model.num_states());
    let mut cur = model.clone();
    for _ in 0..64 {
        let mut reduced = None;
        if cur.num_states() > 2 {
            if let Some(h) = halve(&cur) {
                if fails(&h) {
                    reduced = Some(h);
                }
            }
        }
        if reduced.is_none() {
            'edges: for s in 0..cur.num_states() {
                if cur.successors(s).count() > 1 {
                    if let Some(e) = drop_smallest_edge(&cur, s) {
                        if fails(&e) {
                            reduced = Some(e);
                            break 'edges;
                        }
                    }
                }
            }
        }
        match reduced {
            Some(m) => cur = m,
            None => break,
        }
    }
    cur
}

/// Keeps the first `⌈n/2⌉` states; transitions leaving the kept prefix are
/// redirected to the last kept state, which becomes an absorbing goal.
/// Always yields a valid chain (rows keep their total mass).
fn halve(d: &Dtmc) -> Option<Dtmc> {
    let n = d.num_states();
    let m = (n / 2).max(2);
    if m >= n {
        return None;
    }
    let sink = m - 1;
    let mut b = DtmcBuilder::new(m);
    b.initial_state(if d.initial_state() < m { d.initial_state() } else { 0 }).ok()?;
    for s in 0..m {
        if s == sink {
            continue; // forced absorbing below
        }
        for (t, p) in d.successors(s) {
            let t = if t < m { t } else { sink };
            b.transition(s, t, p).ok()?;
        }
        for label in d.labeling().labels_of(s) {
            b.label(s, label).ok()?;
        }
    }
    b.transition(sink, sink, 1.0).ok()?;
    b.label(sink, GOAL_LABEL).ok()?;
    b.build().ok()
}

/// Drops the smallest-probability edge of `state` and renormalizes the
/// remaining row (only valid when the state has at least two successors).
fn drop_smallest_edge(d: &Dtmc, state: usize) -> Option<Dtmc> {
    let mut row: Vec<(usize, f64)> = d.successors(state).collect();
    if row.len() < 2 {
        return None;
    }
    let (drop_idx, _) =
        row.iter().enumerate().min_by(|a, b| a.1 .1.partial_cmp(&b.1 .1).unwrap())?;
    row.remove(drop_idx);
    let total: f64 = row.iter().map(|&(_, p)| p).sum();
    if total <= 0.0 {
        return None;
    }
    for entry in &mut row {
        entry.1 /= total;
    }
    d.with_row(state, row).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_pairs_agree_on_a_fixed_seed() {
        let oracle = Oracle::new(OracleOptions { trajectories: 4_000, ..Default::default() });
        let out = oracle.run_seed(7, ModelFamily::all());
        assert!(out.disagreements.is_empty(), "unexpected disagreements: {:?}", out.disagreements);
        // Every family ran the nine model pairs, plus the three parametric
        // pairs.
        assert!(out.checks.len() >= ModelFamily::all().len() * 9);
    }

    #[test]
    fn injected_endpoint_flip_is_caught_by_robust_pair() {
        // The robust self-test contract: flipping the pessimistic endpoint
        // upward plants an unsound bracket, which the containment pair must
        // surface (the nominal chain is a member of its own Wilson ball).
        let inject = Injection { min_states: 5, bias: 1e-3 };
        let oracle = Oracle::new(OracleOptions {
            trajectories: 2_000,
            inject: Some(inject),
            ..Default::default()
        });
        let out = oracle.run_seed(3, &[ModelFamily::Layered]);
        let hit: Vec<_> = out
            .disagreements
            .iter()
            .filter(|d| d.pair == EnginePair::RobustContainsNominal)
            .collect();
        assert_eq!(hit.len(), 1, "the flipped endpoint must surface: {:?}", out.disagreements);
        assert!(hit[0].delta > 0.0);
        let shrunk = hit[0].shrunk.as_ref().expect("shrinker must make progress");
        assert!(shrunk.num_states >= inject.min_states);
        // Without injection the same seed passes clean on both robust pairs.
        let clean = Oracle::new(OracleOptions { trajectories: 2_000, ..Default::default() })
            .run_seed(3, &[ModelFamily::Layered]);
        assert!(clean.disagreements.is_empty(), "{:?}", clean.disagreements);
        for pair in [EnginePair::RobustContainsNominal, EnginePair::RobustVsSampled] {
            assert!(
                clean.checks.iter().any(|c| c.pair == pair && c.agreed),
                "{} must have run",
                pair.name()
            );
        }
    }

    #[test]
    fn injected_narrowed_bound_is_caught_by_containment_pair() {
        // The --inject self-test contract: planting a deliberately unsound
        // (narrowed) interval bound must surface as a containment
        // disagreement, proving the oracle can actually see such bugs.
        let inject = Injection { min_states: 5, bias: 1e-3 };
        let oracle = Oracle::new(OracleOptions {
            trajectories: 2_000,
            inject: Some(inject),
            ..Default::default()
        });
        let out = oracle.run_seed(3, &[]);
        let hit: Vec<_> = out
            .disagreements
            .iter()
            .filter(|d| d.pair == EnginePair::IntervalBoundContainsPoint)
            .collect();
        assert_eq!(hit.len(), 1, "the narrowed bound must surface: {:?}", out.disagreements);
        assert!(hit[0].delta > 0.0);
        // Without injection the same seed passes clean.
        let clean = Oracle::new(OracleOptions { trajectories: 2_000, ..Default::default() })
            .run_seed(3, &[]);
        assert!(clean.disagreements.is_empty(), "{:?}", clean.disagreements);
    }

    #[test]
    fn injected_bias_is_caught_and_shrunk() {
        let inject = Injection { min_states: 5, bias: 1e-3 };
        let oracle = Oracle::new(OracleOptions {
            trajectories: 2_000,
            inject: Some(inject),
            ..Default::default()
        });
        let out = oracle.run_seed(3, &[ModelFamily::Layered]);
        let hit: Vec<_> =
            out.disagreements.iter().filter(|d| d.pair == EnginePair::DenseVsGaussSeidel).collect();
        assert_eq!(hit.len(), 1, "the injected bias must surface exactly once");
        let d = hit[0];
        assert!(d.delta > 5e-4, "delta reflects the bias: {}", d.delta);
        let shrunk = d.shrunk.as_ref().expect("shrinker must make progress");
        assert!(shrunk.num_states < d.num_states);
        assert!(shrunk.num_states >= inject.min_states, "cannot shrink below the bias threshold");
    }

    #[test]
    fn shrinker_respects_predicate() {
        // Predicate: fails while the model has ≥ 6 states. The shrinker
        // must converge to exactly the smallest failing size it can reach.
        let d = ModelFamily::Dense.generate(11);
        let n0 = d.num_states();
        assert!(n0 >= 12);
        let minimal = shrink_model(&d, &|m| m.num_states() >= 6);
        assert!(minimal.num_states() >= 6);
        assert!(minimal.num_states() < n0);
        // Halving floors at ⌈n/2⌉ ≥ 6, so one more halving would go below.
        assert!(minimal.num_states() / 2 < 6);
    }

    #[test]
    fn engine_pair_names_round_trip() {
        for &p in EnginePair::all() {
            assert_eq!(EnginePair::parse(p.name()), Some(p));
        }
        assert_eq!(EnginePair::parse("nope"), None);
    }
}
