//! Conformance layer for the trusted-ml engines: seeded Monte Carlo
//! simulation, structured model generators, and a differential oracle.
//!
//! The paper's promise is *trust* — a repaired model provably satisfies its
//! specification — which is only as good as the engines doing the proving.
//! This crate institutionalizes independent verification:
//!
//! * [`sim`] — a seed-deterministic Monte Carlo simulator for DTMCs and
//!   MDPs-under-policy with statistical verdicts (Wilson/Hoeffding
//!   confidence intervals from [`stats`]);
//! * [`gen`] — structured random model generators shared by tests, the
//!   oracle and benchmarks (layered, absorbing, grid, dense, near-singular
//!   chains; branching MDPs; bounded-degree parametric chains);
//! * [`oracle`] — a differential harness comparing engine pairs across a
//!   seed sweep, with automatic shrinking of disagreeing models;
//! * [`report`] — JSONL reports (`tml-conformance/v1`) in the same
//!   line-framing as the telemetry layer's `tml-trace/v1`.
//!
//! The `conformance` binary fans the oracle out over a seed range; see
//! `DESIGN.md` §10 for the CI sweep policy and how to reproduce a reported
//! disagreement.
//!
//! # Example
//!
//! ```
//! use tml_conformance::gen::ModelFamily;
//! use tml_conformance::sim::{SimOptions, Simulator};
//! use tml_logic::parse_formula;
//!
//! let model = ModelFamily::Layered.generate(42);
//! let formula = parse_formula("P>=0.05 [ F \"goal\" ]").unwrap();
//! let sim = Simulator::new(SimOptions { trajectories: 2_000, ..Default::default() });
//! let check = sim.check_formula(&model, &formula).unwrap();
//! assert!(check.verdict().acceptable());
//! ```

pub mod gen;
pub mod oracle;
pub mod report;
pub mod sim;
pub mod stats;

/// Flat re-exports for test harnesses (`test-support` feature): the
/// generators that used to be copy-pasted into integration tests, plus the
/// simulator types those tests assert with.
#[cfg(feature = "test-support")]
pub mod test_support {
    pub use crate::gen::{
        absorbing_dtmc, dense_dtmc, grid_dtmc, layered_dtmc, near_singular_dtmc, parametric_dtmc,
        random_dtmc, random_mdp, GeneratedPdtmc, ModelFamily, GOAL_LABEL,
    };
    pub use crate::sim::{SimCheck, SimOptions, Simulator};
    pub use crate::stats::{hoeffding_half_width, Interval, Verdict};
}

use std::sync::Arc;

use tml_logic::StateFormula;
use tml_models::Dtmc;

use sim::{SimOptions, Simulator};
use stats::Verdict;

/// A simulation cross-check hook, structurally identical to
/// `tml_core::pipeline::SimulationCrossCheck` (the two crates are kept
/// dependency-free of each other; callers pass the hook by value).
pub type CrossCheckHook = Arc<dyn Fn(&Dtmc, &StateFormula) -> Option<bool> + Send + Sync>;

/// Builds a simulation cross-check hook for
/// `TmlPipeline::with_simulation_cross_check`: the returned closure
/// simulates the formula on a (repaired) model and reports whether the
/// simulation could *not* refute it at the stated confidence.
///
/// Returns `None` from the closure when the formula is outside the
/// simulable fragment (nested operators, missing reward structures) — the
/// pipeline records that as "cross-check unavailable", not as a failure.
///
/// Boundary-optimal repairs land exactly on the bound, so the acceptance
/// criterion is [`Verdict::acceptable`] (not-refuted), never
/// "corroborated".
pub fn simulation_cross_check(trajectories: u64, seed: u64) -> CrossCheckHook {
    Arc::new(move |model, formula| {
        let sim = Simulator::new(SimOptions { trajectories, seed, ..SimOptions::default() });
        match sim.check_formula(model, formula) {
            Ok(check) => Some(check.verdict() != Verdict::Refuted),
            Err(_) => None,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gen::ModelFamily;
    use tml_logic::parse_formula;

    #[test]
    fn cross_check_hook_accepts_true_properties_and_refutes_false_ones() {
        let model = ModelFamily::Absorbing.generate(1);
        let hook = simulation_cross_check(4_000, 99);
        let truthy = parse_formula("P>=0.000001 [ F \"goal\" ]").unwrap();
        assert_eq!(hook(&model, &truthy), Some(true));
        let falsy = parse_formula("P<=0.000001 [ F \"goal\" ]").unwrap();
        assert_eq!(hook(&model, &falsy), Some(false));
        let unsupported = parse_formula("P>=0.5 [ F (P>=0.5 [ X \"goal\" ]) ]").unwrap();
        assert_eq!(hook(&model, &unsupported), None);
    }
}
