//! JSONL conformance reports (`tml-conformance/v1`).
//!
//! The report mirrors the shape of the `tml-trace/v1` stream the
//! telemetry layer emits — one self-describing JSON object per line, a
//! `meta` line first, a `summary` line last — so the same line-oriented
//! tooling (`jq`, the schema checker's framing rules) applies:
//!
//! ```text
//! {"type":"meta","schema":"tml-conformance/v1","seeds":"0..64",...}
//! {"type":"check","pair":"dense-vs-gs","family":"layered","seed":3,"agreed":true,...}
//! {"type":"disagreement","pair":"dense-vs-gs","seed":9,"lhs":...,"rhs":...,"shrunk_states":5,...}
//! {"type":"summary","checks":384,"disagreements":0}
//! ```

use std::io::{self, Write};

use tml_telemetry::json::{self, write_f64, write_string, Value};

use crate::oracle::SeedOutcome;

/// Writes the `meta` header line.
///
/// # Errors
///
/// Propagates I/O errors from `out`.
pub fn write_meta(
    out: &mut dyn Write,
    seeds: &str,
    families: &[&str],
    trajectories: u64,
    injected: bool,
) -> io::Result<()> {
    let mut line = String::from("{\"type\":\"meta\",\"schema\":\"tml-conformance/v1\",\"seeds\":");
    write_string(&mut line, seeds);
    line.push_str(",\"families\":[");
    for (i, f) in families.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        write_string(&mut line, f);
    }
    line.push_str("],\"trajectories\":");
    line.push_str(&trajectories.to_string());
    line.push_str(",\"injected\":");
    line.push_str(if injected { "true" } else { "false" });
    line.push('}');
    writeln!(out, "{line}")
}

/// Writes every `check` and `disagreement` line for one seed.
///
/// # Errors
///
/// Propagates I/O errors from `out`.
pub fn write_seed(out: &mut dyn Write, outcome: &SeedOutcome) -> io::Result<()> {
    for check in &outcome.checks {
        let mut line = String::from("{\"type\":\"check\",\"pair\":");
        write_string(&mut line, check.pair.name());
        line.push_str(",\"family\":");
        match check.family {
            Some(f) => write_string(&mut line, f.name()),
            None => line.push_str("null"),
        }
        line.push_str(",\"seed\":");
        line.push_str(&check.seed.to_string());
        line.push_str(",\"agreed\":");
        line.push_str(if check.agreed { "true" } else { "false" });
        line.push_str(",\"detail\":");
        write_string(&mut line, &check.detail);
        line.push('}');
        writeln!(out, "{line}")?;
    }
    for d in &outcome.disagreements {
        let mut line = String::from("{\"type\":\"disagreement\",\"pair\":");
        write_string(&mut line, d.pair.name());
        line.push_str(",\"family\":");
        match d.family {
            Some(f) => write_string(&mut line, f.name()),
            None => line.push_str("null"),
        }
        line.push_str(",\"seed\":");
        line.push_str(&d.seed.to_string());
        line.push_str(",\"num_states\":");
        line.push_str(&d.num_states.to_string());
        line.push_str(",\"lhs\":");
        write_f64(&mut line, d.lhs);
        line.push_str(",\"rhs\":");
        write_f64(&mut line, d.rhs);
        line.push_str(",\"delta\":");
        write_f64(&mut line, d.delta);
        if let Some(s) = &d.shrunk {
            line.push_str(",\"shrunk_states\":");
            line.push_str(&s.num_states.to_string());
            line.push_str(",\"shrunk_edges\":");
            line.push_str(&s.num_edges.to_string());
            line.push_str(",\"shrunk_delta\":");
            write_f64(&mut line, s.delta);
        }
        line.push_str(",\"detail\":");
        write_string(&mut line, &d.detail);
        line.push('}');
        writeln!(out, "{line}")?;
    }
    Ok(())
}

/// Writes the trailing `summary` line.
///
/// # Errors
///
/// Propagates I/O errors from `out`.
pub fn write_summary(
    out: &mut dyn Write,
    checks: u64,
    disagreements: u64,
    elapsed_ms: u64,
) -> io::Result<()> {
    writeln!(
        out,
        "{{\"type\":\"summary\",\"checks\":{checks},\"disagreements\":{disagreements},\
         \"elapsed_ms\":{elapsed_ms}}}"
    )
}

/// Summary statistics recovered from a report (for tests and CI gating).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ReportSummary {
    /// Whether the meta line carried the expected schema identifier.
    pub schema_ok: bool,
    /// `check` lines seen.
    pub checks: u64,
    /// `disagreement` lines seen.
    pub disagreements: u64,
    /// Whether a trailing `summary` line was present and self-consistent.
    pub summary_ok: bool,
}

/// Parses a full JSONL report back into summary statistics, validating the
/// framing: `meta` first, `summary` last, every line self-describing.
///
/// # Errors
///
/// Returns a human-readable description of the first malformed line.
pub fn parse_report(text: &str) -> Result<ReportSummary, String> {
    let mut out = ReportSummary::default();
    let mut saw_summary = false;
    for (i, raw) in text.lines().enumerate() {
        if raw.trim().is_empty() {
            continue;
        }
        let value = json::parse(raw).map_err(|e| format!("line {}: {e}", i + 1))?;
        let obj = value.as_object().ok_or_else(|| format!("line {}: not an object", i + 1))?;
        let ty = obj
            .get("type")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("line {}: missing type", i + 1))?;
        if saw_summary {
            return Err(format!("line {}: content after summary", i + 1));
        }
        match ty {
            "meta" => {
                if i != 0 {
                    return Err(format!("line {}: meta must be the first line", i + 1));
                }
                out.schema_ok =
                    obj.get("schema").and_then(Value::as_str) == Some("tml-conformance/v1");
            }
            "check" => out.checks += 1,
            "disagreement" => out.disagreements += 1,
            "summary" => {
                saw_summary = true;
                let checks = obj.get("checks").and_then(Value::as_u64).unwrap_or(u64::MAX);
                let disagreements =
                    obj.get("disagreements").and_then(Value::as_u64).unwrap_or(u64::MAX);
                out.summary_ok = checks == out.checks && disagreements == out.disagreements;
            }
            other => return Err(format!("line {}: unknown record type {other:?}", i + 1)),
        }
    }
    if !saw_summary {
        return Err("report has no summary line".to_owned());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::ModelFamily;
    use crate::oracle::{Oracle, OracleOptions};

    #[test]
    fn report_round_trips() {
        let oracle = Oracle::new(OracleOptions { trajectories: 1_000, ..Default::default() });
        let outcome = oracle.run_seed(2, &[ModelFamily::Layered, ModelFamily::Absorbing]);
        let mut buf = Vec::new();
        write_meta(&mut buf, "2..3", &["layered", "absorbing"], 1_000, false).unwrap();
        write_seed(&mut buf, &outcome).unwrap();
        let checks = outcome.checks.len() as u64;
        let disagreements = outcome.disagreements.len() as u64;
        write_summary(&mut buf, checks, disagreements, 12).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let summary = parse_report(&text).unwrap();
        assert!(summary.schema_ok);
        assert!(summary.summary_ok);
        assert_eq!(summary.checks, checks);
        assert_eq!(summary.disagreements, disagreements);
    }

    #[test]
    fn parse_rejects_malformed_framing() {
        assert!(parse_report("").is_err(), "empty report has no summary");
        let no_meta = "{\"type\":\"summary\",\"checks\":0,\"disagreements\":0}\n";
        assert!(parse_report(no_meta).unwrap().checks == 0, "meta is recommended, not required");
        let trailing =
            "{\"type\":\"summary\",\"checks\":0,\"disagreements\":0}\n{\"type\":\"check\"}\n";
        assert!(parse_report(trailing).is_err(), "content after summary is rejected");
        assert!(parse_report("not json\n").is_err());
    }

    #[test]
    fn summary_consistency_is_checked() {
        let text = "{\"type\":\"check\",\"pair\":\"dense-vs-gs\",\"family\":null,\"seed\":0,\
                    \"agreed\":true,\"detail\":\"\"}\n\
                    {\"type\":\"summary\",\"checks\":5,\"disagreements\":0}\n";
        let summary = parse_report(text).unwrap();
        assert_eq!(summary.checks, 1);
        assert!(!summary.summary_ok, "summary line contradicts the body");
    }
}
