//! JSONL conformance reports (`tml-conformance/v1`).
//!
//! The report mirrors the shape of the `tml-trace/v1` stream the
//! telemetry layer emits — one self-describing JSON object per line, a
//! `meta` line first, a `summary` line last — so the same line-oriented
//! tooling (`jq`, the schema checker's framing rules) applies:
//!
//! ```text
//! {"type":"meta","schema":"tml-conformance/v1","seeds":"0..64",...}
//! {"type":"check","pair":"dense-vs-gs","family":"layered","seed":3,"agreed":true,...}
//! {"type":"disagreement","pair":"dense-vs-gs","seed":9,"lhs":...,"rhs":...,"shrunk_states":5,...}
//! {"type":"summary","checks":384,"disagreements":0}
//! ```

use std::io::{self, Write};

use tml_telemetry::json::{self, write_string, Value};
use tml_telemetry::jsonl::{schema, LineBuilder};

use crate::oracle::SeedOutcome;

/// Writes the `meta` header line.
///
/// # Errors
///
/// Propagates I/O errors from `out`.
pub fn write_meta(
    out: &mut dyn Write,
    seeds: &str,
    families: &[&str],
    trajectories: u64,
    injected: bool,
) -> io::Result<()> {
    let mut family_list = String::from("[");
    for (i, f) in families.iter().enumerate() {
        if i > 0 {
            family_list.push(',');
        }
        write_string(&mut family_list, f);
    }
    family_list.push(']');
    let line = LineBuilder::meta(schema::CONFORMANCE)
        .str("seeds", seeds)
        .raw("families", &family_list)
        .u64("trajectories", trajectories)
        .bool("injected", injected)
        .finish();
    writeln!(out, "{line}")
}

/// Writes every `check` and `disagreement` line for one seed.
///
/// # Errors
///
/// Propagates I/O errors from `out`.
pub fn write_seed(out: &mut dyn Write, outcome: &SeedOutcome) -> io::Result<()> {
    for check in &outcome.checks {
        let line = LineBuilder::record("check")
            .str("pair", check.pair.name())
            .opt_str("family", check.family.map(|f| f.name()))
            .u64("seed", check.seed)
            .bool("agreed", check.agreed)
            .str("detail", &check.detail)
            .finish();
        writeln!(out, "{line}")?;
    }
    for d in &outcome.disagreements {
        let mut line = LineBuilder::record("disagreement")
            .str("pair", d.pair.name())
            .opt_str("family", d.family.map(|f| f.name()))
            .u64("seed", d.seed)
            .u64("num_states", d.num_states as u64)
            .f64("lhs", d.lhs)
            .f64("rhs", d.rhs)
            .f64("delta", d.delta);
        if let Some(s) = &d.shrunk {
            line = line
                .u64("shrunk_states", s.num_states as u64)
                .u64("shrunk_edges", s.num_edges as u64)
                .f64("shrunk_delta", s.delta);
        }
        writeln!(out, "{}", line.str("detail", &d.detail).finish())?;
    }
    Ok(())
}

/// Writes the trailing `summary` line.
///
/// # Errors
///
/// Propagates I/O errors from `out`.
pub fn write_summary(
    out: &mut dyn Write,
    checks: u64,
    disagreements: u64,
    elapsed_ms: u64,
) -> io::Result<()> {
    let line = LineBuilder::record("summary")
        .u64("checks", checks)
        .u64("disagreements", disagreements)
        .u64("elapsed_ms", elapsed_ms)
        .finish();
    writeln!(out, "{line}")
}

/// Summary statistics recovered from a report (for tests and CI gating).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ReportSummary {
    /// Whether the meta line carried the expected schema identifier.
    pub schema_ok: bool,
    /// `check` lines seen.
    pub checks: u64,
    /// `disagreement` lines seen.
    pub disagreements: u64,
    /// Whether a trailing `summary` line was present and self-consistent.
    pub summary_ok: bool,
}

/// Parses a full JSONL report back into summary statistics, validating the
/// framing: `meta` first, `summary` last, every line self-describing.
///
/// # Errors
///
/// Returns a human-readable description of the first malformed line.
pub fn parse_report(text: &str) -> Result<ReportSummary, String> {
    let mut out = ReportSummary::default();
    let mut saw_summary = false;
    for (i, raw) in text.lines().enumerate() {
        if raw.trim().is_empty() {
            continue;
        }
        let value = json::parse(raw).map_err(|e| format!("line {}: {e}", i + 1))?;
        let obj = value.as_object().ok_or_else(|| format!("line {}: not an object", i + 1))?;
        let ty = obj
            .get("type")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("line {}: missing type", i + 1))?;
        if saw_summary {
            return Err(format!("line {}: content after summary", i + 1));
        }
        match ty {
            "meta" => {
                if i != 0 {
                    return Err(format!("line {}: meta must be the first line", i + 1));
                }
                out.schema_ok =
                    obj.get("schema").and_then(Value::as_str) == Some(schema::CONFORMANCE);
            }
            "check" => out.checks += 1,
            "disagreement" => out.disagreements += 1,
            "summary" => {
                saw_summary = true;
                let checks = obj.get("checks").and_then(Value::as_u64).unwrap_or(u64::MAX);
                let disagreements =
                    obj.get("disagreements").and_then(Value::as_u64).unwrap_or(u64::MAX);
                out.summary_ok = checks == out.checks && disagreements == out.disagreements;
            }
            other => return Err(format!("line {}: unknown record type {other:?}", i + 1)),
        }
    }
    if !saw_summary {
        return Err("report has no summary line".to_owned());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::ModelFamily;
    use crate::oracle::{Oracle, OracleOptions};

    #[test]
    fn report_round_trips() {
        let oracle = Oracle::new(OracleOptions { trajectories: 1_000, ..Default::default() });
        let outcome = oracle.run_seed(2, &[ModelFamily::Layered, ModelFamily::Absorbing]);
        let mut buf = Vec::new();
        write_meta(&mut buf, "2..3", &["layered", "absorbing"], 1_000, false).unwrap();
        write_seed(&mut buf, &outcome).unwrap();
        let checks = outcome.checks.len() as u64;
        let disagreements = outcome.disagreements.len() as u64;
        write_summary(&mut buf, checks, disagreements, 12).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let summary = parse_report(&text).unwrap();
        assert!(summary.schema_ok);
        assert!(summary.summary_ok);
        assert_eq!(summary.checks, checks);
        assert_eq!(summary.disagreements, disagreements);
    }

    #[test]
    fn parse_rejects_malformed_framing() {
        assert!(parse_report("").is_err(), "empty report has no summary");
        let no_meta = "{\"type\":\"summary\",\"checks\":0,\"disagreements\":0}\n";
        assert!(parse_report(no_meta).unwrap().checks == 0, "meta is recommended, not required");
        let trailing =
            "{\"type\":\"summary\",\"checks\":0,\"disagreements\":0}\n{\"type\":\"check\"}\n";
        assert!(parse_report(trailing).is_err(), "content after summary is rejected");
        assert!(parse_report("not json\n").is_err());
    }

    #[test]
    fn summary_consistency_is_checked() {
        let text = "{\"type\":\"check\",\"pair\":\"dense-vs-gs\",\"family\":null,\"seed\":0,\
                    \"agreed\":true,\"detail\":\"\"}\n\
                    {\"type\":\"summary\",\"checks\":5,\"disagreements\":0}\n";
        let summary = parse_report(text).unwrap();
        assert_eq!(summary.checks, 1);
        assert!(!summary.summary_ok, "summary line contradicts the body");
    }
}
