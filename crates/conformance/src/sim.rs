//! Seed-deterministic Monte Carlo trajectory simulation with statistical
//! verdicts.
//!
//! The simulator is the *independent* verification backend of the
//! conformance layer: it shares no numeric code with the checker (no
//! linear solves, no value iteration) — only the model representation and
//! the graph-theoretic prob0/prob1 classification, which lets most
//! trajectories reach a **definitive** outcome instead of an inconclusive
//! truncation:
//!
//! * a trajectory *hits* as soon as the path formula is decided positively;
//! * it *misses* definitively when it can no longer satisfy the formula
//!   (bounded horizon exceeded, or an `P(…)=0` state entered);
//! * only trajectories truncated at `max_steps` in a genuinely undecided
//!   state count as *inconclusive*.
//!
//! The reported [`Interval`] brackets the truth regardless of
//! inconclusives: its lower limit is the Wilson bound counting only hits,
//! its upper limit counts hits + inconclusives. Reward estimates use
//! Hoeffding intervals over the bounded per-trajectory accumulation.
//!
//! Trajectories run in fixed-size batches, each batch seeded from
//! `(seed, batch_index)` by a SplitMix-style mix, and batches are mapped in
//! parallel with the vendored scope-parallelism. Results are **bitwise
//! identical** for any thread count, because the batch decomposition — not
//! the schedule — determines every random draw.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use tml_checker::{Budget, Diagnostics, Exhaustion};
use tml_logic::{CmpOp, PathFormula, RewardKind, StateFormula};
use tml_models::{graph, Dtmc, Mdp, StochasticPolicy};
use tml_telemetry::{counter, span};

use crate::stats::{hoeffding_interval, wilson_interval, Interval, Verdict};

/// Why a simulation request could not be answered.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The formula contains a nested probabilistic/reward operator; the
    /// simulator only evaluates propositional state subformulas so that it
    /// stays independent of the numeric engines.
    NestedOperator,
    /// The named reward structure does not exist on the model.
    UnknownRewardStructure(String),
    /// The formula shape has no simulation semantics here (e.g. a
    /// top-level propositional formula with no quantitative operator).
    Unsupported(&'static str),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::NestedOperator => {
                write!(f, "nested P/R operators are outside the simulable fragment")
            }
            SimError::UnknownRewardStructure(name) => {
                write!(f, "unknown reward structure {name:?}")
            }
            SimError::Unsupported(what) => write!(f, "cannot simulate {what}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Simulation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimOptions {
    /// Number of trajectories to sample.
    pub trajectories: u64,
    /// Hard per-trajectory step cap; undecided trajectories at the cap
    /// count as inconclusive (they widen the interval, never bias it).
    pub max_steps: usize,
    /// `α = 1 − confidence` for the reported intervals. The default
    /// (`1e-9`) makes a CI-vs-exact disagreement evidence of a bug.
    pub alpha: f64,
    /// Trajectories per batch (the parallel work unit and the randomness
    /// granule: estimates depend on the batch size, never on thread count).
    pub batch_size: u64,
    /// Base seed; batch `i` draws from a generator seeded by `(seed, i)`.
    pub seed: u64,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            trajectories: 10_000,
            max_steps: 10_000,
            alpha: 1e-9,
            batch_size: 512,
            seed: 0,
        }
    }
}

/// A reachability (Bernoulli) estimate.
#[derive(Debug, Clone)]
pub struct ReachEstimate {
    /// Trajectories that satisfied the path formula.
    pub hits: u64,
    /// Trajectories that definitively violated it.
    pub misses: u64,
    /// Trajectories truncated while still undecided.
    pub inconclusive: u64,
    /// Total trajectories sampled (may be short of the request when the
    /// budget ran out; see `diagnostics.exhausted`).
    pub trajectories: u64,
    /// Confidence interval bracketing the true probability: Wilson lower
    /// limit on hits, Wilson upper limit on hits + inconclusives.
    pub interval: Interval,
    /// Spend/degradation record (each trajectory counts one evaluation).
    pub diagnostics: Diagnostics,
}

impl ReachEstimate {
    /// Statistical verdict for `P ⋈ bound [ψ]`.
    pub fn verdict(&self, op: CmpOp, bound: f64) -> Verdict {
        Verdict::classify(op, &self.interval, bound)
    }
}

/// A reward (bounded-mean) estimate.
#[derive(Debug, Clone)]
pub struct RewardEstimate {
    /// Empirical mean of the per-trajectory accumulated reward.
    pub mean: f64,
    /// Hoeffding interval at the configured confidence.
    pub interval: Interval,
    /// Trajectories that reached the target (reach-reward only).
    pub completed: u64,
    /// Trajectories truncated before reaching the target; their partial
    /// accumulation enters the mean, so a non-zero count biases the
    /// estimate low and the verdict should be treated as inconclusive.
    pub truncated: u64,
    /// Total trajectories sampled.
    pub trajectories: u64,
    /// Spend/degradation record.
    pub diagnostics: Diagnostics,
}

impl RewardEstimate {
    /// Statistical verdict for `R ⋈ bound [·]`; truncated trajectories
    /// demote `Corroborated` to `Consistent` (the mean is biased low).
    pub fn verdict(&self, op: CmpOp, bound: f64) -> Verdict {
        let v = Verdict::classify(op, &self.interval, bound);
        if self.truncated > 0 && v == Verdict::Corroborated && matches!(op, CmpOp::Le | CmpOp::Lt) {
            Verdict::Consistent
        } else {
            v
        }
    }
}

/// Result of simulating a top-level PCTL operator: the quantitative
/// estimate plus the verdict against the formula's bound.
#[derive(Debug, Clone)]
pub enum SimCheck {
    /// A `P ⋈ b [ψ]` check.
    Probability {
        /// The estimate.
        estimate: ReachEstimate,
        /// The verdict against the bound.
        verdict: Verdict,
        /// The bound from the formula.
        bound: f64,
    },
    /// An `R ⋈ c [·]` check.
    Reward {
        /// The estimate.
        estimate: RewardEstimate,
        /// The verdict against the bound.
        verdict: Verdict,
        /// The bound from the formula.
        bound: f64,
    },
}

impl SimCheck {
    /// The verdict of the check.
    pub fn verdict(&self) -> Verdict {
        match self {
            SimCheck::Probability { verdict, .. } | SimCheck::Reward { verdict, .. } => *verdict,
        }
    }

    /// The interval of the underlying estimate.
    pub fn interval(&self) -> &Interval {
        match self {
            SimCheck::Probability { estimate, .. } => &estimate.interval,
            SimCheck::Reward { estimate, .. } => &estimate.interval,
        }
    }
}

/// One trajectory's outcome against a path property.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Outcome {
    Hit,
    Miss,
    Undecided,
}

/// A step source the simulator can walk: a DTMC, or an MDP resolved by a
/// policy. Implementations must be `Sync` so batches parallelize.
trait Walk: Sync {
    fn initial(&self) -> usize;
    fn step(&self, rng: &mut StdRng, state: usize) -> usize;
    fn state_reward(&self, structure: &str, state: usize) -> Option<f64>;
}

impl Walk for Dtmc {
    fn initial(&self) -> usize {
        self.initial_state()
    }
    fn step(&self, rng: &mut StdRng, state: usize) -> usize {
        self.sample_successor(rng, state)
    }
    fn state_reward(&self, structure: &str, state: usize) -> Option<f64> {
        self.reward_structure(structure).ok().map(|r| r.state_reward(state))
    }
}

/// An MDP with its nondeterminism resolved by a stochastic memoryless
/// policy — the "MDP under policy" simulation target.
struct PolicyWalk<'a> {
    mdp: &'a Mdp,
    policy: &'a StochasticPolicy,
}

impl Walk for PolicyWalk<'_> {
    fn initial(&self) -> usize {
        self.mdp.initial_state()
    }
    fn step(&self, rng: &mut StdRng, state: usize) -> usize {
        let c = self.policy.sample(rng, state);
        let choice = &self.mdp.choices(state)[c];
        let mut u: f64 = rng.random_range(0.0..1.0);
        for &(succ, p) in choice.transitions.iter() {
            if u < p {
                return succ;
            }
            u -= p;
        }
        choice.transitions.last().map(|&(s, _)| s).unwrap_or(state)
    }
    fn state_reward(&self, structure: &str, state: usize) -> Option<f64> {
        self.mdp.reward_structure(structure).ok().map(|r| r.state_reward(state))
    }
}

/// Derives the deterministic per-batch seed: a SplitMix64-style finalizer
/// over `(seed, batch)`, so batches are decorrelated but reproducible.
fn batch_seed(seed: u64, batch: u64) -> u64 {
    let mut z =
        seed ^ batch.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(0x1234_5678_9ABC_DEF1);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The compiled form of a simulable path property: per-state masks plus the
/// horizon and the definitive-failure classification.
struct PathSpec {
    /// States satisfying the left ("safe") operand; `Next` ignores it.
    lhs: Vec<bool>,
    /// States satisfying the right ("target") operand.
    rhs: Vec<bool>,
    /// Step bound (`None` = unbounded, truncated at `max_steps`).
    bound: Option<u64>,
    /// For unbounded properties: states from which the formula can no
    /// longer be satisfied (entering one decides the trajectory negatively).
    dead: Vec<bool>,
    /// For unbounded `G`: states from which the formula is already decided
    /// positively (never leaves the invariant).
    alive: Vec<bool>,
    kind: PathKind,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum PathKind {
    Next,
    Until,
    Globally,
}

/// Evaluates a propositional state formula to a mask; rejects nested
/// quantitative operators (the simulator must stay engine-independent).
fn propositional_mask(
    model_states: usize,
    labels: &tml_models::Labeling,
    f: &StateFormula,
) -> Result<Vec<bool>, SimError> {
    Ok(match f {
        StateFormula::True => vec![true; model_states],
        StateFormula::False => vec![false; model_states],
        StateFormula::Atom(a) => labels.mask(a),
        StateFormula::Not(g) => {
            propositional_mask(model_states, labels, g)?.into_iter().map(|b| !b).collect()
        }
        StateFormula::And(a, b) => zip(
            propositional_mask(model_states, labels, a)?,
            propositional_mask(model_states, labels, b)?,
            |x, y| x && y,
        ),
        StateFormula::Or(a, b) => zip(
            propositional_mask(model_states, labels, a)?,
            propositional_mask(model_states, labels, b)?,
            |x, y| x || y,
        ),
        StateFormula::Implies(a, b) => zip(
            propositional_mask(model_states, labels, a)?,
            propositional_mask(model_states, labels, b)?,
            |x, y| !x || y,
        ),
        StateFormula::Prob { .. } | StateFormula::Reward { .. } => {
            return Err(SimError::NestedOperator)
        }
    })
}

fn zip(a: Vec<bool>, b: Vec<bool>, f: impl Fn(bool, bool) -> bool) -> Vec<bool> {
    a.into_iter().zip(b).map(|(x, y)| f(x, y)).collect()
}

/// The Monte Carlo simulator: construct with [`SimOptions`], optionally
/// attach a [`Budget`], then estimate reachability probabilities and
/// expected rewards on DTMCs or MDPs-under-policy.
#[derive(Debug, Clone, Default)]
pub struct Simulator {
    opts: SimOptions,
    budget: Budget,
}

impl Simulator {
    /// A simulator with the given options and no budget.
    pub fn new(opts: SimOptions) -> Self {
        Simulator { opts, budget: Budget::unlimited() }
    }

    /// Attaches an execution budget: each trajectory charges one
    /// evaluation, and deadline/cancellation are polled between batches.
    /// On exhaustion the estimate is computed from the trajectories
    /// sampled so far and `diagnostics.exhausted` is set.
    #[must_use]
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// The configured options.
    pub fn options(&self) -> &SimOptions {
        &self.opts
    }

    fn path_spec(&self, d: &Dtmc, path: &PathFormula) -> Result<PathSpec, SimError> {
        let n = d.num_states();
        let labels = d.labeling();
        let (lhs, rhs, bound, kind) = match path {
            PathFormula::Next(sub) => {
                (vec![true; n], propositional_mask(n, labels, sub)?, Some(1), PathKind::Next)
            }
            PathFormula::Until { lhs, rhs, bound } => (
                propositional_mask(n, labels, lhs)?,
                propositional_mask(n, labels, rhs)?,
                *bound,
                PathKind::Until,
            ),
            PathFormula::Eventually { sub, bound } => {
                (vec![true; n], propositional_mask(n, labels, sub)?, *bound, PathKind::Until)
            }
            PathFormula::Globally { sub, bound } => (
                propositional_mask(n, labels, sub)?,
                propositional_mask(n, labels, sub)?,
                *bound,
                PathKind::Globally,
            ),
        };
        // Definitive classification for unbounded walks: for `U`, a state
        // with P(lhs U rhs) = 0 decides the trajectory negatively; for `G`,
        // a state that almost-never leaves the invariant decides positively.
        let (dead, alive) = if bound.is_none() {
            match kind {
                PathKind::Until => (graph::prob0(d, &lhs, &rhs), vec![false; n]),
                PathKind::Globally => {
                    let not_sub: Vec<bool> = rhs.iter().map(|&b| !b).collect();
                    let phi = vec![true; n];
                    // P(G sub) from s is 1 iff P(F ¬sub) = 0.
                    (not_sub.clone(), graph::prob0(d, &phi, &not_sub))
                }
                PathKind::Next => (vec![false; n], vec![false; n]),
            }
        } else {
            (vec![false; n], vec![false; n])
        };
        Ok(PathSpec { lhs, rhs, bound, dead, alive, kind })
    }

    /// Walks one trajectory against a compiled path spec.
    fn walk_one(&self, w: &impl Walk, spec: &PathSpec, rng: &mut StdRng) -> Outcome {
        let horizon = spec.bound.map(|b| b as usize).unwrap_or(self.opts.max_steps);
        let mut s = w.initial();
        match spec.kind {
            PathKind::Next => {
                let s1 = w.step(rng, s);
                if spec.rhs[s1] {
                    Outcome::Hit
                } else {
                    Outcome::Miss
                }
            }
            PathKind::Until => {
                for step in 0..=horizon {
                    if spec.rhs[s] {
                        return Outcome::Hit;
                    }
                    if !spec.lhs[s] || spec.dead[s] {
                        return Outcome::Miss;
                    }
                    if step == horizon {
                        break;
                    }
                    s = w.step(rng, s);
                }
                if spec.bound.is_some() {
                    Outcome::Miss // horizon exhausted: definitively not "until within k"
                } else {
                    Outcome::Undecided
                }
            }
            PathKind::Globally => {
                for step in 0..=horizon {
                    if !spec.rhs[s] {
                        return Outcome::Miss;
                    }
                    if spec.alive[s] {
                        return Outcome::Hit;
                    }
                    if step == horizon {
                        break;
                    }
                    s = w.step(rng, s);
                }
                if spec.bound.is_some() {
                    Outcome::Hit // survived the whole bounded window
                } else {
                    Outcome::Undecided
                }
            }
        }
    }

    /// Shared batched driver for Bernoulli estimation.
    fn run_reach(&self, w: &impl Walk, spec: &PathSpec) -> ReachEstimate {
        let _span = span!("sim.reach", trajectories = self.opts.trajectories);
        let start = std::time::Instant::now();
        let mut diag = Diagnostics::new();
        let batch = self.opts.batch_size.max(1);
        let batches = self.opts.trajectories.div_ceil(batch);
        // Pre-check the budget so a spent budget yields zero work (but
        // still a well-formed, maximally wide estimate).
        let results: Vec<(u64, u64, u64, u64, Option<Exhaustion>)> = {
            use rayon::prelude::*;
            (0..batches as usize)
                .into_par_iter()
                .map(|bi| {
                    let _bspan = span!("sim.batch");
                    let bi = bi as u64;
                    let todo = batch.min(self.opts.trajectories - bi * batch);
                    let mut rng = StdRng::seed_from_u64(batch_seed(self.opts.seed, bi));
                    let (mut h, mut m, mut u, mut done) = (0u64, 0u64, 0u64, 0u64);
                    let mut stopped = None;
                    for _ in 0..todo {
                        if let Some(cause) = self.budget.charge(1) {
                            stopped = Some(cause);
                            break;
                        }
                        match self.walk_one(w, spec, &mut rng) {
                            Outcome::Hit => h += 1,
                            Outcome::Miss => m += 1,
                            Outcome::Undecided => u += 1,
                        }
                        done += 1;
                    }
                    counter!("sim.batch.trajectories", done);
                    (h, m, u, done, stopped)
                })
                .collect()
        };
        let (mut hits, mut misses, mut inconclusive, mut total) = (0, 0, 0, 0);
        for (h, m, u, done, stopped) in results {
            hits += h;
            misses += m;
            inconclusive += u;
            total += done;
            if let Some(cause) = stopped {
                diag.mark_exhausted(cause);
            }
        }
        diag.evaluations = total;
        diag.elapsed = start.elapsed();
        diag.telemetry.incr("sim.batch.trajectories", total);
        let interval = if total == 0 {
            Interval { estimate: f64::NAN, low: 0.0, high: 1.0 }
        } else {
            let low = wilson_interval(hits, total, self.opts.alpha).low;
            let high = wilson_interval(hits + inconclusive, total, self.opts.alpha).high;
            Interval { estimate: hits as f64 / total as f64, low, high }
        };
        ReachEstimate {
            hits,
            misses,
            inconclusive,
            trajectories: total,
            interval,
            diagnostics: diag,
        }
    }

    /// Shared batched driver for bounded-accumulation estimation.
    /// `horizon` caps steps; `until` (if given) stops accumulation at the
    /// target. Returns `(sum, completed, truncated, total, diag, cap)`.
    fn run_reward(
        &self,
        w: &impl Walk,
        structure: &str,
        rmax: f64,
        horizon: usize,
        until: Option<&[bool]>,
    ) -> RewardEstimate {
        let _span = span!("sim.reward", trajectories = self.opts.trajectories);
        let start = std::time::Instant::now();
        let mut diag = Diagnostics::new();
        let batch = self.opts.batch_size.max(1);
        let batches = self.opts.trajectories.div_ceil(batch);
        let cap = rmax * horizon as f64;
        let results: Vec<(f64, u64, u64, u64, Option<Exhaustion>)> = {
            use rayon::prelude::*;
            (0..batches as usize)
                .into_par_iter()
                .map(|bi| {
                    let _bspan = span!("sim.batch");
                    let bi = bi as u64;
                    let todo = batch.min(self.opts.trajectories - bi * batch);
                    let mut rng = StdRng::seed_from_u64(batch_seed(self.opts.seed, bi));
                    let (mut sum, mut completed, mut truncated, mut done) = (0.0, 0u64, 0u64, 0u64);
                    let mut stopped = None;
                    for _ in 0..todo {
                        if let Some(cause) = self.budget.charge(1) {
                            stopped = Some(cause);
                            break;
                        }
                        let mut s = w.initial();
                        let mut acc = 0.0;
                        let mut finished = until.is_none();
                        for _ in 0..horizon {
                            if let Some(target) = until {
                                if target[s] {
                                    finished = true;
                                    break;
                                }
                            }
                            acc += w.state_reward(structure, s).unwrap_or(0.0);
                            s = w.step(&mut rng, s);
                        }
                        if let Some(target) = until {
                            if !finished && target[s] {
                                finished = true;
                            }
                        }
                        sum += acc;
                        if finished {
                            completed += 1;
                        } else {
                            truncated += 1;
                        }
                        done += 1;
                    }
                    counter!("sim.batch.trajectories", done);
                    (sum, completed, truncated, done, stopped)
                })
                .collect()
        };
        let (mut sum, mut completed, mut truncated, mut total) = (0.0, 0, 0, 0);
        for (s, c, t, d, stopped) in results {
            sum += s;
            completed += c;
            truncated += t;
            total += d;
            if let Some(cause) = stopped {
                diag.mark_exhausted(cause);
            }
        }
        diag.evaluations = total;
        diag.elapsed = start.elapsed();
        diag.telemetry.incr("sim.batch.trajectories", total);
        let (mean, interval) = if total == 0 {
            (f64::NAN, Interval { estimate: f64::NAN, low: 0.0, high: cap })
        } else {
            let mean = sum / total as f64;
            (mean, hoeffding_interval(mean, total, 0.0, cap, self.opts.alpha))
        };
        RewardEstimate {
            mean,
            interval,
            completed,
            truncated,
            trajectories: total,
            diagnostics: diag,
        }
    }

    /// Estimates `P(ψ)` from the initial state of a DTMC.
    ///
    /// # Errors
    ///
    /// [`SimError::NestedOperator`] when `ψ` contains nested `P`/`R`.
    pub fn path_probability(
        &self,
        d: &Dtmc,
        path: &PathFormula,
    ) -> Result<ReachEstimate, SimError> {
        let spec = self.path_spec(d, path)?;
        Ok(self.run_reach(d, &spec))
    }

    /// Estimates `P(ψ)` from the initial state of an MDP whose choices are
    /// resolved by `policy` (trajectories sample the policy natively — the
    /// induced chain is never constructed, keeping this an independent
    /// oracle for [`StochasticPolicy::induce`]).
    ///
    /// # Errors
    ///
    /// [`SimError::NestedOperator`] when `ψ` contains nested `P`/`R`.
    pub fn path_probability_mdp(
        &self,
        mdp: &Mdp,
        policy: &StochasticPolicy,
        path: &PathFormula,
    ) -> Result<ReachEstimate, SimError> {
        // Masks and prob0 classification are computed on the induced chain
        // (the only sound classifier for a fixed policy), but trajectories
        // walk the MDP directly.
        let induced = policy
            .induce(mdp)
            .map_err(|_| SimError::Unsupported("policy does not match the MDP shape"))?;
        let spec = self.path_spec(&induced, path)?;
        let walk = PolicyWalk { mdp, policy };
        Ok(self.run_reach(&walk, &spec))
    }

    /// Estimates the expected reward accumulated until first reaching
    /// `target` (PRISM `R[F target]` semantics: the target state's reward
    /// is not counted).
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownRewardStructure`] for a bad structure name.
    pub fn reach_reward(
        &self,
        d: &Dtmc,
        structure: &str,
        target: &[bool],
    ) -> Result<RewardEstimate, SimError> {
        let rmax = max_state_reward(d, structure)?;
        Ok(self.run_reward(d, structure, rmax, self.opts.max_steps, Some(target)))
    }

    /// Estimates the expected reward accumulated over the first `k` steps
    /// (PRISM `R[C<=k]` semantics).
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownRewardStructure`] for a bad structure name.
    pub fn cumulative_reward(
        &self,
        d: &Dtmc,
        structure: &str,
        k: u64,
    ) -> Result<RewardEstimate, SimError> {
        let rmax = max_state_reward(d, structure)?;
        Ok(self.run_reward(d, structure, rmax, k as usize, None))
    }

    /// Simulates a top-level `P ⋈ b [ψ]` or `R ⋈ c [·]` formula on a DTMC,
    /// returning the estimate and the statistical verdict against the
    /// bound.
    ///
    /// # Errors
    ///
    /// * [`SimError::Unsupported`] for formulas without a top-level
    ///   quantitative operator.
    /// * [`SimError::NestedOperator`] for nested quantitative operators.
    /// * [`SimError::UnknownRewardStructure`] for bad structure names.
    pub fn check_formula(&self, d: &Dtmc, formula: &StateFormula) -> Result<SimCheck, SimError> {
        match formula {
            StateFormula::Prob { op, bound, path, .. } => {
                let estimate = self.path_probability(d, path)?;
                let verdict = estimate.verdict(*op, *bound);
                Ok(SimCheck::Probability { estimate, verdict, bound: *bound })
            }
            StateFormula::Reward { structure, op, bound, kind, .. } => {
                let name = match structure {
                    Some(s) => s.clone(),
                    None => d
                        .default_reward_structure()
                        .map(|r| r.name().to_owned())
                        .ok_or(SimError::Unsupported("reward query without a reward structure"))?,
                };
                let estimate = match kind {
                    RewardKind::Reach(sub) => {
                        let target = propositional_mask(d.num_states(), d.labeling(), sub)?;
                        self.reach_reward(d, &name, &target)?
                    }
                    RewardKind::Cumulative(k) => self.cumulative_reward(d, &name, *k)?,
                };
                let verdict = estimate.verdict(*op, *bound);
                Ok(SimCheck::Reward { estimate, verdict, bound: *bound })
            }
            _ => Err(SimError::Unsupported("a formula without a top-level P/R operator")),
        }
    }
}

fn max_state_reward(d: &Dtmc, structure: &str) -> Result<f64, SimError> {
    let rs = d
        .reward_structure(structure)
        .map_err(|_| SimError::UnknownRewardStructure(structure.to_owned()))?;
    let mut rmax = 0.0f64;
    for s in 0..d.num_states() {
        rmax = rmax.max(rs.state_reward(s));
    }
    Ok(rmax.max(f64::MIN_POSITIVE))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tml_logic::parse_formula;
    use tml_models::DtmcBuilder;

    fn two_state(p: f64) -> Dtmc {
        let mut b = DtmcBuilder::new(3);
        b.transition(0, 1, p).unwrap();
        b.transition(0, 2, 1.0 - p).unwrap();
        b.transition(1, 1, 1.0).unwrap();
        b.transition(2, 2, 1.0).unwrap();
        b.label(1, "goal").unwrap();
        b.state_reward("cost", 0, 2.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn reachability_interval_brackets_truth() {
        let d = two_state(0.7);
        let sim = Simulator::new(SimOptions { trajectories: 20_000, ..Default::default() });
        let phi = parse_formula("P>=0.5 [ F \"goal\" ]").unwrap();
        let StateFormula::Prob { path, .. } = &phi else { unreachable!() };
        let est = sim.path_probability(&d, path).unwrap();
        assert_eq!(est.trajectories, 20_000);
        assert_eq!(est.inconclusive, 0, "prob0 classification decides every trajectory");
        assert!(est.interval.contains(0.7), "interval {:?}", est.interval);
        assert_eq!(est.verdict(CmpOp::Ge, 0.5), Verdict::Corroborated);
        assert_eq!(est.verdict(CmpOp::Ge, 0.99), Verdict::Refuted);
    }

    #[test]
    fn deterministic_across_runs_and_thread_counts() {
        let d = two_state(0.4);
        let phi = parse_formula("P>=0.5 [ F \"goal\" ]").unwrap();
        let StateFormula::Prob { path, .. } = &phi else { unreachable!() };
        let opts = SimOptions { trajectories: 5_000, batch_size: 64, ..Default::default() };
        let a = Simulator::new(opts).path_probability(&d, path).unwrap();
        let b = Simulator::new(opts).path_probability(&d, path).unwrap();
        assert_eq!(a.hits, b.hits);
        assert_eq!(a.interval, b.interval);
    }

    #[test]
    fn bounded_until_and_next_and_globally() {
        let d = two_state(0.5);
        let sim = Simulator::new(SimOptions { trajectories: 4_000, ..Default::default() });
        let f = parse_formula("P>=0.4 [ X \"goal\" ]").unwrap();
        let StateFormula::Prob { path, .. } = &f else { unreachable!() };
        let est = sim.path_probability(&d, path).unwrap();
        assert!(est.interval.contains(0.5), "{:?}", est.interval);

        let f = parse_formula("P>=0.4 [ F<=1 \"goal\" ]").unwrap();
        let StateFormula::Prob { path, .. } = &f else { unreachable!() };
        let est = sim.path_probability(&d, path).unwrap();
        assert!(est.interval.contains(0.5), "{:?}", est.interval);

        // G !goal holds exactly when the first step goes to the sink.
        let f = parse_formula("P>=0.4 [ G !\"goal\" ]").unwrap();
        let StateFormula::Prob { path, .. } = &f else { unreachable!() };
        let est = sim.path_probability(&d, path).unwrap();
        assert_eq!(est.inconclusive, 0, "alive/dead classification decides G");
        assert!(est.interval.contains(0.5), "{:?}", est.interval);
    }

    #[test]
    fn reward_estimate_matches_geometric_mean() {
        // From state 0 with self-less chain: E[visits of 0] = 1, cost 2.
        let d = two_state(0.3);
        let sim = Simulator::new(SimOptions { trajectories: 5_000, ..Default::default() });
        let f = parse_formula("R{\"cost\"}<=3 [ C<=10 ]").unwrap();
        let check = sim.check_formula(&d, &f).unwrap();
        let SimCheck::Reward { estimate, verdict, .. } = &check else { unreachable!() };
        assert!((estimate.mean - 2.0).abs() < 1e-9, "cost accrues exactly once: {}", estimate.mean);
        assert_eq!(*verdict, Verdict::Corroborated);
    }

    #[test]
    fn budget_exhaustion_is_best_effort() {
        let d = two_state(0.5);
        let sim = Simulator::new(SimOptions { trajectories: 10_000, ..Default::default() })
            .with_budget(Budget::unlimited().with_max_evaluations(100));
        let f = parse_formula("P>=0.1 [ F \"goal\" ]").unwrap();
        let StateFormula::Prob { path, .. } = &f else { unreachable!() };
        let est = sim.path_probability(&d, path).unwrap();
        assert!(est.trajectories <= 100);
        assert_eq!(est.diagnostics.exhausted, Some(Exhaustion::Evaluations));
        assert!(est.diagnostics.degraded());
    }

    #[test]
    fn nested_operators_are_rejected() {
        let d = two_state(0.5);
        let sim = Simulator::new(SimOptions::default());
        let f = parse_formula("P>=0.5 [ F (P>=0.5 [ X \"goal\" ]) ]").unwrap();
        let StateFormula::Prob { path, .. } = &f else { unreachable!() };
        assert_eq!(sim.path_probability(&d, path).unwrap_err(), SimError::NestedOperator);
    }
}
