//! Statistical verdicts for the conformance simulator.
//!
//! The interval constructions themselves (Wilson score for Bernoulli
//! proportions, Hoeffding for bounded means) live in
//! [`tml_numerics::stats`] so that `tml-models::learn` can calibrate
//! interval DTMCs from trace counts without depending on this harness;
//! they are re-exported here for the simulator's callers. The oracle
//! harness runs with a very small `α` (default `1e-9`) so that a
//! disagreement between an exact engine and a simulation CI is evidence
//! of a bug, not statistical noise.

pub use tml_numerics::stats::{
    hoeffding_half_width, hoeffding_interval, normal_quantile, wilson_interval,
    wilson_interval_weighted, Interval,
};

/// How a confidence interval relates to a bounded requirement `value ⋈ b`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The whole interval lies on the satisfying side of the bound.
    Corroborated,
    /// The interval straddles the bound: the sample is consistent with the
    /// requirement but cannot confirm it (typical for boundary-optimal
    /// repairs, which land exactly on the bound).
    Consistent,
    /// The whole interval lies on the violating side: the simulation
    /// *refutes* the requirement at the stated confidence.
    Refuted,
}

impl Verdict {
    /// Classifies `interval ⋈ bound` for the comparison `op`.
    pub fn classify(op: tml_logic::CmpOp, interval: &Interval, bound: f64) -> Verdict {
        // Both endpoints satisfying ⇒ the whole interval does (the bound
        // predicate is monotone in the value for every comparison).
        let sat_low = op.test(interval.low, bound);
        let sat_high = op.test(interval.high, bound);
        match (sat_low, sat_high) {
            (true, true) => Verdict::Corroborated,
            (false, false) => Verdict::Refuted,
            _ => Verdict::Consistent,
        }
    }

    /// Whether the verdict is *not* a refutation.
    pub fn acceptable(self) -> bool {
        self != Verdict::Refuted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tml_logic::CmpOp;

    #[test]
    fn reexports_resolve() {
        let i = wilson_interval(75, 100, 0.05);
        assert!(i.contains(0.75));
        assert!(hoeffding_interval(10.0, 1000, 0.0, 20.0, 0.01).contains(10.0));
        assert!(hoeffding_half_width(1000, 0.01) > 0.0);
        assert!((normal_quantile(0.975) - 1.959964).abs() < 1e-5);
        let w = wilson_interval_weighted(1.0, 2.0, 0.05);
        assert!(w.contains(0.5));
    }

    #[test]
    fn verdict_classification() {
        let safe = Interval { estimate: 0.9, low: 0.85, high: 0.95 };
        assert_eq!(Verdict::classify(CmpOp::Ge, &safe, 0.8), Verdict::Corroborated);
        assert_eq!(Verdict::classify(CmpOp::Ge, &safe, 0.9), Verdict::Consistent);
        assert_eq!(Verdict::classify(CmpOp::Ge, &safe, 0.99), Verdict::Refuted);
        assert_eq!(Verdict::classify(CmpOp::Le, &safe, 0.99), Verdict::Corroborated);
        assert_eq!(Verdict::classify(CmpOp::Le, &safe, 0.5), Verdict::Refuted);
        assert!(Verdict::Consistent.acceptable());
        assert!(!Verdict::Refuted.acceptable());
    }
}
