//! Structured random model generators.
//!
//! Every generator is a pure function of its seed (the workspace's
//! deterministic `StdRng`), so a failing seed reported by the oracle
//! harness reproduces the exact same model on any machine. The families
//! are chosen to stress different engine behaviors:
//!
//! * [`layered_dtmc`] — forward-layered DAG plus an absorbing goal: fast
//!   mixing, exercises qualitative precomputation;
//! * [`absorbing_dtmc`] — every state keeps an escape edge to the goal, so
//!   absorption is almost-sure and unbounded reachability is well defined
//!   from every state;
//! * [`grid_dtmc`] — grid-like random walk drifting toward a goal corner
//!   (the WSN topology shape at arbitrary sizes);
//! * [`dense_dtmc`] — high fan-out rows, stressing dense solves and tape
//!   compilation;
//! * [`near_singular_dtmc`] — heavy self-loops (retry probability close to
//!   one) make `I − P` nearly singular: Gauss–Seidel converges very slowly,
//!   which drives the checker's degradation chain;
//! * [`long_chain_dtmc`] — a forward chain with skip edges to the goal:
//!   every SCC is trivial, so the SCC-decomposed solver finishes in one
//!   back-substitution pass while monolithic Gauss–Seidel needs a sweep
//!   per chain position (scales to millions of states);
//! * [`layered_scc_dtmc`] — a layered DAG whose nodes are small ring
//!   SCCs: the condensation has many components in a deep dependency
//!   order, the stress shape for block-decomposed solves at scale;
//! * [`random_mdp`] — controllable nondeterministic branching;
//! * [`parametric_dtmc`] — bounded-degree parametric chains whose rows sum
//!   to one identically, for the symbolic/compiled/instantiate oracle.
//!
//! The goal states of every DTMC family carry the label `"goal"` and every
//! state reaches the goal with positive probability (needed by the
//! fixed-point oracle pairs and the simulator's definitive-failure
//! classification).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use tml_models::{Dtmc, DtmcBuilder, Mdp, MdpBuilder};
use tml_parametric::{ParametricDtmc, Polynomial, RationalFunction};

/// The label all generated goal states carry.
pub const GOAL_LABEL: &str = "goal";

/// The structured DTMC families the oracle harness sweeps over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelFamily {
    /// [`layered_dtmc`] instances.
    Layered,
    /// [`absorbing_dtmc`] instances.
    Absorbing,
    /// [`grid_dtmc`] instances.
    Grid,
    /// [`dense_dtmc`] instances.
    Dense,
    /// [`near_singular_dtmc`] instances.
    NearSingular,
    /// [`long_chain_dtmc`] instances.
    LongChain,
    /// [`layered_scc_dtmc`] instances.
    LayeredScc,
}

impl ModelFamily {
    /// All families, in sweep order.
    pub fn all() -> &'static [ModelFamily] {
        &[
            ModelFamily::Layered,
            ModelFamily::Absorbing,
            ModelFamily::Grid,
            ModelFamily::Dense,
            ModelFamily::NearSingular,
            ModelFamily::LongChain,
            ModelFamily::LayeredScc,
        ]
    }

    /// The family's sweep name (also its CLI spelling).
    pub fn name(self) -> &'static str {
        match self {
            ModelFamily::Layered => "layered",
            ModelFamily::Absorbing => "absorbing",
            ModelFamily::Grid => "grid",
            ModelFamily::Dense => "dense",
            ModelFamily::NearSingular => "near-singular",
            ModelFamily::LongChain => "long-chain",
            ModelFamily::LayeredScc => "layered-scc",
        }
    }

    /// Parses a CLI spelling.
    pub fn parse(name: &str) -> Option<ModelFamily> {
        ModelFamily::all().iter().copied().find(|f| f.name() == name)
    }

    /// Generates this family's model for `seed` at the default sweep size
    /// (sizes vary with the seed so a sweep covers a range of scales).
    pub fn generate(self, seed: u64) -> Dtmc {
        // Sizes cycle through a small spread; the +7 keeps even seed 0
        // non-trivial.
        let n = 7 + (seed % 5) as usize * 6;
        self.generate_sized(seed, n)
    }

    /// Generates this family's model for `seed` with roughly `n` states.
    pub fn generate_sized(self, seed: u64, n: usize) -> Dtmc {
        let n = n.max(3);
        match self {
            ModelFamily::Layered => layered_dtmc(seed, n.div_ceil(3).max(2), 3),
            ModelFamily::Absorbing => absorbing_dtmc(seed, n),
            ModelFamily::Grid => grid_dtmc(seed, (n as f64).sqrt().ceil() as usize),
            ModelFamily::Dense => dense_dtmc(seed, n),
            ModelFamily::NearSingular => near_singular_dtmc(seed, n),
            ModelFamily::LongChain => long_chain_dtmc(seed, n),
            ModelFamily::LayeredScc => layered_scc_dtmc(seed, (n / 6).max(1), 2, 3),
        }
    }
}

/// Splits probability mass `1.0` uniformly-randomly over `k` parts, each
/// at least `min_share` of the total.
fn random_simplex(rng: &mut StdRng, k: usize, min_share: f64) -> Vec<f64> {
    let mut raw: Vec<f64> = (0..k).map(|_| rng.random_range(min_share..1.0)).collect();
    let sum: f64 = raw.iter().sum();
    for r in &mut raw {
        *r /= sum;
    }
    raw
}

/// The historical ad-hoc test generator, kept verbatim so existing
/// cross-validation seeds keep producing the same chains: every
/// non-terminal state has exactly two successors, the last state is the
/// absorbing `"goal"`, and states carry a `"cost"` reward of `1 + s/2`.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn random_dtmc(seed: u64, n: usize) -> Dtmc {
    assert!(n >= 2, "random_dtmc needs at least two states");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = DtmcBuilder::new(n);
    for s in 0..n - 1 {
        let t1 = rng.random_range(0..n);
        let mut t2 = rng.random_range(0..n);
        if t2 == t1 {
            t2 = (t1 + 1) % n;
        }
        let p = rng.random_range(0.1..0.9);
        b.transition(s, t1, p).unwrap();
        b.transition(s, t2, 1.0 - p).unwrap();
    }
    b.transition(n - 1, n - 1, 1.0).unwrap();
    b.label(n - 1, GOAL_LABEL).unwrap();
    for s in 0..n - 1 {
        b.state_reward("cost", s, 1.0 + (s as f64) * 0.5).unwrap();
    }
    b.build().unwrap()
}

/// A forward-layered chain: `layers` layers of `width` states; every state
/// distributes its mass over the next layer (the final layer collapses to
/// the absorbing goal). Absorption is almost-sure in `layers` steps.
///
/// # Panics
///
/// Panics if `layers < 1` or `width < 1`.
pub fn layered_dtmc(seed: u64, layers: usize, width: usize) -> Dtmc {
    assert!(layers >= 1 && width >= 1, "layered_dtmc needs positive dimensions");
    let mut rng = StdRng::seed_from_u64(seed ^ 0xA5A5_0001);
    let n = layers * width + 1; // + absorbing goal
    let goal = n - 1;
    let mut b = DtmcBuilder::new(n);
    for layer in 0..layers {
        for w in 0..width {
            let s = layer * width + w;
            if layer + 1 == layers {
                b.transition(s, goal, 1.0).unwrap();
            } else {
                let fan = rng.random_range(1..=width);
                let shares = random_simplex(&mut rng, fan, 0.05);
                let start = rng.random_range(0..width);
                for (i, p) in shares.iter().enumerate() {
                    let t = (layer + 1) * width + (start + i) % width;
                    b.transition(s, t, *p).unwrap();
                }
            }
            b.state_reward("cost", s, rng.random_range(0.5..2.0)).unwrap();
        }
    }
    b.transition(goal, goal, 1.0).unwrap();
    b.label(goal, GOAL_LABEL).unwrap();
    b.build().unwrap()
}

/// A chain where every state keeps an explicit escape edge to the absorbing
/// goal (probability in `[0.05, 0.4]`), so the goal is reached almost
/// surely from everywhere and expected hitting times are modest.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn absorbing_dtmc(seed: u64, n: usize) -> Dtmc {
    assert!(n >= 2, "absorbing_dtmc needs at least two states");
    let mut rng = StdRng::seed_from_u64(seed ^ 0xA5A5_0002);
    let goal = n - 1;
    let mut b = DtmcBuilder::new(n);
    for s in 0..goal {
        let escape = rng.random_range(0.05..0.4);
        b.transition(s, goal, escape).unwrap();
        let fan = rng.random_range(1..=3usize);
        let shares = random_simplex(&mut rng, fan, 0.1);
        for p in shares {
            let t = rng.random_range(0..goal);
            b.transition(s, t, p * (1.0 - escape)).unwrap();
        }
        b.state_reward("cost", s, rng.random_range(0.5..3.0)).unwrap();
    }
    b.transition(goal, goal, 1.0).unwrap();
    b.label(goal, GOAL_LABEL).unwrap();
    b.build().unwrap()
}

/// A `side × side` grid random walk with drift toward the goal corner
/// (state `side²−1`): from each cell, mass splits between "right",
/// "down" and a backward slip, mirroring the WSN routing topology at
/// arbitrary sizes.
///
/// # Panics
///
/// Panics if `side < 2`.
pub fn grid_dtmc(seed: u64, side: usize) -> Dtmc {
    assert!(side >= 2, "grid_dtmc needs side >= 2");
    let mut rng = StdRng::seed_from_u64(seed ^ 0xA5A5_0003);
    let n = side * side;
    let goal = n - 1;
    let idx = |r: usize, c: usize| r * side + c;
    let mut b = DtmcBuilder::new(n);
    for r in 0..side {
        for c in 0..side {
            let s = idx(r, c);
            if s == goal {
                break;
            }
            let right = (c + 1 < side).then(|| idx(r, c + 1));
            let down = (r + 1 < side).then(|| idx(r + 1, c));
            let back = idx(r.saturating_sub(1), c.saturating_sub(1));
            match (right, down) {
                (Some(rt), Some(dn)) => {
                    let pr = rng.random_range(0.3..0.5);
                    let pd = rng.random_range(0.3..0.5);
                    b.transition(s, rt, pr).unwrap();
                    b.transition(s, dn, pd).unwrap();
                    b.transition(s, back, 1.0 - pr - pd).unwrap();
                }
                (Some(t), None) | (None, Some(t)) => {
                    let p = rng.random_range(0.6..0.9);
                    b.transition(s, t, p).unwrap();
                    b.transition(s, back, 1.0 - p).unwrap();
                }
                (None, None) => unreachable!("only the goal corner lacks both moves"),
            }
            b.state_reward("cost", s, 1.0).unwrap();
        }
    }
    b.transition(goal, goal, 1.0).unwrap();
    b.label(goal, GOAL_LABEL).unwrap();
    b.build().unwrap()
}

/// A dense chain: every state has `~n/2` successors including a small
/// direct goal edge, stressing wide rows in solvers and compiled tapes.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn dense_dtmc(seed: u64, n: usize) -> Dtmc {
    assert!(n >= 3, "dense_dtmc needs at least three states");
    let mut rng = StdRng::seed_from_u64(seed ^ 0xA5A5_0004);
    let goal = n - 1;
    let mut b = DtmcBuilder::new(n);
    for s in 0..goal {
        let fan = (n / 2).max(2);
        let escape = rng.random_range(0.02..0.1);
        b.transition(s, goal, escape).unwrap();
        let shares = random_simplex(&mut rng, fan, 0.02);
        for (i, p) in shares.iter().enumerate() {
            let t = (s + 1 + i) % goal;
            b.transition(s, t, p * (1.0 - escape)).unwrap();
        }
        b.state_reward("cost", s, rng.random_range(0.1..1.0)).unwrap();
    }
    b.transition(goal, goal, 1.0).unwrap();
    b.label(goal, GOAL_LABEL).unwrap();
    b.build().unwrap()
}

/// A nearly singular chain: every transient state retries itself with
/// probability `1 − δ` (`δ ∈ [1e-4, 1e-3]`) and leaks the rest forward.
/// `I − P` has eigenvalues within `δ` of zero, so Gauss–Seidel needs on the
/// order of `1/δ` sweeps — the intended trigger for the checker's
/// GS → Jacobi → direct degradation chain under starved iteration budgets.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn near_singular_dtmc(seed: u64, n: usize) -> Dtmc {
    assert!(n >= 2, "near_singular_dtmc needs at least two states");
    let mut rng = StdRng::seed_from_u64(seed ^ 0xA5A5_0005);
    let goal = n - 1;
    let mut b = DtmcBuilder::new(n);
    for s in 0..goal {
        let delta = rng.random_range(1e-4..1e-3);
        b.transition(s, s, 1.0 - delta).unwrap();
        // Forward leak, split between the next state and the goal.
        let to_next = rng.random_range(0.3..0.7);
        b.transition(s, s + 1, delta * to_next).unwrap();
        b.transition(s, goal, delta * (1.0 - to_next)).unwrap();
        b.state_reward("cost", s, 1.0).unwrap();
    }
    b.transition(goal, goal, 1.0).unwrap();
    b.label(goal, GOAL_LABEL).unwrap();
    b.build().unwrap()
}

/// A forward chain with skip edges: state `s` advances to `s + 1` with
/// probability `1 − δ` and jumps straight to the absorbing goal with
/// probability `δ` (`δ ∈ [0.01, 0.05]` per state). The transition graph is
/// acyclic apart from the goal self-loop, so *every* SCC is trivial: the
/// SCC-decomposed solver resolves the whole chain in one back-substitution
/// pass, while monolithic Gauss–Seidel in natural state order propagates
/// information one position per sweep. Scales to millions of states.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn long_chain_dtmc(seed: u64, n: usize) -> Dtmc {
    assert!(n >= 2, "long_chain_dtmc needs at least two states");
    let mut rng = StdRng::seed_from_u64(seed ^ 0xA5A5_0008);
    let goal = n - 1;
    let mut b = DtmcBuilder::new(n);
    for s in 0..goal {
        let skip = rng.random_range(0.01..0.05);
        if s + 1 == goal {
            b.transition(s, goal, 1.0).unwrap();
        } else {
            b.transition(s, s + 1, 1.0 - skip).unwrap();
            b.transition(s, goal, skip).unwrap();
        }
        b.state_reward("cost", s, rng.random_range(0.5..1.5)).unwrap();
    }
    b.transition(goal, goal, 1.0).unwrap();
    b.label(goal, GOAL_LABEL).unwrap();
    b.build().unwrap()
}

/// A layered DAG whose nodes are small ring SCCs: `layers` layers of
/// `comps` ring components of `comp_size` states each, plus the absorbing
/// goal. Within a component, each state cycles to the next ring position
/// with probability `stay ∈ [0.7, 0.97]` — sticky enough that a global
/// iterative solve pays hundreds of sweeps for the within-ring mixing a
/// block solver resolves exactly — and leaks the rest to a random
/// state of the next layer (the last layer leaks to the goal). The
/// condensation therefore has `layers · comps` non-trivial components in a
/// deep dependency order — the stress shape for block-decomposed solves —
/// and the goal is reached almost surely from every state.
///
/// # Panics
///
/// Panics if any dimension is zero.
pub fn layered_scc_dtmc(seed: u64, layers: usize, comps: usize, comp_size: usize) -> Dtmc {
    assert!(
        layers >= 1 && comps >= 1 && comp_size >= 1,
        "layered_scc_dtmc needs positive dimensions"
    );
    let mut rng = StdRng::seed_from_u64(seed ^ 0xA5A5_0009);
    let per_layer = comps * comp_size;
    let n = layers * per_layer + 1;
    let goal = n - 1;
    let mut b = DtmcBuilder::new(n);
    for layer in 0..layers {
        for comp in 0..comps {
            let base = layer * per_layer + comp * comp_size;
            for i in 0..comp_size {
                let s = base + i;
                let ring = base + (i + 1) % comp_size;
                let stay = if comp_size == 1 {
                    // Degenerate ring: a self-loop, resolved in closed form.
                    rng.random_range(0.2..0.6)
                } else {
                    rng.random_range(0.7..0.97)
                };
                let leak = if layer + 1 == layers {
                    goal
                } else {
                    (layer + 1) * per_layer + rng.random_range(0..per_layer)
                };
                if ring == leak {
                    b.transition(s, ring, 1.0).unwrap();
                } else {
                    b.transition(s, ring, stay).unwrap();
                    b.transition(s, leak, 1.0 - stay).unwrap();
                }
                b.state_reward("cost", s, rng.random_range(0.5..2.0)).unwrap();
            }
        }
    }
    b.transition(goal, goal, 1.0).unwrap();
    b.label(goal, GOAL_LABEL).unwrap();
    b.build().unwrap()
}

/// A random MDP with controllable branching: each of the `n` states offers
/// between 1 and `max_choices` actions, each a distribution over up to
/// three successors; the last state is the absorbing `"goal"`.
///
/// # Panics
///
/// Panics if `n < 2` or `max_choices == 0`.
pub fn random_mdp(seed: u64, n: usize, max_choices: usize) -> Mdp {
    assert!(n >= 2 && max_choices >= 1, "random_mdp needs n >= 2 and max_choices >= 1");
    let mut rng = StdRng::seed_from_u64(seed ^ 0xA5A5_0006);
    let goal = n - 1;
    let mut b = MdpBuilder::new(n);
    for s in 0..goal {
        let choices = rng.random_range(1..=max_choices);
        for c in 0..choices {
            let name = format!("a{c}");
            let fan = rng.random_range(1..=3usize);
            let shares = random_simplex(&mut rng, fan, 0.1);
            let mut row: Vec<(usize, f64)> = Vec::with_capacity(fan);
            for p in &shares {
                // Merge duplicate targets by accumulating into the row.
                let t = rng.random_range(0..n);
                match row.iter_mut().find(|(rt, _)| *rt == t) {
                    Some((_, rp)) => *rp += *p,
                    None => row.push((t, *p)),
                }
            }
            b.choice(s, &name, &row).unwrap();
        }
        b.state_reward("cost", s, rng.random_range(0.5..2.0)).unwrap();
    }
    b.choice(goal, "a0", &[(goal, 1.0)]).unwrap();
    b.label(goal, GOAL_LABEL).unwrap();
    b.build().unwrap()
}

/// A generated parametric chain plus the box its parameters live in.
#[derive(Debug, Clone)]
pub struct GeneratedPdtmc {
    /// The parametric chain (rows sum to one identically).
    pub pdtmc: ParametricDtmc,
    /// Per-parameter lower bounds.
    pub lo: Vec<f64>,
    /// Per-parameter upper bounds.
    pub hi: Vec<f64>,
}

impl GeneratedPdtmc {
    /// A deterministic sample point inside the box (`frac ∈ [0, 1]` slides
    /// from `lo` to `hi`).
    pub fn point(&self, frac: f64) -> Vec<f64> {
        self.lo.iter().zip(&self.hi).map(|(l, h)| l + frac.clamp(0.0, 1.0) * (h - l)).collect()
    }
}

/// A bounded-degree parametric DTMC over `nparams` parameters: a fraction
/// of rows get a transition `c + coeff·xᵢ` with the complement on a second
/// edge (so every row sums to one identically and each entry has degree at
/// most one in a single parameter — the bounded-degree regime the compiled
/// tapes are optimized for). Parameters range over `[0.0, 0.2]`; all
/// probabilities stay in `(0, 1)` across the whole box.
///
/// # Panics
///
/// Panics if `n < 3` or `nparams == 0`.
pub fn parametric_dtmc(seed: u64, n: usize, nparams: usize) -> GeneratedPdtmc {
    assert!(n >= 3 && nparams >= 1, "parametric_dtmc needs n >= 3 and nparams >= 1");
    let mut rng = StdRng::seed_from_u64(seed ^ 0xA5A5_0007);
    let goal = n - 1;
    let params: Vec<String> = (0..nparams).map(|i| format!("x{i}")).collect();
    let mut b = ParametricDtmc::builder(n, params);
    let constant = |c: f64| RationalFunction::constant(nparams, c);
    for s in 0..goal {
        // `t1` is always a transient state, the complement edge always goes
        // to the goal, so reachability is nontrivial everywhere.
        let t1 = rng.random_range(0..goal);
        let base = rng.random_range(0.3..0.6);
        if rng.random_range(0.0..1.0) < 0.7 {
            // Parametric row: p(t1) = base + coeff·xᵢ, p(goal) = 1 − that.
            let i = rng.random_range(0..nparams);
            let coeff = rng.random_range(0.2..0.9);
            let poly =
                Polynomial::constant(nparams, base).add(&Polynomial::var(nparams, i).scale(coeff));
            let p1 = RationalFunction::from_poly(poly);
            let p2 = constant(1.0).sub(&p1);
            b.transition(s, t1, p1).unwrap();
            b.transition(s, goal, p2).unwrap();
        } else {
            b.transition(s, t1, constant(base)).unwrap();
            b.transition(s, goal, constant(1.0 - base)).unwrap();
        }
    }
    b.transition(goal, goal, constant(1.0)).unwrap();
    b.label(goal, GOAL_LABEL).unwrap();
    let pdtmc = b.build().expect("generated parametric rows sum to one identically");
    GeneratedPdtmc { pdtmc, lo: vec![0.0; nparams], hi: vec![0.2; nparams] }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tml_models::graph;

    fn goal_reachable_everywhere(d: &Dtmc) {
        let target = d.labeling().mask(GOAL_LABEL);
        assert!(target.iter().any(|&t| t), "a goal state exists");
        let phi = vec![true; d.num_states()];
        let zero = graph::prob0(d, &phi, &target);
        assert!(zero.iter().all(|&z| !z), "every state reaches the goal with positive probability");
    }

    #[test]
    fn families_are_deterministic_and_goal_reaching() {
        for &family in ModelFamily::all() {
            for seed in 0..10 {
                let a = family.generate(seed);
                let b = family.generate(seed);
                assert_eq!(a, b, "{} seed {seed} must be reproducible", family.name());
                goal_reachable_everywhere(&a);
            }
        }
    }

    #[test]
    fn legacy_random_dtmc_shape() {
        let d = random_dtmc(3, 7);
        assert_eq!(d.num_states(), 7);
        assert!(d.labeling().has(6, GOAL_LABEL));
        assert!(d.reward_structure("cost").is_ok());
        assert_eq!(d, random_dtmc(3, 7));
    }

    #[test]
    fn random_mdp_branches_and_builds() {
        for seed in 0..10 {
            let m = random_mdp(seed, 6, 3);
            assert_eq!(m.num_states(), 6);
            assert!(m.total_choices() >= 6);
            assert!((0..5).all(|s| m.num_choices(s) >= 1));
            assert_eq!(m.num_choices(5), 1);
        }
    }

    #[test]
    fn parametric_family_is_stochastic_over_the_box() {
        for seed in 0..6 {
            let g = parametric_dtmc(seed, 6, 2);
            for frac in [0.0, 0.5, 1.0] {
                let point = g.point(frac);
                let d = g.pdtmc.instantiate(&point).unwrap();
                assert_eq!(d.num_states(), 6);
            }
        }
    }

    #[test]
    fn long_chain_has_only_trivial_sccs() {
        let d = long_chain_dtmc(5, 40);
        assert_eq!(d.num_states(), 40);
        let adj: Vec<Vec<usize>> =
            (0..d.num_states()).map(|s| d.successors(s).map(|(t, _)| t).collect()).collect();
        let comps = graph::sccs(&adj);
        // Every component is a singleton (the goal's self-loop included).
        assert!(comps.iter().all(|c| c.len() == 1));
        goal_reachable_everywhere(&d);
    }

    #[test]
    fn layered_scc_has_ring_components() {
        let d = layered_scc_dtmc(2, 3, 2, 4);
        assert_eq!(d.num_states(), 3 * 2 * 4 + 1);
        let adj: Vec<Vec<usize>> =
            (0..d.num_states()).map(|s| d.successors(s).map(|(t, _)| t).collect()).collect();
        let comps = graph::sccs(&adj);
        // Rings survive as size-4 components unless a leak edge collapsed
        // one (possible only when ring == leak forced a rewire).
        let big = comps.iter().filter(|c| c.len() == 4).count();
        assert!(big >= 4, "most rings stay intact, got {big} of 6");
        goal_reachable_everywhere(&d);
    }

    #[test]
    fn family_parsing_roundtrips() {
        for &f in ModelFamily::all() {
            assert_eq!(ModelFamily::parse(f.name()), Some(f));
        }
        assert_eq!(ModelFamily::parse("nope"), None);
    }
}
