//! Maximum-entropy inverse reinforcement learning (Ziebart et al., 2008).
//!
//! Under the max-ent model the probability of a finite trajectory `U` is
//! proportional to `exp(Σ_i θᵀ f(s_i)) · Π_i P(s_{i+1} | s_i, a_i)` (paper
//! Eq. 16). Learning `θ` by maximum likelihood reduces to **feature
//! matching**: the gradient of the log-likelihood is the difference between
//! the empirical feature expectation of the expert demonstrations and the
//! feature expectation of the model's own trajectory distribution. The
//! latter is computed exactly with a soft (log-sum-exp) value-iteration
//! backward pass followed by a visitation-frequency forward pass.

use tml_models::{Mdp, Path, StochasticPolicy};
use tml_numerics::vector::log_sum_exp;
use tml_telemetry::{counter, span};

use crate::{FeatureMap, IrlError};

/// Minimum number of independent work items (states in a backward sweep,
/// expert trajectories) before the per-item loops are distributed over
/// threads; below this the thread-dispatch overhead dominates.
const PAR_ITEM_THRESHOLD: usize = 256;

/// Maps `f` over `0..n`, on parallel threads when the sweep is large
/// enough. Output order is always the input order, so the parallel sweep
/// returns exactly what the serial one would.
fn par_map_indices<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync + Send,
{
    if n >= PAR_ITEM_THRESHOLD && rayon::current_num_threads() > 1 {
        use rayon::prelude::*;
        (0..n).into_par_iter().map(f).collect()
    } else {
        (0..n).map(f).collect()
    }
}

/// Options for [`maxent_irl`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IrlOptions {
    /// Trajectory horizon (number of transitions considered).
    pub horizon: usize,
    /// Gradient-ascent learning rate.
    pub learning_rate: f64,
    /// Maximum gradient-ascent iterations.
    pub iterations: usize,
    /// L2 regularization weight on `θ`.
    pub l2: f64,
    /// Stop early when the gradient norm falls below this.
    pub tolerance: f64,
}

impl Default for IrlOptions {
    fn default() -> Self {
        IrlOptions { horizon: 20, learning_rate: 0.1, iterations: 500, l2: 1e-3, tolerance: 1e-6 }
    }
}

/// Result of [`maxent_irl`].
#[derive(Debug, Clone, PartialEq)]
pub struct IrlResult {
    /// The learned weight vector (reward = `θᵀ f(s)`).
    pub theta: Vec<f64>,
    /// Gradient norms per iteration (diagnostic).
    pub gradient_norms: Vec<f64>,
    /// Whether the gradient converged below tolerance.
    pub converged: bool,
}

/// Learns a linear reward from expert demonstrations by maximum-entropy
/// IRL.
///
/// # Errors
///
/// * [`IrlError::InvalidDemonstrations`] if `expert` is empty or mentions
///   out-of-range states.
/// * [`IrlError::FeatureShape`] if the feature map does not cover the MDP.
///
/// # Example
///
/// ```
/// use tml_models::{MdpBuilder, Path};
/// use tml_irl::{maxent_irl, FeatureMap, IrlOptions};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = MdpBuilder::new(2);
/// b.choice(0, "go", &[(1, 1.0)])?;
/// b.choice(0, "stay", &[(0, 1.0)])?;
/// b.choice(1, "stay", &[(1, 1.0)])?;
/// let mdp = b.build()?;
/// let features = FeatureMap::new(vec![vec![1.0, 0.0], vec![0.0, 1.0]])?;
/// // The expert always moves to state 1 and stays there.
/// let demo = Path::with_actions(vec![0, 1, 1], vec![0, 1])?;
/// let result = maxent_irl(&mdp, &features, &[demo], IrlOptions::default())?;
/// // State 1's feature weight should dominate state 0's.
/// assert!(result.theta[1] > result.theta[0]);
/// # Ok(())
/// # }
/// ```
pub fn maxent_irl(
    mdp: &Mdp,
    features: &FeatureMap,
    expert: &[Path],
    opts: IrlOptions,
) -> Result<IrlResult, IrlError> {
    validate(mdp, features, expert)?;
    let _span = span!(
        "irl.maxent",
        states = mdp.num_states(),
        demonstrations = expert.len(),
        dim = features.dim()
    );
    let dim = features.dim();
    let horizon = opts.horizon.max(expert.iter().map(Path::len).max().unwrap_or(0));

    // Empirical feature expectations over exactly `horizon`+1 positions:
    // demonstrations shorter than the horizon are padded with their final
    // state (they end in absorbing states in all our case studies), so the
    // empirical and model-side expectations cover the same trajectory
    // length — otherwise the feature-matching gradient has a constant bias.
    // Per-trajectory feature sums are independent, so they are computed in
    // parallel and folded in trajectory order (deterministic merge).
    let per_path: Vec<Vec<f64>> = par_map_indices(expert.len(), |p| {
        let path = &expert[p];
        let mut acc = vec![0.0; dim];
        for i in 0..=horizon {
            let s = path.states[i.min(path.states.len() - 1)];
            for (a, &f) in acc.iter_mut().zip(features.state_features(s)) {
                *a += f;
            }
        }
        acc
    });
    let mut f_expert = vec![0.0; dim];
    for acc in &per_path {
        for (t, &a) in f_expert.iter_mut().zip(acc) {
            *t += a;
        }
    }
    for v in f_expert.iter_mut() {
        *v /= expert.len() as f64;
    }

    // Initial state distribution taken from the demonstrations.
    let mut d0 = vec![0.0; mdp.num_states()];
    for path in expert {
        d0[path.states[0]] += 1.0 / expert.len() as f64;
    }

    let mut theta = vec![0.0; dim];
    let mut gradient_norms = Vec::new();
    let mut converged = false;
    let mut passes: u64 = 0;
    for _ in 0..opts.iterations {
        passes += 1;
        let policy = soft_policy_internal(mdp, &features.rewards(&theta), horizon);
        let d = visitation_from(mdp, &policy, &d0, horizon);
        let mut grad = vec![0.0; dim];
        for (s, &ds) in d.iter().enumerate() {
            for (g, &f) in grad.iter_mut().zip(features.state_features(s)) {
                *g -= ds * f;
            }
        }
        for ((g, &fe), &t) in grad.iter_mut().zip(&f_expert).zip(&theta) {
            *g += fe - opts.l2 * t;
        }
        let norm = grad.iter().map(|g| g * g).sum::<f64>().sqrt();
        gradient_norms.push(norm);
        if norm < opts.tolerance {
            converged = true;
            break;
        }
        for (t, g) in theta.iter_mut().zip(&grad) {
            *t += opts.learning_rate * g;
        }
    }
    counter!("irl.maxent.gradient_passes", passes);
    Ok(IrlResult { theta, gradient_norms, converged })
}

/// The max-ent soft policy `π(a|s) ∝ exp(Q_soft(s,a))` for the given
/// per-state rewards over a finite horizon.
///
/// # Errors
///
/// Returns [`IrlError::FeatureShape`] if `state_rewards` has the wrong
/// length.
pub fn soft_policy(
    mdp: &Mdp,
    state_rewards: &[f64],
    horizon: usize,
) -> Result<StochasticPolicy, IrlError> {
    if state_rewards.len() != mdp.num_states() {
        return Err(IrlError::FeatureShape {
            detail: format!("{} rewards for {} states", state_rewards.len(), mdp.num_states()),
        });
    }
    let probs = soft_policy_internal(mdp, state_rewards, horizon);
    StochasticPolicy::new(probs).map_err(IrlError::from)
}

fn soft_policy_internal(mdp: &Mdp, state_rewards: &[f64], horizon: usize) -> Vec<Vec<f64>> {
    let n = mdp.num_states();
    let soft_q = |s: usize, v: &[f64]| -> Vec<f64> {
        mdp.choices(s)
            .iter()
            .map(|c| state_rewards[s] + c.transitions.iter().map(|&(t, p)| p * v[t]).sum::<f64>())
            .collect()
    };
    // Soft backward pass: V(s) ← logsumexp_a [ r(s) + Σ P V(s') ]. The
    // per-state backups within a sweep are independent, so each sweep is
    // distributed over threads on large models.
    let mut v = vec![0.0; n];
    for _ in 0..horizon {
        v = par_map_indices(n, |s| log_sum_exp(&soft_q(s, &v)));
    }
    // Policy from the final backup.
    par_map_indices(n, |s| {
        let qs = soft_q(s, &v);
        let z = log_sum_exp(&qs);
        qs.iter().map(|q| (q - z).exp()).collect()
    })
}

/// Expected state-visitation frequencies over `horizon` steps starting from
/// the MDP's initial state, under a stochastic policy given as per-state
/// choice distributions.
///
/// # Panics
///
/// Panics if `policy` does not match the MDP's shape.
pub fn visitation_frequencies(mdp: &Mdp, policy: &StochasticPolicy, horizon: usize) -> Vec<f64> {
    let mut d0 = vec![0.0; mdp.num_states()];
    d0[mdp.initial_state()] = 1.0;
    let probs: Vec<Vec<f64>> = (0..mdp.num_states())
        .map(|s| (0..mdp.num_choices(s)).map(|c| policy.prob(s, c)).collect())
        .collect();
    visitation_from(mdp, &probs, &d0, horizon)
}

fn visitation_from(mdp: &Mdp, policy: &[Vec<f64>], d0: &[f64], horizon: usize) -> Vec<f64> {
    let n = mdp.num_states();
    let mut dt = d0.to_vec();
    let mut total = dt.clone();
    for _ in 0..horizon {
        let mut next = vec![0.0; n];
        for s in 0..n {
            if dt[s] == 0.0 {
                continue;
            }
            for (c, choice) in mdp.choices(s).iter().enumerate() {
                let pc = policy[s].get(c).copied().unwrap_or(0.0);
                if pc == 0.0 {
                    continue;
                }
                for &(t, p) in &choice.transitions {
                    next[t] += dt[s] * pc * p;
                }
            }
        }
        for (acc, &v) in total.iter_mut().zip(&next) {
            *acc += v;
        }
        dt = next;
    }
    total
}

fn validate(mdp: &Mdp, features: &FeatureMap, expert: &[Path]) -> Result<(), IrlError> {
    if features.num_states() != mdp.num_states() {
        return Err(IrlError::FeatureShape {
            detail: format!(
                "feature map covers {} states, MDP has {}",
                features.num_states(),
                mdp.num_states()
            ),
        });
    }
    if expert.is_empty() {
        return Err(IrlError::InvalidDemonstrations { detail: "no demonstrations".into() });
    }
    for (i, path) in expert.iter().enumerate() {
        if path.states.is_empty() {
            return Err(IrlError::InvalidDemonstrations { detail: format!("trace {i} is empty") });
        }
        if let Some(&s) = path.states.iter().find(|&&s| s >= mdp.num_states()) {
            return Err(IrlError::InvalidDemonstrations {
                detail: format!("trace {i} mentions state {s}, MDP has {}", mdp.num_states()),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{value_iteration, ViOptions};
    use tml_models::MdpBuilder;

    /// Corridor 0-1-2 with go/stay actions; goal state 2.
    fn corridor() -> Mdp {
        let mut b = MdpBuilder::new(3);
        for s in 0..2 {
            b.choice(s, "go", &[(s + 1, 1.0)]).unwrap();
            b.choice(s, "stay", &[(s, 1.0)]).unwrap();
        }
        b.choice(2, "stay", &[(2, 1.0)]).unwrap();
        b.build().unwrap()
    }

    fn one_hot_features() -> FeatureMap {
        FeatureMap::new(vec![vec![1.0, 0.0, 0.0], vec![0.0, 1.0, 0.0], vec![0.0, 0.0, 1.0]])
            .unwrap()
    }

    #[test]
    fn learns_goal_seeking_reward() {
        let m = corridor();
        let fm = one_hot_features();
        let demo = Path::with_actions(vec![0, 1, 2, 2, 2], vec![0, 0, 1, 1]).unwrap();
        let res =
            maxent_irl(&m, &fm, &[demo], IrlOptions { iterations: 300, ..Default::default() })
                .unwrap();
        // Goal state weight dominates.
        assert!(res.theta[2] > res.theta[0], "theta = {:?}", res.theta);
        assert!(res.theta[2] > res.theta[1], "theta = {:?}", res.theta);
        // And the optimal policy under the learned reward matches the expert.
        let vi = value_iteration(&m, &fm.rewards(&res.theta), ViOptions::default()).unwrap();
        assert_eq!(vi.policy[0], 0, "go at 0");
        assert_eq!(vi.policy[1], 0, "go at 1");
    }

    #[test]
    fn gradient_norm_decreases() {
        let m = corridor();
        let fm = one_hot_features();
        let demo = Path::with_actions(vec![0, 1, 2], vec![0, 0]).unwrap();
        let res =
            maxent_irl(&m, &fm, &[demo], IrlOptions { iterations: 200, ..Default::default() })
                .unwrap();
        let first = res.gradient_norms.first().copied().unwrap();
        let last = res.gradient_norms.last().copied().unwrap();
        assert!(last < first, "gradient norms did not decrease: {first} -> {last}");
    }

    #[test]
    fn soft_policy_prefers_rewarding_direction() {
        let m = corridor();
        let pi = soft_policy(&m, &[0.0, 0.0, 5.0], 10).unwrap();
        // In state 1, "go" (towards reward) has higher probability.
        assert!(pi.prob(1, 0) > pi.prob(1, 1), "go {} vs stay {}", pi.prob(1, 0), pi.prob(1, 1));
        // With zero rewards the max-ent policy is uniform over
        // *trajectories*, not actions: states whose successors branch more
        // (here: staying at 0, which keeps both actions available) get more
        // probability. Distributions must still be proper.
        let flat = soft_policy(&m, &[0.0; 3], 10).unwrap();
        for s in 0..3 {
            let total: f64 = (0..m.num_choices(s)).map(|c| flat.prob(s, c)).sum();
            assert!((total - 1.0).abs() < 1e-9);
        }
        assert!(flat.prob(0, 1) >= flat.prob(0, 0), "staying keeps more branches open");
    }

    #[test]
    fn visitation_sums_to_horizon_plus_one() {
        let m = corridor();
        let pi = soft_policy(&m, &[0.0; 3], 5).unwrap();
        let d = visitation_frequencies(&m, &pi, 5);
        let total: f64 = d.iter().sum();
        assert!((total - 6.0).abs() < 1e-9, "total visitation {total}");
    }

    #[test]
    fn validation_errors() {
        let m = corridor();
        let fm = one_hot_features();
        assert!(maxent_irl(&m, &fm, &[], IrlOptions::default()).is_err());
        let bad = Path::from_states(vec![0, 9]);
        assert!(maxent_irl(&m, &fm, &[bad], IrlOptions::default()).is_err());
        let small = FeatureMap::new(vec![vec![1.0]]).unwrap();
        let demo = Path::from_states(vec![0]);
        assert!(maxent_irl(&m, &small, &[demo], IrlOptions::default()).is_err());
        assert!(soft_policy(&m, &[0.0; 2], 5).is_err());
    }
}
