use tml_numerics::vector::dot;

use crate::IrlError;

/// Per-state feature vectors with linear rewards `reward(s) = θᵀ f(s)`.
///
/// This is the reward parameterization of max-entropy IRL (paper Eq. 16):
/// the reward of a state is a linear function of its features, and learning
/// a reward means learning the weight vector `θ`.
///
/// # Example
///
/// ```
/// use tml_irl::FeatureMap;
///
/// # fn main() -> Result<(), tml_irl::IrlError> {
/// let fm = FeatureMap::new(vec![vec![1.0, 0.0], vec![0.0, 1.0]])?;
/// assert_eq!(fm.dim(), 2);
/// assert_eq!(fm.reward(1, &[0.5, 2.0]), 2.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureMap {
    features: Vec<Vec<f64>>,
    dim: usize,
}

impl FeatureMap {
    /// Wraps per-state feature vectors.
    ///
    /// # Errors
    ///
    /// Returns [`IrlError::FeatureShape`] if the vectors do not all share
    /// one dimension, are empty, or contain non-finite entries.
    pub fn new(features: Vec<Vec<f64>>) -> Result<Self, IrlError> {
        if features.is_empty() {
            return Err(IrlError::FeatureShape { detail: "no states".into() });
        }
        let dim = features[0].len();
        if dim == 0 {
            return Err(IrlError::FeatureShape { detail: "zero-dimensional features".into() });
        }
        for (s, f) in features.iter().enumerate() {
            if f.len() != dim {
                return Err(IrlError::FeatureShape {
                    detail: format!("state {s} has {} features, expected {dim}", f.len()),
                });
            }
            if f.iter().any(|v| !v.is_finite()) {
                return Err(IrlError::FeatureShape {
                    detail: format!("state {s} has a non-finite feature"),
                });
            }
        }
        Ok(FeatureMap { features, dim })
    }

    /// Number of states covered.
    pub fn num_states(&self) -> usize {
        self.features.len()
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The feature vector of `state`.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn state_features(&self, state: usize) -> &[f64] {
        &self.features[state]
    }

    /// The linear reward `θᵀ f(state)`.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range or `theta` has the wrong length.
    pub fn reward(&self, state: usize, theta: &[f64]) -> f64 {
        dot(&self.features[state], theta)
    }

    /// Dense per-state rewards under `theta`.
    ///
    /// # Panics
    ///
    /// Panics if `theta` has the wrong length.
    pub fn rewards(&self, theta: &[f64]) -> Vec<f64> {
        (0..self.num_states()).map(|s| self.reward(s, theta)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_rewards() {
        let fm = FeatureMap::new(vec![vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(fm.num_states(), 2);
        assert_eq!(fm.dim(), 2);
        assert_eq!(fm.state_features(0), &[1.0, 2.0]);
        assert_eq!(fm.reward(1, &[1.0, -1.0]), -1.0);
        assert_eq!(fm.rewards(&[1.0, 0.0]), vec![1.0, 3.0]);
    }

    #[test]
    fn validation() {
        assert!(FeatureMap::new(vec![]).is_err());
        assert!(FeatureMap::new(vec![vec![]]).is_err());
        assert!(FeatureMap::new(vec![vec![1.0], vec![1.0, 2.0]]).is_err());
        assert!(FeatureMap::new(vec![vec![f64::NAN]]).is_err());
    }
}
