//! Discounted value iteration, Q-values and greedy policies.

use tml_models::Mdp;

use crate::IrlError;

/// Options for [`value_iteration`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ViOptions {
    /// Discount factor in `(0, 1)`.
    pub gamma: f64,
    /// Convergence threshold on the max-norm value change.
    pub tolerance: f64,
    /// Iteration budget.
    pub max_iterations: usize,
}

impl Default for ViOptions {
    fn default() -> Self {
        ViOptions { gamma: 0.95, tolerance: 1e-10, max_iterations: 100_000 }
    }
}

/// Result of [`value_iteration`].
#[derive(Debug, Clone, PartialEq)]
pub struct ViResult {
    /// Optimal discounted values, one per state.
    pub values: Vec<f64>,
    /// A greedy optimal policy (choice index per state).
    pub policy: Vec<usize>,
    /// Iterations performed.
    pub iterations: usize,
}

/// Computes optimal discounted values and a greedy policy for the reward
/// vector `state_rewards` (reward gained on leaving a state, any choice).
///
/// The Bellman operator is `V(s) = max_a [ r(s) + γ Σ P(s'|s,a) V(s') ]`.
///
/// # Errors
///
/// * [`IrlError::InvalidOption`] if `gamma ∉ (0, 1)` or shapes mismatch.
/// * [`IrlError::NoConvergence`] if the budget is exhausted.
pub fn value_iteration(
    mdp: &Mdp,
    state_rewards: &[f64],
    opts: ViOptions,
) -> Result<ViResult, IrlError> {
    if !(0.0 < opts.gamma && opts.gamma < 1.0) {
        return Err(IrlError::InvalidOption {
            detail: format!("gamma {} not in (0,1)", opts.gamma),
        });
    }
    let n = mdp.num_states();
    if state_rewards.len() != n {
        return Err(IrlError::InvalidOption {
            detail: format!("{} rewards for {n} states", state_rewards.len()),
        });
    }
    let mut v = vec![0.0; n];
    for it in 1..=opts.max_iterations {
        let mut delta: f64 = 0.0;
        for s in 0..n {
            let best = mdp
                .choices(s)
                .iter()
                .map(|c| {
                    state_rewards[s]
                        + opts.gamma * c.transitions.iter().map(|&(t, p)| p * v[t]).sum::<f64>()
                })
                .fold(f64::NEG_INFINITY, f64::max);
            delta = delta.max((best - v[s]).abs());
            v[s] = best;
        }
        if delta <= opts.tolerance {
            let policy = greedy_policy(mdp, state_rewards, &v, opts.gamma);
            return Ok(ViResult { values: v, policy, iterations: it });
        }
    }
    Err(IrlError::NoConvergence { iterations: opts.max_iterations, delta: f64::NAN })
}

/// The Q-function `Q(s, a) = r(s) + γ Σ P(s'|s,a) V(s')` for given values.
///
/// Returns one vector per state, indexed by choice.
///
/// # Panics
///
/// Panics if `values` or `state_rewards` have the wrong length.
pub fn q_values(mdp: &Mdp, state_rewards: &[f64], values: &[f64], gamma: f64) -> Vec<Vec<f64>> {
    assert_eq!(values.len(), mdp.num_states(), "values length");
    assert_eq!(state_rewards.len(), mdp.num_states(), "rewards length");
    (0..mdp.num_states())
        .map(|s| {
            mdp.choices(s)
                .iter()
                .map(|c| {
                    state_rewards[s]
                        + gamma * c.transitions.iter().map(|&(t, p)| p * values[t]).sum::<f64>()
                })
                .collect()
        })
        .collect()
}

/// The greedy policy with respect to a value vector (ties break toward the
/// lower choice index).
///
/// # Panics
///
/// Panics if `values` or `state_rewards` have the wrong length.
pub fn greedy_policy(mdp: &Mdp, state_rewards: &[f64], values: &[f64], gamma: f64) -> Vec<usize> {
    q_values(mdp, state_rewards, values, gamma)
        .into_iter()
        .map(|qs| {
            let mut best = 0;
            let mut best_q = f64::NEG_INFINITY;
            for (i, q) in qs.into_iter().enumerate() {
                if q > best_q {
                    best_q = q;
                    best = i;
                }
            }
            best
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tml_models::MdpBuilder;

    /// A 3-state corridor: 0 → 1 → 2 with a "stay" alternative; reward only
    /// at state 2.
    fn corridor() -> Mdp {
        let mut b = MdpBuilder::new(3);
        for s in 0..2 {
            b.choice(s, "go", &[(s + 1, 1.0)]).unwrap();
            b.choice(s, "stay", &[(s, 1.0)]).unwrap();
        }
        b.choice(2, "stay", &[(2, 1.0)]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn vi_finds_shortest_path() {
        let m = corridor();
        let r = vec![0.0, 0.0, 1.0];
        let vi = value_iteration(&m, &r, ViOptions { gamma: 0.9, ..Default::default() }).unwrap();
        assert_eq!(vi.policy[0], 0);
        assert_eq!(vi.policy[1], 0);
        // V(2) = 1 / (1 - 0.9) = 10; V(1) = 0 + 0.9*10 = 9; V(0) = 8.1.
        assert!((vi.values[2] - 10.0).abs() < 1e-6);
        assert!((vi.values[1] - 9.0).abs() < 1e-6);
        assert!((vi.values[0] - 8.1).abs() < 1e-6);
        assert!(vi.iterations > 0);
    }

    #[test]
    fn q_values_rank_actions() {
        let m = corridor();
        let r = vec![0.0, 0.0, 1.0];
        let vi = value_iteration(&m, &r, ViOptions { gamma: 0.9, ..Default::default() }).unwrap();
        let q = q_values(&m, &r, &vi.values, 0.9);
        assert!(q[0][0] > q[0][1], "go beats stay at 0: {:?}", q[0]);
        assert!(q[1][0] > q[1][1]);
        assert_eq!(q[2].len(), 1);
    }

    #[test]
    fn stochastic_transitions_average() {
        // 0 --risky--> {2: 0.5, 0: 0.5}; 0 --safe--> 1 --go--> 2.
        let mut b = MdpBuilder::new(3);
        b.choice(0, "risky", &[(2, 0.5), (0, 0.5)]).unwrap();
        b.choice(0, "safe", &[(1, 1.0)]).unwrap();
        b.choice(1, "go", &[(2, 1.0)]).unwrap();
        b.choice(2, "stay", &[(2, 1.0)]).unwrap();
        let m = b.build().unwrap();
        let r = vec![0.0, 0.0, 1.0];
        let vi = value_iteration(&m, &r, ViOptions { gamma: 0.9, ..Default::default() }).unwrap();
        // risky: 0.9(0.5 V2 + 0.5 V0); safe: 0.9 V1 = 0.81 V2. Solving:
        // risky fixed point V0 = 0.45*10/(1-0.45) ≈ 8.18 > 8.1 → risky wins.
        assert_eq!(vi.policy[0], 0);
        assert!((vi.values[0] - 4.5 / 0.55).abs() < 1e-6);
    }

    #[test]
    fn option_validation() {
        let m = corridor();
        assert!(
            value_iteration(&m, &[0.0; 3], ViOptions { gamma: 1.5, ..Default::default() }).is_err()
        );
        assert!(value_iteration(&m, &[0.0; 2], ViOptions::default()).is_err());
    }

    #[test]
    fn greedy_policy_tie_breaks_low() {
        let m = corridor();
        // Zero reward everywhere → all Q equal → choice 0 everywhere.
        let v = vec![0.0; 3];
        let pi = greedy_policy(&m, &[0.0; 3], &v, 0.9);
        assert_eq!(pi, vec![0, 0, 0]);
    }
}

/// Evaluates a fixed deterministic policy: solves
/// `V(s) = r(s) + γ Σ P(s'|s,π(s)) V(s')` iteratively.
///
/// # Errors
///
/// * [`IrlError::InvalidOption`] for bad shapes or `gamma ∉ (0,1)`.
/// * [`IrlError::NoConvergence`] if the budget is exhausted.
pub fn policy_evaluation(
    mdp: &Mdp,
    policy: &[usize],
    state_rewards: &[f64],
    opts: ViOptions,
) -> Result<Vec<f64>, IrlError> {
    if !(0.0 < opts.gamma && opts.gamma < 1.0) {
        return Err(IrlError::InvalidOption {
            detail: format!("gamma {} not in (0,1)", opts.gamma),
        });
    }
    let n = mdp.num_states();
    if policy.len() != n || state_rewards.len() != n {
        return Err(IrlError::InvalidOption {
            detail: format!(
                "policy/rewards cover {}/{} states, model has {n}",
                policy.len(),
                state_rewards.len()
            ),
        });
    }
    for (s, &c) in policy.iter().enumerate() {
        if c >= mdp.num_choices(s) {
            return Err(IrlError::InvalidOption {
                detail: format!(
                    "policy picks choice {c} in state {s} with {} choices",
                    mdp.num_choices(s)
                ),
            });
        }
    }
    let mut v = vec![0.0; n];
    for _ in 0..opts.max_iterations {
        let mut delta: f64 = 0.0;
        for s in 0..n {
            let c = &mdp.choices(s)[policy[s]];
            let nv = state_rewards[s]
                + opts.gamma * c.transitions.iter().map(|&(t, p)| p * v[t]).sum::<f64>();
            delta = delta.max((nv - v[s]).abs());
            v[s] = nv;
        }
        if delta <= opts.tolerance {
            return Ok(v);
        }
    }
    Err(IrlError::NoConvergence { iterations: opts.max_iterations, delta: f64::NAN })
}

/// Howard's policy iteration: alternating policy evaluation and greedy
/// improvement. Converges to the same optimum as [`value_iteration`] in a
/// finite number of improvement steps; exposed as an alternative solver
/// (and ablation partner in the benchmarks).
///
/// # Errors
///
/// Same conditions as [`policy_evaluation`].
pub fn policy_iteration(
    mdp: &Mdp,
    state_rewards: &[f64],
    opts: ViOptions,
) -> Result<ViResult, IrlError> {
    let n = mdp.num_states();
    if state_rewards.len() != n {
        return Err(IrlError::InvalidOption {
            detail: format!("{} rewards for {n} states", state_rewards.len()),
        });
    }
    let mut policy = vec![0usize; n];
    for it in 1..=opts.max_iterations {
        let values = policy_evaluation(mdp, &policy, state_rewards, opts)?;
        let improved = greedy_policy(mdp, state_rewards, &values, opts.gamma);
        if improved == policy {
            return Ok(ViResult { values, policy, iterations: it });
        }
        policy = improved;
    }
    Err(IrlError::NoConvergence { iterations: opts.max_iterations, delta: f64::NAN })
}

#[cfg(test)]
mod pi_tests {
    use super::*;
    use tml_models::MdpBuilder;

    fn corridor() -> Mdp {
        let mut b = MdpBuilder::new(3);
        for s in 0..2 {
            b.choice(s, "go", &[(s + 1, 1.0)]).unwrap();
            b.choice(s, "stay", &[(s, 1.0)]).unwrap();
        }
        b.choice(2, "stay", &[(2, 1.0)]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn policy_iteration_matches_value_iteration() {
        let m = corridor();
        let r = vec![0.0, 0.1, 1.0];
        let opts = ViOptions { gamma: 0.9, ..Default::default() };
        let vi = value_iteration(&m, &r, opts).unwrap();
        let pi = policy_iteration(&m, &r, opts).unwrap();
        assert_eq!(vi.policy, pi.policy);
        for (a, b) in vi.values.iter().zip(&pi.values) {
            assert!((a - b).abs() < 1e-7, "{a} vs {b}");
        }
        // PI converges in very few improvement rounds.
        assert!(pi.iterations <= 5, "iterations {}", pi.iterations);
    }

    #[test]
    fn policy_evaluation_fixed_point() {
        let m = corridor();
        let r = vec![0.0, 0.0, 1.0];
        let v =
            policy_evaluation(&m, &[1, 0, 0], &r, ViOptions { gamma: 0.5, ..Default::default() })
                .unwrap();
        // Policy: stay at 0 forever → V(0) = 0. At 1: go to 2 → 0.5·V(2).
        assert!((v[0] - 0.0).abs() < 1e-9);
        assert!((v[2] - 2.0).abs() < 1e-8); // 1/(1-0.5)
        assert!((v[1] - 1.0).abs() < 1e-8);
    }

    #[test]
    fn policy_evaluation_validation() {
        let m = corridor();
        let opts = ViOptions::default();
        assert!(policy_evaluation(&m, &[0, 0], &[0.0; 3], opts).is_err());
        assert!(policy_evaluation(&m, &[0, 0, 9], &[0.0; 3], opts).is_err());
        assert!(policy_evaluation(&m, &[0, 0, 0], &[0.0; 2], opts).is_err());
        assert!(policy_iteration(&m, &[0.0; 2], opts).is_err());
    }
}
