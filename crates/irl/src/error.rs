use std::error::Error;
use std::fmt;

use tml_models::ModelError;

/// Errors raised by the IRL algorithms.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum IrlError {
    /// Feature vectors have inconsistent dimensions, or the feature map
    /// covers the wrong number of states.
    FeatureShape {
        /// Human-readable description.
        detail: String,
    },
    /// Value iteration did not converge within its budget.
    NoConvergence {
        /// Iterations performed.
        iterations: usize,
        /// Last observed change.
        delta: f64,
    },
    /// The expert demonstration set is empty or malformed.
    InvalidDemonstrations {
        /// Human-readable description.
        detail: String,
    },
    /// An invalid option value (e.g. a discount factor outside `(0, 1)`).
    InvalidOption {
        /// Human-readable description.
        detail: String,
    },
    /// The model layer rejected an operation.
    Model(ModelError),
}

impl fmt::Display for IrlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrlError::FeatureShape { detail } => write!(f, "feature shape error: {detail}"),
            IrlError::NoConvergence { iterations, delta } => {
                write!(f, "value iteration did not converge after {iterations} iterations (delta {delta:.3e})")
            }
            IrlError::InvalidDemonstrations { detail } => {
                write!(f, "invalid demonstrations: {detail}")
            }
            IrlError::InvalidOption { detail } => write!(f, "invalid option: {detail}"),
            IrlError::Model(e) => write!(f, "model error: {e}"),
        }
    }
}

impl Error for IrlError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            IrlError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for IrlError {
    fn from(e: ModelError) -> Self {
        IrlError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let errs = [
            IrlError::FeatureShape { detail: "dim 2 vs 3".into() },
            IrlError::NoConvergence { iterations: 5, delta: 0.1 },
            IrlError::InvalidDemonstrations { detail: "empty".into() },
            IrlError::InvalidOption { detail: "gamma".into() },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<IrlError>();
    }
}
