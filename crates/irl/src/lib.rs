//! Inverse reinforcement learning for MDPs.
//!
//! Reward Repair assumes the reward function was *learned from expert
//! demonstrations* — in the paper, by maximum-entropy IRL (Ziebart et al.,
//! AAAI 2008). This crate implements that learner from scratch, plus the
//! forward tools it needs:
//!
//! * [`FeatureMap`] — per-state feature vectors with linear rewards
//!   `reward(s) = θᵀ f(s)`;
//! * [`value_iteration`] / [`q_values`] — discounted optimal values, Q
//!   functions and greedy policies for a given reward;
//! * [`maxent_irl`] — gradient-ascent maximum-entropy IRL: soft value
//!   iteration for the trajectory partition function, forward passes for
//!   expected state-visitation frequencies, and feature matching.
//!
//! # Example
//!
//! ```
//! use tml_models::MdpBuilder;
//! use tml_irl::{FeatureMap, value_iteration, ViOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = MdpBuilder::new(2);
//! b.choice(0, "go", &[(1, 1.0)])?;
//! b.choice(0, "stay", &[(0, 1.0)])?;
//! b.choice(1, "stay", &[(1, 1.0)])?;
//! let mdp = b.build()?;
//! // Reward 1 in state 1, 0 elsewhere.
//! let vi = value_iteration(&mdp, &[0.0, 1.0], ViOptions::default())?;
//! assert_eq!(vi.policy[0], 0); // "go" is optimal
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod features;
mod maxent;
mod vi;

pub use error::IrlError;
pub use features::FeatureMap;
pub use maxent::{maxent_irl, soft_policy, visitation_frequencies, IrlOptions, IrlResult};
pub use vi::{
    greedy_policy, policy_evaluation, policy_iteration, q_values, value_iteration, ViOptions,
    ViResult,
};
