//! Prometheus text exposition (format version 0.0.4) for
//! [`MetricsSnapshot`].
//!
//! Mapping from the internal registry to the exposition:
//!
//! * names are prefixed `tml_` and dots become underscores
//!   (`serve.jobs.accepted` → `tml_serve_jobs_accepted_total`);
//! * counters gain the conventional `_total` suffix; gauges keep their
//!   name;
//! * labeled registry keys (`name{k="v"}`, see
//!   [`crate::metrics::labeled_key`]) re-emit their label block verbatim —
//!   it is already in Prometheus sample syntax;
//! * the 64-bucket log2 duration histograms (`span.<name>`) become
//!   `tml_span_<name>_seconds` histograms: bucket `i` (samples with
//!   `floor(log2(ns)) == i`) contributes a cumulative `_bucket` sample at
//!   `le = (2^(i+1) - 1) / 1e9` seconds, followed by the mandatory
//!   `+Inf` bucket, `_sum` (seconds) and `_count`. Empty buckets above the
//!   highest occupied one are elided — cumulative semantics make them
//!   redundant — which keeps a 64-bucket histogram to a handful of lines.
//!
//! Output is deterministic: gauges, then counters, then histograms, each
//! section in lexicographic order with one `# HELP`/`# TYPE` pair per
//! metric family.

use std::collections::BTreeMap;

use crate::metrics::{split_labels, HistogramSnapshot, MetricsSnapshot};

/// The `Content-Type` a `/metrics` response must carry for this format.
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4";

/// Converts a dotted registry name to a Prometheus metric name:
/// `tml_` prefix, dots to underscores, anything outside
/// `[a-zA-Z0-9_:]` to `_`.
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    out.push_str("tml_");
    for ch in name.chars() {
        match ch {
            'a'..='z' | 'A'..='Z' | '0'..='9' | '_' | ':' => out.push(ch),
            _ => out.push('_'),
        }
    }
    out
}

/// Groups registry keys (possibly labeled) by base name, preserving the
/// label block of each sample.
fn group_by_base<'a>(
    entries: impl Iterator<Item = (&'a String, &'a u64)>,
) -> BTreeMap<&'a str, Vec<(Option<&'a str>, u64)>> {
    let mut groups: BTreeMap<&str, Vec<(Option<&str>, u64)>> = BTreeMap::new();
    for (key, value) in entries {
        let (base, labels) = split_labels(key);
        groups.entry(base).or_default().push((labels, *value));
    }
    groups
}

fn render_simple_family(
    out: &mut String,
    base: &str,
    samples: &[(Option<&str>, u64)],
    kind: &str,
    suffix: &str,
) {
    let name = format!("{}{}", sanitize_name(base), suffix);
    out.push_str(&format!("# HELP {name} Registry {kind} '{base}'.\n"));
    out.push_str(&format!("# TYPE {name} {kind}\n"));
    for (labels, value) in samples {
        out.push_str(&name);
        if let Some(block) = labels {
            out.push_str(block);
        }
        out.push_str(&format!(" {value}\n"));
    }
}

/// Nanoseconds rendered as decimal seconds. Rust's `f64` `Display` never
/// uses scientific notation for these magnitudes and emits the shortest
/// round-trip form, which Prometheus parses fine.
fn ns_to_seconds(ns: u64) -> String {
    let s = ns as f64 / 1e9;
    format!("{s}")
}

fn render_histogram_family(out: &mut String, base: &str, hist: &HistogramSnapshot) {
    let name = format!("{}_seconds", sanitize_name(base));
    out.push_str(&format!("# HELP {name} Log2-bucket duration histogram '{base}'.\n"));
    out.push_str(&format!("# TYPE {name} histogram\n"));
    let highest = hist.buckets.iter().rposition(|&b| b > 0);
    let mut cumulative = 0u64;
    if let Some(top) = highest {
        for (i, &b) in hist.buckets.iter().take(top + 1).enumerate() {
            cumulative += b;
            // Upper edge of log2 bucket i is 2^(i+1)-1 nanoseconds.
            let le = if i >= 63 { u64::MAX } else { (1u64 << (i + 1)) - 1 };
            out.push_str(&format!("{name}_bucket{{le=\"{}\"}} {cumulative}\n", ns_to_seconds(le)));
        }
    }
    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", hist.count));
    out.push_str(&format!("{name}_sum {}\n", ns_to_seconds(hist.sum_ns)));
    out.push_str(&format!("{name}_count {}\n", hist.count));
}

/// Renders the snapshot in Prometheus text exposition format 0.0.4.
///
/// An empty snapshot renders to an empty string — a valid (vacuous)
/// exposition, which is what a fail-closed `/metrics` handler should fall
/// back to.
pub fn render_prometheus(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (base, samples) in group_by_base(snapshot.gauges.iter()) {
        render_simple_family(&mut out, base, &samples, "gauge", "");
    }
    for (base, samples) in group_by_base(snapshot.counters.iter()) {
        render_simple_family(&mut out, base, &samples, "counter", "_total");
    }
    for (key, hist) in &snapshot.histograms {
        render_histogram_family(&mut out, key, hist);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    #[test]
    fn names_are_sanitized_with_prefix() {
        assert_eq!(sanitize_name("serve.jobs.accepted"), "tml_serve_jobs_accepted");
        assert_eq!(sanitize_name("span.model_repair"), "tml_span_model_repair");
        assert_eq!(sanitize_name("weird-name!"), "tml_weird_name_");
    }

    #[test]
    fn counters_gauges_and_labels_render() {
        let reg = Registry::new();
        reg.incr_counter("serve.jobs.accepted", 8);
        reg.incr_counter_labeled("serve.http.requests", &[("status", "202")], 5);
        reg.incr_counter_labeled("serve.http.requests", &[("status", "429")], 2);
        reg.set_gauge("serve.jobs.queued", 3);
        let text = render_prometheus(&reg.snapshot());
        assert!(text.contains("# TYPE tml_serve_jobs_queued gauge\n"));
        assert!(text.contains("tml_serve_jobs_queued 3\n"));
        assert!(text.contains("# TYPE tml_serve_jobs_accepted_total counter\n"));
        assert!(text.contains("tml_serve_jobs_accepted_total 8\n"));
        // One TYPE line for the labeled family, two samples under it.
        assert_eq!(text.matches("# TYPE tml_serve_http_requests_total counter").count(), 1);
        assert!(text.contains("tml_serve_http_requests_total{status=\"202\"} 5\n"));
        assert!(text.contains("tml_serve_http_requests_total{status=\"429\"} 2\n"));
    }

    #[test]
    fn histograms_render_cumulative_buckets() {
        let reg = Registry::new();
        // Samples in buckets 0 (1ns) and 2 (4..8ns).
        reg.record_ns("span.solve", 1);
        reg.record_ns("span.solve", 5);
        reg.record_ns("span.solve", 6);
        let text = render_prometheus(&reg.snapshot());
        assert!(text.contains("# TYPE tml_span_solve_seconds histogram\n"));
        // Bucket 0 upper edge 1ns, bucket 1 edge 3ns, bucket 2 edge 7ns.
        assert!(text.contains("tml_span_solve_seconds_bucket{le=\"0.000000001\"} 1\n"));
        assert!(text.contains("tml_span_solve_seconds_bucket{le=\"0.000000003\"} 1\n"));
        assert!(text.contains("tml_span_solve_seconds_bucket{le=\"0.000000007\"} 3\n"));
        assert!(text.contains("tml_span_solve_seconds_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("tml_span_solve_seconds_sum 0.000000012\n"));
        assert!(text.contains("tml_span_solve_seconds_count 3\n"));
        assert!(
            !text.contains("le=\"0.000000015\""),
            "buckets above the highest occupied one are elided"
        );
    }

    #[test]
    fn empty_snapshot_renders_empty_exposition() {
        assert_eq!(render_prometheus(&MetricsSnapshot::new()), "");
    }

    #[test]
    fn empty_histogram_still_has_inf_bucket() {
        let mut snap = MetricsSnapshot::new();
        snap.histograms.insert("span.idle".into(), HistogramSnapshot::default());
        let text = render_prometheus(&snap);
        assert!(text.contains("tml_span_idle_seconds_bucket{le=\"+Inf\"} 0\n"));
        assert!(text.contains("tml_span_idle_seconds_count 0\n"));
    }
}
