//! Offline analysis of `tml-trace/v1` JSONL streams: span-tree
//! reconstruction, self-time attribution, folded-stack (flamegraph) output
//! and per-trace critical paths.
//!
//! This is the library behind `tml trace`. It accepts one or more trace
//! files at once because one logical run can span several processes — a
//! `tml serve` victim that was killed and the process that resumed its
//! journal each write their own trace file, and the seed-deterministic
//! trace ids (see [`crate::TraceContext::derive`]) are what re-link the
//! two halves into one trace.
//!
//! Robustness contract (mirrors `parse_journal_bytes` in `tml-runtime`):
//! a **torn final line** — the partial record a `kill -9` leaves behind —
//! is tolerated and counted, but garbage anywhere else is an error. Spans
//! that never see their `span_end` (the process died while they were
//! open) are kept, marked open, and assigned the duration up to the last
//! timestamp observed in their file.

use std::collections::BTreeMap;

use crate::json;
use crate::jsonl::schema;
use crate::summary::fmt_ns;
use crate::TraceContext;

/// One reconstructed span.
#[derive(Debug, Clone)]
pub struct SpanNode {
    /// Index of the input file this span was read from.
    pub file: usize,
    /// Span id (unique only within its file's subscriber).
    pub id: u64,
    /// Span name.
    pub name: String,
    /// Compact telemetry thread id (file-local).
    pub thread: u64,
    /// Trace id carried by the span start, if any.
    pub trace: Option<u64>,
    /// Start timestamp (monotonic ns in the file's epoch).
    pub start_ns: u64,
    /// Wall time. For open spans (no `span_end` observed) this is the
    /// time from start to the last timestamp seen anywhere in the file.
    pub dur_ns: u64,
    /// Whether the span never closed (crash or torn tail).
    pub open: bool,
    /// Self time: `dur_ns` minus the summed durations of direct children.
    pub self_ns: u64,
    /// Parent span, as an index into [`TraceAnalysis::spans`].
    pub parent: Option<usize>,
    /// Direct children, as indices into [`TraceAnalysis::spans`].
    pub children: Vec<usize>,
}

/// Aggregate view of one trace id (or of the untraced spans).
#[derive(Debug, Clone)]
pub struct TraceGroup {
    /// The trace id, or `None` for the group of untraced root spans.
    pub trace: Option<u64>,
    /// Total spans in the group's trees.
    pub spans: usize,
    /// Spans that never closed.
    pub open_spans: usize,
    /// Distinct input files contributing to this group, sorted.
    pub files: Vec<usize>,
    /// Root spans (no parent in their file), indices into
    /// [`TraceAnalysis::spans`].
    pub roots: Vec<usize>,
    /// Summed root durations.
    pub wall_ns: u64,
    /// The longest root-to-leaf chain by wall duration (span indices).
    pub critical_path: Vec<usize>,
}

/// The result of parsing and reconstructing one or more trace files.
#[derive(Debug, Clone)]
pub struct TraceAnalysis {
    /// Input file names, in the order given.
    pub files: Vec<String>,
    /// Every reconstructed span.
    pub spans: Vec<SpanNode>,
    /// Per-trace aggregates: traced groups sorted by id, then the
    /// untraced group (if any) last.
    pub groups: Vec<TraceGroup>,
    /// Count of torn final lines that were tolerated (at most one per
    /// file).
    pub torn_tails: usize,
}

fn get_u64(v: &json::Value, key: &str) -> Option<u64> {
    v.get(key).and_then(|x| x.as_u64())
}

/// Parses one or more `(name, bytes)` trace files and reconstructs the
/// span forest.
///
/// # Errors
///
/// Returns a human-readable error when a file is missing its
/// `tml-trace/v1` meta line or contains an unparseable line that is not
/// the torn final one.
pub fn parse_trace_bytes(inputs: &[(&str, &[u8])]) -> Result<TraceAnalysis, String> {
    let mut spans: Vec<SpanNode> = Vec::new();
    // (file, span id) -> span index; ids restart per process.
    let mut by_id: BTreeMap<(usize, u64), usize> = BTreeMap::new();
    let mut torn_tails = 0usize;

    for (file_idx, (name, bytes)) in inputs.iter().enumerate() {
        let text = String::from_utf8_lossy(bytes);
        let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
        if lines.is_empty() {
            return Err(format!("{name}: empty trace file"));
        }
        let mut last_at_ns = 0u64;
        let mut saw_meta = false;
        let file_first_span = spans.len();
        for (line_no, line) in lines.iter().enumerate() {
            let is_last = line_no + 1 == lines.len();
            let value = match json::parse(line) {
                Ok(v) => v,
                Err(_) if is_last && line_no > 0 => {
                    // The torn trailing record a kill -9 leaves behind.
                    torn_tails += 1;
                    continue;
                }
                Err(e) => return Err(format!("{name}:{}: invalid JSON: {e:?}", line_no + 1)),
            };
            let ty = value.get("type").and_then(|t| t.as_str()).unwrap_or("");
            match ty {
                "meta" => {
                    let sch = value.get("schema").and_then(|s| s.as_str());
                    if sch != Some(schema::TRACE) {
                        return Err(format!(
                            "{name}: meta schema {sch:?}, expected {:?}",
                            schema::TRACE
                        ));
                    }
                    saw_meta = true;
                    continue;
                }
                "span_start" => {
                    if !saw_meta {
                        return Err(format!("{name}: records before the meta line"));
                    }
                    let (Some(id), Some(thread), Some(at_ns)) = (
                        get_u64(&value, "id"),
                        get_u64(&value, "thread"),
                        get_u64(&value, "at_ns"),
                    ) else {
                        return Err(format!("{name}:{}: span_start missing fields", line_no + 1));
                    };
                    let span_name = value
                        .get("name")
                        .and_then(|n| n.as_str())
                        .unwrap_or("<unnamed>")
                        .to_owned();
                    let trace = value
                        .get("trace")
                        .and_then(|t| t.as_str())
                        .and_then(TraceContext::parse_hex);
                    last_at_ns = last_at_ns.max(at_ns);
                    let idx = spans.len();
                    spans.push(SpanNode {
                        file: file_idx,
                        id,
                        name: span_name,
                        thread,
                        trace,
                        start_ns: at_ns,
                        dur_ns: 0,
                        open: true,
                        self_ns: 0,
                        parent: None,
                        children: Vec::new(),
                    });
                    by_id.insert((file_idx, id), idx);
                    if let Some(p) = get_u64(&value, "parent") {
                        if let Some(&pidx) = by_id.get(&(file_idx, p)) {
                            spans[idx].parent = Some(pidx);
                            spans[pidx].children.push(idx);
                        }
                    }
                }
                "span_end" => {
                    if !saw_meta {
                        return Err(format!("{name}: records before the meta line"));
                    }
                    let (Some(id), Some(at_ns), Some(dur_ns)) = (
                        get_u64(&value, "id"),
                        get_u64(&value, "at_ns"),
                        get_u64(&value, "dur_ns"),
                    ) else {
                        return Err(format!("{name}:{}: span_end missing fields", line_no + 1));
                    };
                    last_at_ns = last_at_ns.max(at_ns);
                    if let Some(&idx) = by_id.get(&(file_idx, id)) {
                        spans[idx].dur_ns = dur_ns;
                        spans[idx].open = false;
                    }
                }
                "counter" => {
                    if let Some(at_ns) = get_u64(&value, "at_ns") {
                        last_at_ns = last_at_ns.max(at_ns);
                    }
                }
                other => {
                    return Err(format!("{name}:{}: unknown record type '{other}'", line_no + 1))
                }
            }
        }
        if !saw_meta {
            return Err(format!("{name}: missing tml-trace/v1 meta line"));
        }
        // Open spans ran until (at least) the last thing the file saw.
        for span in &mut spans[file_first_span..] {
            if span.open {
                span.dur_ns = last_at_ns.saturating_sub(span.start_ns);
            }
        }
    }

    // Self time, bottom-up: children are always pushed after their parent
    // within a file, and parents never cross files, so a reverse pass
    // subtracts child time before the parent is read — but a simple
    // forward accumulation into the parent is clearer.
    let mut child_time = vec![0u64; spans.len()];
    for span in &spans {
        if let Some(p) = span.parent {
            child_time[p] += span.dur_ns;
        }
    }
    for (span, ct) in spans.iter_mut().zip(child_time) {
        span.self_ns = span.dur_ns.saturating_sub(ct);
    }

    let groups = build_groups(&spans);
    Ok(TraceAnalysis {
        files: inputs.iter().map(|(n, _)| (*n).to_owned()).collect(),
        spans,
        groups,
        torn_tails,
    })
}

fn count_tree(spans: &[SpanNode], root: usize) -> (usize, usize) {
    let mut total = 0;
    let mut open = 0;
    let mut stack = vec![root];
    while let Some(idx) = stack.pop() {
        total += 1;
        if spans[idx].open {
            open += 1;
        }
        stack.extend(&spans[idx].children);
    }
    (total, open)
}

fn longest_chain(spans: &[SpanNode], root: usize) -> Vec<usize> {
    let mut path = vec![root];
    let mut cur = root;
    while let Some(&next) = spans[cur].children.iter().max_by_key(|&&c| spans[c].dur_ns) {
        path.push(next);
        cur = next;
    }
    path
}

fn build_groups(spans: &[SpanNode]) -> Vec<TraceGroup> {
    // Group roots by their trace id; every descendant follows its root.
    let mut by_trace: BTreeMap<Option<u64>, Vec<usize>> = BTreeMap::new();
    for (idx, span) in spans.iter().enumerate() {
        if span.parent.is_none() {
            by_trace.entry(span.trace).or_default().push(idx);
        }
    }
    let mut groups: Vec<TraceGroup> = Vec::new();
    for (trace, roots) in by_trace {
        let mut total = 0;
        let mut open = 0;
        let mut files: Vec<usize> = Vec::new();
        let mut wall_ns = 0u64;
        for &root in &roots {
            let (t, o) = count_tree(spans, root);
            total += t;
            open += o;
            wall_ns += spans[root].dur_ns;
            if !files.contains(&spans[root].file) {
                files.push(spans[root].file);
            }
        }
        files.sort_unstable();
        let critical_path = roots
            .iter()
            .max_by_key(|&&r| spans[r].dur_ns)
            .map(|&r| longest_chain(spans, r))
            .unwrap_or_default();
        groups.push(TraceGroup {
            trace,
            spans: total,
            open_spans: open,
            files,
            roots,
            wall_ns,
            critical_path,
        });
    }
    // Traced groups first (BTreeMap puts None first; move it last).
    if groups.first().is_some_and(|g| g.trace.is_none()) {
        groups.rotate_left(1);
    }
    groups
}

impl TraceAnalysis {
    /// Folded-stack output: one line per distinct root-to-span name path,
    /// `a;b;c <self ns>`, aggregated and sorted — the input format
    /// flamegraph tooling consumes. Open spans contribute their partial
    /// self time.
    pub fn folded(&self) -> String {
        let mut stacks: BTreeMap<String, u64> = BTreeMap::new();
        for (idx, span) in self.spans.iter().enumerate() {
            if span.self_ns == 0 {
                continue;
            }
            let mut names = vec![span.name.as_str()];
            let mut cur = idx;
            while let Some(p) = self.spans[cur].parent {
                names.push(self.spans[p].name.as_str());
                cur = p;
            }
            names.reverse();
            *stacks.entry(names.join(";")).or_insert(0) += span.self_ns;
        }
        let mut out = String::new();
        for (stack, self_ns) in stacks {
            out.push_str(&stack);
            out.push(' ');
            out.push_str(&self_ns.to_string());
            out.push('\n');
        }
        out
    }

    /// Human-readable per-trace summary with critical paths.
    pub fn render_summary(&self) -> String {
        let mut out = format!(
            "{} file(s), {} span(s), {} torn tail line(s)\n",
            self.files.len(),
            self.spans.len(),
            self.torn_tails
        );
        for group in &self.groups {
            let label = match group.trace {
                Some(t) => format!("trace {t:016x}"),
                None => "untraced".to_owned(),
            };
            out.push_str(&format!(
                "{label}: {} span(s) ({} open), {} file(s), wall {}\n",
                group.spans,
                group.open_spans,
                group.files.len(),
                fmt_ns(group.wall_ns)
            ));
            if !group.critical_path.is_empty() {
                out.push_str("  critical path:");
                for (i, &idx) in group.critical_path.iter().enumerate() {
                    let span = &self.spans[idx];
                    if i > 0 {
                        out.push_str(" ->");
                    }
                    out.push_str(&format!(
                        " {} {}{}",
                        span.name,
                        fmt_ns(span.dur_ns),
                        if span.open { " (open)" } else { "" }
                    ));
                }
                out.push('\n');
            }
        }
        out
    }

    /// The group for a specific trace id, if present.
    pub fn group(&self, trace: u64) -> Option<&TraceGroup> {
        self.groups.iter().find(|g| g.trace == Some(trace))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> String {
        crate::event::Event::meta_line("test")
    }

    fn start(id: u64, parent: Option<u64>, name: &str, at: u64, trace: Option<u64>) -> String {
        crate::event::Event::SpanStart {
            id,
            parent,
            name: name.into(),
            thread: 1,
            at_ns: at,
            trace,
            fields: vec![],
        }
        .to_json_line()
    }

    fn end(id: u64, name: &str, at: u64, dur: u64) -> String {
        crate::event::Event::SpanEnd { id, name: name.into(), thread: 1, at_ns: at, dur_ns: dur }
            .to_json_line()
    }

    #[test]
    fn rebuilds_nested_spans_with_self_time() {
        let file = [
            meta(),
            start(1, None, "root", 0, Some(7)),
            start(2, Some(1), "child", 10, Some(7)),
            end(2, "child", 40, 30),
            end(1, "root", 100, 100),
        ]
        .join("\n");
        let a = parse_trace_bytes(&[("t.jsonl", file.as_bytes())]).unwrap();
        assert_eq!(a.spans.len(), 2);
        assert_eq!(a.torn_tails, 0);
        let root = &a.spans[0];
        assert_eq!(root.dur_ns, 100);
        assert_eq!(root.self_ns, 70, "root self time excludes the child");
        assert_eq!(a.groups.len(), 1);
        let g = a.group(7).unwrap();
        assert_eq!(g.spans, 2);
        assert_eq!(g.critical_path.len(), 2);
        let folded = a.folded();
        assert!(folded.contains("root 70\n"));
        assert!(folded.contains("root;child 30\n"));
    }

    #[test]
    fn torn_tail_is_tolerated_and_open_spans_estimated() {
        let file = format!(
            "{}\n{}\n{}\n{}",
            meta(),
            start(1, None, "job", 0, Some(3)),
            end(99, "other", 500, 1), // later timestamp, unknown id: ignored
            "{\"type\":\"span_sta"    // torn by kill -9
        );
        let a = parse_trace_bytes(&[("t.jsonl", file.as_bytes())]).unwrap();
        assert_eq!(a.torn_tails, 1);
        let span = &a.spans[0];
        assert!(span.open);
        assert_eq!(span.dur_ns, 500, "open span runs to the file's last timestamp");
        assert_eq!(a.group(3).unwrap().open_spans, 1);
    }

    #[test]
    fn garbage_before_the_tail_is_an_error() {
        let file = format!("{}\nnot json\n{}", meta(), start(1, None, "x", 0, None));
        assert!(parse_trace_bytes(&[("t.jsonl", file.as_bytes())]).is_err());
        assert!(parse_trace_bytes(&[("t.jsonl", b"")]).is_err());
        let no_meta = start(1, None, "x", 0, None);
        assert!(parse_trace_bytes(&[("t.jsonl", no_meta.as_bytes())]).is_err());
    }

    #[test]
    fn one_trace_relinks_across_two_files() {
        // The crash-boundary scenario: the victim opens the job span and
        // dies; the resumed process re-derives the same trace id and runs
        // the job to completion in its own file.
        let victim =
            [meta(), start(1, None, "serve.submit", 0, Some(42)), end(1, "serve.submit", 5, 5)]
                .join("\n");
        let resumed = [
            meta(),
            start(1, None, "serve.job", 0, Some(42)),
            start(2, Some(1), "pipeline.run", 1, Some(42)),
            end(2, "pipeline.run", 90, 89),
            end(1, "serve.job", 100, 100),
        ]
        .join("\n");
        let a = parse_trace_bytes(&[
            ("victim.jsonl", victim.as_bytes()),
            ("resumed.jsonl", resumed.as_bytes()),
        ])
        .unwrap();
        let g = a.group(42).expect("one group for the shared trace id");
        assert_eq!(g.files, vec![0, 1], "both files contribute to the trace");
        assert_eq!(g.spans, 3);
        assert_eq!(g.roots.len(), 2, "one root per process");
        let summary = a.render_summary();
        assert!(summary.contains("2 file(s)"), "{summary}");
        assert!(summary.contains(&format!("trace {:016x}", 42)), "{summary}");
    }

    #[test]
    fn span_ids_do_not_collide_across_files() {
        // Both files use span id 1; they must stay distinct spans.
        let f1 = [meta(), start(1, None, "a", 0, None), end(1, "a", 10, 10)].join("\n");
        let f2 = [meta(), start(1, None, "b", 0, None), end(1, "b", 20, 20)].join("\n");
        let a = parse_trace_bytes(&[("f1", f1.as_bytes()), ("f2", f2.as_bytes())]).unwrap();
        assert_eq!(a.spans.len(), 2);
        assert_eq!(a.spans[0].dur_ns, 10);
        assert_eq!(a.spans[1].dur_ns, 20);
    }
}
