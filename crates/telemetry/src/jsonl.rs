//! Shared line-framed JSONL infrastructure for every `tml-*/v1` stream.
//!
//! Three streams in the workspace speak self-describing JSONL — the
//! telemetry trace (`tml-trace/v1`), the conformance report
//! (`tml-conformance/v1`) and the batch-runtime journal
//! (`tml-journal/v1`). They share one framing contract:
//!
//! * one JSON object per line, each carrying a `"type"` discriminator;
//! * the first line is a `meta` record naming the schema;
//! * a trailing `summary` record closes well-formed streams (journals that
//!   were killed mid-run legitimately lack one).
//!
//! This module is the single home of that contract: the [`schema`]
//! constants, a [`LineBuilder`] for constructing record lines without a
//! serialization dependency, and a [`JsonlWriter`] wrapping any
//! `Write` with line-atomic (and optionally durable) appends.

use std::io::{self, Write};
use std::sync::Mutex;

use crate::json;

/// Schema-version identifiers for every JSONL stream the workspace emits.
/// New readers must match these strings exactly; bumping a version means
/// adding a new constant, never editing one in place.
pub mod schema {
    /// Telemetry trace stream (spans + counters); see DESIGN.md §9.
    pub const TRACE: &str = "tml-trace/v1";
    /// Conformance / differential-oracle reports; see DESIGN.md §10.
    pub const CONFORMANCE: &str = "tml-conformance/v1";
    /// Batch-repair write-ahead journal and final report; see DESIGN.md §11.
    pub const JOURNAL: &str = "tml-journal/v1";
    /// Serve-layer request log (one record per HTTP request); see
    /// DESIGN.md §12.
    pub const SERVE: &str = "tml-serve/v1";
}

/// Builds one JSONL record — a single-line JSON object with a leading
/// `"type"` field — by appending typed fields in call order.
///
/// # Example
///
/// ```
/// use tml_telemetry::jsonl::LineBuilder;
///
/// let line = LineBuilder::record("attempt").u64("job", 3).str("stage", "verify").finish();
/// assert_eq!(line, r#"{"type":"attempt","job":3,"stage":"verify"}"#);
/// ```
#[derive(Debug)]
pub struct LineBuilder {
    buf: String,
}

impl LineBuilder {
    /// Starts a record of the given `type`.
    pub fn record(ty: &str) -> Self {
        let mut buf = String::from("{\"type\":");
        json::write_string(&mut buf, ty);
        LineBuilder { buf }
    }

    /// Starts a `meta` record declaring a schema from [`schema`].
    pub fn meta(schema_id: &str) -> Self {
        LineBuilder::record("meta").str("schema", schema_id)
    }

    /// Appends a string field (JSON-escaped).
    #[must_use]
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.key(key);
        json::write_string(&mut self.buf, value);
        self
    }

    /// Appends an unsigned integer field.
    #[must_use]
    pub fn u64(mut self, key: &str, value: u64) -> Self {
        self.key(key);
        self.buf.push_str(&value.to_string());
        self
    }

    /// Appends a float field (`null` for non-finite values, matching the
    /// rest of the workspace's JSON emitters).
    #[must_use]
    pub fn f64(mut self, key: &str, value: f64) -> Self {
        self.key(key);
        json::write_f64(&mut self.buf, value);
        self
    }

    /// Appends a boolean field.
    #[must_use]
    pub fn bool(mut self, key: &str, value: bool) -> Self {
        self.key(key);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Appends a pre-serialized JSON value verbatim (arrays, nested
    /// objects, `null`). The caller is responsible for its validity.
    #[must_use]
    pub fn raw(mut self, key: &str, value: &str) -> Self {
        self.key(key);
        self.buf.push_str(value);
        self
    }

    /// Appends a string field when `value` is `Some`, `null` otherwise.
    #[must_use]
    pub fn opt_str(self, key: &str, value: Option<&str>) -> Self {
        match value {
            Some(v) => self.str(key, v),
            None => self.raw(key, "null"),
        }
    }

    /// Closes the record and returns the line (without a trailing newline).
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }

    fn key(&mut self, key: &str) {
        self.buf.push(',');
        json::write_string(&mut self.buf, key);
        self.buf.push(':');
    }
}

/// A thread-safe line-at-a-time JSONL writer.
///
/// Every [`line`](Self::line) call appends exactly one record and a
/// newline while holding an internal mutex, so concurrent writers never
/// interleave partial lines. In *durable* mode the writer additionally
/// flushes after every line — the write-ahead contract the batch journal
/// relies on: after a `kill -9`, the journal contains every fully-written
/// record plus at most one torn trailing line.
pub struct JsonlWriter<W: Write + Send> {
    inner: Mutex<W>,
    durable: bool,
}

impl<W: Write + Send> JsonlWriter<W> {
    /// A buffered writer (flush on demand / drop of the inner writer).
    pub fn new(inner: W) -> Self {
        JsonlWriter { inner: Mutex::new(inner), durable: false }
    }

    /// A write-ahead writer: every line is flushed before `line` returns.
    pub fn durable(inner: W) -> Self {
        JsonlWriter { inner: Mutex::new(inner), durable: true }
    }

    /// Appends one record line atomically.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn line(&self, record: &str) -> io::Result<()> {
        debug_assert!(!record.contains('\n'), "JSONL records must be single lines");
        let mut w = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        writeln!(w, "{record}")?;
        if self.durable {
            w.flush()?;
        }
        Ok(())
    }

    /// Flushes the underlying writer.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn flush(&self) -> io::Result<()> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).flush()
    }

    /// Unwraps the underlying writer (tests: inspect the buffer).
    pub fn into_inner(self) -> W {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_frames_records() {
        let line = LineBuilder::meta(schema::JOURNAL)
            .str("tool", "tml")
            .u64("jobs", 32)
            .f64("theta", 0.5)
            .f64("nan", f64::NAN)
            .bool("resumed", false)
            .raw("x", "[1,2]")
            .opt_str("family", None)
            .finish();
        assert_eq!(
            line,
            "{\"type\":\"meta\",\"schema\":\"tml-journal/v1\",\"tool\":\"tml\",\"jobs\":32,\
             \"theta\":0.5,\"nan\":null,\"resumed\":false,\"x\":[1,2],\"family\":null}"
        );
        let v = json::parse(&line).unwrap();
        assert_eq!(v.get("schema").and_then(|s| s.as_str()), Some(schema::JOURNAL));
    }

    #[test]
    fn builder_escapes_strings() {
        let line = LineBuilder::record("failure").str("detail", "panic: \"boom\"\n").finish();
        let v = json::parse(&line).unwrap();
        assert_eq!(v.get("detail").and_then(|s| s.as_str()), Some("panic: \"boom\"\n"));
    }

    #[test]
    fn writer_appends_lines_atomically() {
        let w = JsonlWriter::new(Vec::new());
        w.line("{\"type\":\"a\"}").unwrap();
        w.line("{\"type\":\"b\"}").unwrap();
        let text = String::from_utf8(w.into_inner()).unwrap();
        assert_eq!(text, "{\"type\":\"a\"}\n{\"type\":\"b\"}\n");
    }

    #[test]
    fn durable_writer_flushes_every_line() {
        struct CountingFlush(Vec<u8>, usize);
        impl Write for CountingFlush {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.0.extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                self.1 += 1;
                Ok(())
            }
        }
        let w = JsonlWriter::durable(CountingFlush(Vec::new(), 0));
        w.line("{}").unwrap();
        w.line("{}").unwrap();
        let inner = w.into_inner();
        assert_eq!(inner.1, 2, "one flush per line");
    }
}
