//! `telemetry_schema_check` — validates the JSONL artifacts this
//! workspace emits, dispatching on the schema the file declares.
//!
//! Usage: `telemetry_schema_check [--metrics] <file>`
//!
//! Line 1 must be a `meta` record naming a known schema; the rest of the
//! file is checked against that schema's rules:
//!
//! * `tml-trace/v1` — every line is a `span_start`/`span_end`/`counter`
//!   with its required fields; every `span_end` matches an open
//!   `span_start` of the same name; parents exist; spans on a thread
//!   close LIFO; `at_ns` is non-decreasing per thread; a `trace` field,
//!   when present, is a 16-hex-digit id.
//! * `tml-journal/v1` — every record is a known journal transition
//!   (`submit`/`attempt`/`checkpoint`/`failure`/`outcome`/`resume`/
//!   `summary`) with its required fields; job ids submit at most once and
//!   conclude at most once; a torn final line is tolerated (the journal's
//!   crash contract) but mid-file garbage is not.
//! * `tml-serve/v1` — every record is a `request` with `seq`, `method`,
//!   `path` and a sane `status`; `seq` increases strictly from 0 (no
//!   dropped or duplicated log lines).
//!
//! With `--metrics` the file is instead checked as a Prometheus text
//! exposition (format 0.0.4), the output of `/metrics`: every sample
//! belongs to a family declared by a preceding `# TYPE` line, families
//! are contiguous, histogram buckets are cumulative and the mandatory
//! `+Inf` bucket equals `_count`.
//!
//! Exits 0 and prints a one-line summary on success; exits 1 with the
//! first offending line number otherwise. CI runs this against the
//! bench-smoke trace, the serve-smoke journal and request log, and the
//! obs-smoke `/metrics` scrape.

use std::collections::HashMap;
use std::process::ExitCode;

use tml_telemetry::json::{self, Value};
use tml_telemetry::jsonl::schema;
use tml_telemetry::TraceContext;

fn main() -> ExitCode {
    let mut metrics_mode = false;
    let mut path: Option<String> = None;
    for arg in std::env::args().skip(1) {
        if arg == "--metrics" {
            metrics_mode = true;
        } else {
            path = Some(arg);
        }
    }
    let Some(path) = path else {
        eprintln!("usage: telemetry_schema_check [--metrics] <file>");
        return ExitCode::FAILURE;
    };
    let content = match std::fs::read_to_string(&path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = if metrics_mode { validate_metrics(&content) } else { validate(&content) };
    match result {
        Ok(summary) => {
            println!("ok: {summary}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Validates an optional `trace` field: when present it must be a string
/// of exactly 16 hex digits (the wire form of a 64-bit trace id).
fn check_trace_field(v: &Value, line: usize) -> Result<(), String> {
    match v.get("trace") {
        None => Ok(()),
        Some(t) if t.is_null() => Ok(()),
        Some(t) => {
            let s =
                t.as_str().ok_or_else(|| format!("line {line}: \"trace\" must be a hex string"))?;
            if TraceContext::parse_hex(s).is_none() {
                return Err(format!("line {line}: \"trace\" '{s}' is not 16 hex digits"));
            }
            Ok(())
        }
    }
}

fn field_u64(v: &Value, key: &str, line: usize) -> Result<u64, String> {
    v.get(key)
        .and_then(|x| x.as_u64())
        .ok_or_else(|| format!("line {line}: missing or non-integer \"{key}\""))
}

fn field_str<'a>(v: &'a Value, key: &str, line: usize) -> Result<&'a str, String> {
    v.get(key)
        .and_then(|x| x.as_str())
        .ok_or_else(|| format!("line {line}: missing or non-string \"{key}\""))
}

/// Parses the meta line and dispatches to the schema's validator.
fn validate(content: &str) -> Result<String, String> {
    let meta_line = content.lines().next().ok_or("empty file")?;
    let meta = json::parse(meta_line).map_err(|e| format!("line 1: {e}"))?;
    if meta.get("type").and_then(|v| v.as_str()) != Some("meta") {
        return Err("line 1: first record must have type \"meta\"".into());
    }
    match meta.get("schema").and_then(|v| v.as_str()) {
        Some(s) if s == schema::TRACE => validate_trace(content),
        Some(s) if s == schema::JOURNAL => validate_journal(&meta, content),
        Some(s) if s == schema::SERVE => validate_serve(content),
        Some(other) => Err(format!("line 1: unknown schema \"{other}\"")),
        None => Err("line 1: meta record missing \"schema\"".into()),
    }
}

// ---------------------------------------------------------------------
// tml-journal/v1

const JOURNAL_STATUSES: [&str; 6] =
    ["satisfied", "model_repaired", "data_repaired", "unrepairable", "violated", "failed"];

fn validate_journal(meta: &Value, content: &str) -> Result<String, String> {
    field_str(meta, "corpus_seed", 1)?;
    for key in ["jobs", "max_attempts", "workers"] {
        field_u64(meta, key, 1)?;
    }

    let mut submitted: HashMap<u64, ()> = HashMap::new();
    let mut concluded: HashMap<u64, ()> = HashMap::new();
    let (mut records, mut torn) = (0usize, false);
    let last_idx = content.lines().count().saturating_sub(1);
    for (idx, raw) in content.lines().enumerate().skip(1) {
        let line_no = idx + 1;
        if raw.trim().is_empty() {
            continue;
        }
        let v = match json::parse(raw) {
            Ok(v) => v,
            // The crash contract: a `kill -9` may tear the final line
            // mid-write. Anywhere else, garbage is corruption.
            Err(_) if idx == last_idx => {
                torn = true;
                break;
            }
            Err(e) => return Err(format!("line {line_no}: {e}")),
        };
        records += 1;
        match field_str(&v, "type", line_no)? {
            "submit" => {
                let job = field_u64(&v, "job", line_no)?;
                match field_str(&v, "kind", line_no)? {
                    "corpus" => {
                        field_u64(&v, "index", line_no)?;
                    }
                    "verify" => {
                        field_str(&v, "model", line_no)?;
                        field_str(&v, "property", line_no)?;
                    }
                    other => {
                        return Err(format!("line {line_no}: unknown submit kind \"{other}\""))
                    }
                }
                check_trace_field(&v, line_no)?;
                if submitted.insert(job, ()).is_some() {
                    return Err(format!("line {line_no}: job {job} submitted twice"));
                }
            }
            "attempt" => {
                field_u64(&v, "job", line_no)?;
                if field_u64(&v, "attempt", line_no)? == 0 {
                    return Err(format!("line {line_no}: attempts are 1-based"));
                }
            }
            "checkpoint" => {
                field_u64(&v, "job", line_no)?;
                field_u64(&v, "attempt", line_no)?;
                field_str(&v, "stage", line_no)?;
                v.get("x").ok_or_else(|| format!("line {line_no}: checkpoint missing \"x\""))?;
            }
            "failure" => {
                field_u64(&v, "job", line_no)?;
                field_u64(&v, "attempt", line_no)?;
                field_str(&v, "kind", line_no)?;
                field_str(&v, "detail", line_no)?;
            }
            "outcome" => {
                let job = field_u64(&v, "job", line_no)?;
                field_u64(&v, "attempts", line_no)?;
                field_u64(&v, "evaluations", line_no)?;
                field_str(&v, "detail", line_no)?;
                let status = field_str(&v, "status", line_no)?;
                if !JOURNAL_STATUSES.contains(&status) {
                    return Err(format!("line {line_no}: unknown status \"{status}\""));
                }
                if concluded.insert(job, ()).is_some() {
                    return Err(format!("line {line_no}: job {job} concluded twice"));
                }
            }
            "resume" => {
                field_u64(&v, "completed", line_no)?;
            }
            "summary" => {
                field_u64(&v, "jobs", line_no)?;
                for key in JOURNAL_STATUSES {
                    field_u64(&v, key, line_no)?;
                }
                field_u64(&v, "retries", line_no)?;
            }
            other => return Err(format!("line {line_no}: unknown record type \"{other}\"")),
        }
    }
    Ok(format!(
        "{records} journal records ({} submissions, {} outcomes{})",
        submitted.len(),
        concluded.len(),
        if torn { ", torn final line" } else { "" }
    ))
}

// ---------------------------------------------------------------------
// tml-serve/v1

fn validate_serve(content: &str) -> Result<String, String> {
    let mut requests = 0u64;
    let last_idx = content.lines().count().saturating_sub(1);
    for (idx, raw) in content.lines().enumerate().skip(1) {
        let line_no = idx + 1;
        if raw.trim().is_empty() {
            continue;
        }
        // A `kill -9` can land mid-write: the final line may be torn,
        // exactly as in journals. Earlier malformed lines stay fatal.
        let v = match json::parse(raw) {
            Ok(v) => v,
            Err(_) if idx == last_idx => break,
            Err(e) => return Err(format!("line {line_no}: {e}")),
        };
        match field_str(&v, "type", line_no)? {
            "request" => {
                let seq = field_u64(&v, "seq", line_no)?;
                if seq != requests {
                    return Err(format!(
                        "line {line_no}: seq {seq} out of order (expected {requests})"
                    ));
                }
                field_str(&v, "method", line_no)?;
                field_str(&v, "path", line_no)?;
                let status = field_u64(&v, "status", line_no)?;
                if !(100..=599).contains(&status) {
                    return Err(format!("line {line_no}: implausible status {status}"));
                }
                check_trace_field(&v, line_no)?;
                requests += 1;
            }
            other => return Err(format!("line {line_no}: unknown record type \"{other}\"")),
        }
    }
    Ok(format!("{requests} request records, seq contiguous"))
}

// ---------------------------------------------------------------------
// tml-trace/v1

fn validate_trace(content: &str) -> Result<String, String> {
    // Per-span-id: (name, thread). Per-thread: open-span stack + last at_ns.
    let mut started: HashMap<u64, (String, u64)> = HashMap::new();
    let mut closed: HashMap<u64, ()> = HashMap::new();
    let mut stacks: HashMap<u64, Vec<u64>> = HashMap::new();
    let mut last_at: HashMap<u64, u64> = HashMap::new();
    let (mut events, mut spans, mut counters) = (0usize, 0usize, 0usize);

    for (idx, raw) in content.lines().enumerate().skip(1) {
        let line_no = idx + 1;
        if raw.trim().is_empty() {
            continue;
        }
        let v = json::parse(raw).map_err(|e| format!("line {line_no}: {e}"))?;
        let ty = field_str(&v, "type", line_no)?;
        let thread = field_u64(&v, "thread", line_no)?;
        let at_ns = field_u64(&v, "at_ns", line_no)?;
        if let Some(&prev) = last_at.get(&thread) {
            if at_ns < prev {
                return Err(format!(
                    "line {line_no}: at_ns {at_ns} goes backwards on thread {thread} (prev {prev})"
                ));
            }
        }
        last_at.insert(thread, at_ns);
        events += 1;
        match ty {
            "span_start" => {
                let id = field_u64(&v, "id", line_no)?;
                let name = field_str(&v, "name", line_no)?.to_owned();
                let parent = v
                    .get("parent")
                    .ok_or_else(|| format!("line {line_no}: span_start missing \"parent\""))?;
                if !parent.is_null() {
                    let pid = parent
                        .as_u64()
                        .ok_or_else(|| format!("line {line_no}: parent must be null or an id"))?;
                    if !started.contains_key(&pid) && !closed.contains_key(&pid) {
                        return Err(format!("line {line_no}: parent {pid} was never started"));
                    }
                }
                v.get("fields")
                    .and_then(|f| f.as_object())
                    .ok_or_else(|| format!("line {line_no}: span_start missing \"fields\""))?;
                check_trace_field(&v, line_no)?;
                if started.insert(id, (name, thread)).is_some() {
                    return Err(format!("line {line_no}: duplicate span id {id}"));
                }
                stacks.entry(thread).or_default().push(id);
                spans += 1;
            }
            "span_end" => {
                let id = field_u64(&v, "id", line_no)?;
                let name = field_str(&v, "name", line_no)?;
                field_u64(&v, "dur_ns", line_no)?;
                let Some((start_name, _)) = started.remove(&id) else {
                    return Err(format!(
                        "line {line_no}: span_end for id {id} without a matching span_start"
                    ));
                };
                if start_name != name {
                    return Err(format!(
                        "line {line_no}: span {id} started as \"{start_name}\" but ended as \"{name}\""
                    ));
                }
                let stack = stacks.entry(thread).or_default();
                if stack.last() == Some(&id) {
                    stack.pop();
                } else {
                    // A guard may legitimately close on a different thread
                    // than it opened on (moved across a scope boundary);
                    // remove it from whichever stack holds it.
                    for s in stacks.values_mut() {
                        s.retain(|&x| x != id);
                    }
                }
                closed.insert(id, ());
            }
            "counter" => {
                field_str(&v, "name", line_no)?;
                field_u64(&v, "value", line_no)?;
                check_trace_field(&v, line_no)?;
                counters += 1;
            }
            other => {
                return Err(format!("line {line_no}: unknown event type \"{other}\""));
            }
        }
    }
    if !started.is_empty() {
        let mut ids: Vec<&u64> = started.keys().collect();
        ids.sort();
        return Err(format!("trace ended with {} unclosed span(s): {ids:?}", started.len()));
    }
    Ok(format!("{events} events ({spans} spans, {counters} counters), {} threads", last_at.len()))
}

// ---------------------------------------------------------------------
// Prometheus text exposition (0.0.4)

fn valid_prom_name(name: &str) -> bool {
    let mut bytes = name.bytes();
    match bytes.next() {
        Some(b) if b.is_ascii_alphabetic() || b == b'_' || b == b':' => {}
        _ => return false,
    }
    bytes.all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b':')
}

/// Histogram families accumulate bucket samples so the cumulative and
/// `+Inf == _count` invariants can be checked when the family closes.
#[derive(Default)]
struct HistogramState {
    buckets: Vec<(f64, f64)>, // (le, cumulative)
    inf: Option<f64>,
    count: Option<f64>,
}

fn close_histogram(family: &str, st: &HistogramState) -> Result<(), String> {
    let inf = st.inf.ok_or_else(|| format!("histogram {family} missing +Inf bucket"))?;
    let count = st.count.ok_or_else(|| format!("histogram {family} missing _count"))?;
    if inf != count {
        return Err(format!("histogram {family}: +Inf bucket {inf} != _count {count}"));
    }
    let mut prev_le = f64::NEG_INFINITY;
    let mut prev_cum = 0.0_f64;
    for (le, cum) in &st.buckets {
        if *le <= prev_le {
            return Err(format!("histogram {family}: bucket le {le} not increasing"));
        }
        if *cum < prev_cum {
            return Err(format!("histogram {family}: bucket counts not cumulative at le {le}"));
        }
        if *cum > inf {
            return Err(format!("histogram {family}: bucket at le {le} exceeds +Inf"));
        }
        prev_le = *le;
        prev_cum = *cum;
    }
    Ok(())
}

/// The family a sample name belongs to, honoring histogram suffixes.
fn sample_family<'a>(name: &'a str, types: &HashMap<String, String>) -> &'a str {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if types.get(base).map(String::as_str) == Some("histogram") {
                return base;
            }
        }
    }
    name
}

fn validate_metrics(content: &str) -> Result<String, String> {
    let mut types: HashMap<String, String> = HashMap::new();
    let mut finished: HashMap<String, ()> = HashMap::new();
    let mut current: Option<String> = None;
    let mut hist = HistogramState::default();
    let mut samples = 0usize;

    let switch_family = |current: &mut Option<String>,
                         hist: &mut HistogramState,
                         finished: &mut HashMap<String, ()>,
                         types: &HashMap<String, String>,
                         next: Option<String>|
     -> Result<(), String> {
        if let Some(prev) = current.take() {
            if types.get(&prev).map(String::as_str) == Some("histogram") {
                close_histogram(&prev, hist)?;
            }
            *hist = HistogramState::default();
            finished.insert(prev, ());
        }
        *current = next;
        Ok(())
    };

    for (idx, raw) in content.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let mut parts = rest.splitn(3, ' ');
            let keyword = parts.next().unwrap_or("");
            let name = parts.next().unwrap_or("");
            let detail = parts.next().unwrap_or("");
            match keyword {
                "HELP" => {
                    if !valid_prom_name(name) {
                        return Err(format!("line {line_no}: bad metric name '{name}'"));
                    }
                }
                "TYPE" => {
                    if !valid_prom_name(name) {
                        return Err(format!("line {line_no}: bad metric name '{name}'"));
                    }
                    if !["counter", "gauge", "histogram", "summary", "untyped"].contains(&detail) {
                        return Err(format!("line {line_no}: unknown type '{detail}'"));
                    }
                    if finished.contains_key(name) || current.as_deref() == Some(name) {
                        return Err(format!("line {line_no}: TYPE for '{name}' after its samples"));
                    }
                    if types.insert(name.to_owned(), detail.to_owned()).is_some() {
                        return Err(format!("line {line_no}: duplicate TYPE for '{name}'"));
                    }
                }
                other => return Err(format!("line {line_no}: unknown comment '# {other}'")),
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // plain comment
        }
        // A sample: name[{labels}] value
        let (name_part, value_part) = match line.find('{') {
            Some(brace) => {
                let close = line[brace..]
                    .find('}')
                    .map(|i| brace + i)
                    .ok_or_else(|| format!("line {line_no}: unclosed label block"))?;
                (&line[..close + 1], line[close + 1..].trim())
            }
            None => {
                let sp = line
                    .find(' ')
                    .ok_or_else(|| format!("line {line_no}: sample missing value"))?;
                (&line[..sp], line[sp + 1..].trim())
            }
        };
        let (name, labels) = match name_part.find('{') {
            Some(i) => (&name_part[..i], Some(&name_part[i..])),
            None => (name_part, None),
        };
        if !valid_prom_name(name) {
            return Err(format!("line {line_no}: bad sample name '{name}'"));
        }
        let value: f64 = value_part
            .parse()
            .map_err(|_| format!("line {line_no}: bad sample value '{value_part}'"))?;
        let family = sample_family(name, &types).to_owned();
        let kind = types
            .get(&family)
            .ok_or_else(|| format!("line {line_no}: sample '{name}' has no # TYPE"))?
            .clone();
        if current.as_deref() != Some(family.as_str()) {
            if finished.contains_key(&family) {
                return Err(format!("line {line_no}: family '{family}' is not contiguous"));
            }
            switch_family(&mut current, &mut hist, &mut finished, &types, Some(family.clone()))?;
        }
        if kind == "histogram" {
            if let Some(lbl) = name.strip_suffix("_bucket").and(labels) {
                let le = lbl
                    .strip_prefix("{le=\"")
                    .and_then(|s| s.strip_suffix("\"}"))
                    .ok_or_else(|| format!("line {line_no}: _bucket needs an le label"))?;
                if le == "+Inf" {
                    hist.inf = Some(value);
                } else {
                    let le: f64 =
                        le.parse().map_err(|_| format!("line {line_no}: bad le '{le}'"))?;
                    hist.buckets.push((le, value));
                }
            } else if name.ends_with("_count") {
                hist.count = Some(value);
            } else if !name.ends_with("_sum") {
                return Err(format!(
                    "line {line_no}: '{name}' is not a histogram sample of '{family}'"
                ));
            }
        } else if value < 0.0 && kind == "counter" {
            return Err(format!("line {line_no}: counter '{name}' is negative"));
        }
        samples += 1;
    }
    switch_family(&mut current, &mut hist, &mut finished, &types, None)?;
    Ok(format!("{} metric families, {samples} samples", types.len()))
}

#[cfg(test)]
mod tests {
    use super::{validate, validate_metrics};

    const TRACE_META: &str = "{\"type\":\"meta\",\"schema\":\"tml-trace/v1\",\"tool\":\"t\"}";
    const JOURNAL_META: &str = "{\"type\":\"meta\",\"schema\":\"tml-journal/v1\",\
        \"corpus_seed\":\"7\",\"jobs\":2,\"max_attempts\":3,\"workers\":1}";
    const SERVE_META: &str =
        "{\"type\":\"meta\",\"schema\":\"tml-serve/v1\",\"tool\":\"tml-serve\"}";

    fn file(meta: &str, lines: &[&str]) -> String {
        let mut out = String::from(meta);
        for l in lines {
            out.push('\n');
            out.push_str(l);
        }
        out
    }

    #[test]
    fn accepts_well_formed_trace() {
        let t = file(
            TRACE_META,
            &[
                r#"{"type":"span_start","id":1,"parent":null,"name":"a","thread":1,"at_ns":0,"fields":{}}"#,
                r#"{"type":"span_start","id":2,"parent":1,"name":"b","thread":1,"at_ns":5,"fields":{"k":3}}"#,
                r#"{"type":"counter","name":"c","value":2,"thread":1,"at_ns":6}"#,
                r#"{"type":"span_end","id":2,"name":"b","thread":1,"at_ns":9,"dur_ns":4}"#,
                r#"{"type":"span_end","id":1,"name":"a","thread":1,"at_ns":10,"dur_ns":10}"#,
            ],
        );
        assert!(validate(&t).unwrap().starts_with("5 events (2 spans, 1 counters)"));
    }

    #[test]
    fn rejects_bad_meta_and_structural_errors() {
        assert!(validate("").is_err());
        assert!(validate("{\"type\":\"meta\",\"schema\":\"other\"}").is_err());
        // End without start.
        let t = file(
            TRACE_META,
            &[r#"{"type":"span_end","id":9,"name":"x","thread":1,"at_ns":1,"dur_ns":1}"#],
        );
        assert!(validate(&t).is_err());
        // Unknown parent.
        let t = file(
            TRACE_META,
            &[
                r#"{"type":"span_start","id":1,"parent":77,"name":"a","thread":1,"at_ns":0,"fields":{}}"#,
            ],
        );
        assert!(validate(&t).is_err());
        // Unclosed span.
        let t = file(
            TRACE_META,
            &[
                r#"{"type":"span_start","id":1,"parent":null,"name":"a","thread":1,"at_ns":0,"fields":{}}"#,
            ],
        );
        assert!(validate(&t).is_err());
        // Name mismatch between start and end.
        let t = file(
            TRACE_META,
            &[
                r#"{"type":"span_start","id":1,"parent":null,"name":"a","thread":1,"at_ns":0,"fields":{}}"#,
                r#"{"type":"span_end","id":1,"name":"z","thread":1,"at_ns":2,"dur_ns":2}"#,
            ],
        );
        assert!(validate(&t).is_err());
        // Time going backwards on a thread.
        let t = file(
            TRACE_META,
            &[
                r#"{"type":"counter","name":"c","value":1,"thread":1,"at_ns":5}"#,
                r#"{"type":"counter","name":"c","value":1,"thread":1,"at_ns":4}"#,
            ],
        );
        assert!(validate(&t).is_err());
    }

    #[test]
    fn accepts_journal_with_torn_tail() {
        let t = file(
            JOURNAL_META,
            &[
                r#"{"type":"submit","job":0,"kind":"corpus","index":4}"#,
                r#"{"type":"submit","job":1,"kind":"verify","model":"dtmc","property":"p"}"#,
                r#"{"type":"attempt","job":0,"attempt":1}"#,
                r#"{"type":"checkpoint","job":0,"attempt":1,"stage":"learn","x":null}"#,
                r#"{"type":"failure","job":0,"attempt":1,"kind":"panic","detail":"boom"}"#,
                r#"{"type":"outcome","job":0,"attempts":2,"status":"satisfied","detail":"d","evaluations":3}"#,
                r#"{"type":"resume","completed":1}"#,
                r#"{"type":"outcome","job":1,"attempts":1,"status":"viol"#, // torn mid-write
            ],
        );
        let summary = validate(&t).unwrap();
        assert!(summary.contains("2 submissions"), "{summary}");
        assert!(summary.contains("torn final line"), "{summary}");
    }

    #[test]
    fn rejects_corrupt_journals() {
        // Mid-file garbage is corruption, not a torn tail.
        let t = file(
            JOURNAL_META,
            &[r#"{"type":"outcome","job":0,"att"#, r#"{"type":"resume","completed":0}"#],
        );
        assert!(validate(&t).is_err());
        // Double submit / double outcome / unknown status.
        for bad in [
            &[
                r#"{"type":"submit","job":0,"kind":"corpus","index":1}"#,
                r#"{"type":"submit","job":0,"kind":"corpus","index":2}"#,
            ][..],
            &[
                r#"{"type":"outcome","job":0,"attempts":1,"status":"satisfied","detail":"d","evaluations":0}"#,
                r#"{"type":"outcome","job":0,"attempts":1,"status":"satisfied","detail":"d","evaluations":0}"#,
            ][..],
            &[
                r#"{"type":"outcome","job":0,"attempts":1,"status":"odd","detail":"d","evaluations":0}"#,
            ][..],
            &[r#"{"type":"attempt","job":0,"attempt":0}"#][..],
        ] {
            assert!(validate(&file(JOURNAL_META, bad)).is_err());
        }
    }

    #[test]
    fn accepts_rendered_prometheus_exposition() {
        use tml_telemetry::metrics::Registry;
        use tml_telemetry::prometheus::render_prometheus;
        let reg = Registry::new();
        reg.incr_counter("serve.jobs.accepted", 8);
        reg.incr_counter_labeled("serve.http.requests", &[("status", "202")], 5);
        reg.set_gauge("serve.jobs.queued", 3);
        reg.record_ns("span.pipeline.run", 1_500);
        reg.record_ns("span.pipeline.run", 90_000);
        let text = render_prometheus(&reg.snapshot());
        let summary = validate_metrics(&text).unwrap();
        assert!(summary.contains("4 metric families"), "{summary}");
        assert_eq!(validate_metrics(""), Ok("0 metric families, 0 samples".into()));
    }

    #[test]
    fn rejects_malformed_expositions() {
        // Sample without a TYPE.
        assert!(validate_metrics("tml_x_total 3\n").is_err());
        // TYPE after its samples.
        let t = "# TYPE tml_a counter\ntml_a 1\n# TYPE tml_a gauge\n";
        assert!(validate_metrics(t).is_err());
        // Non-contiguous family.
        let t = "# TYPE tml_a counter\n# TYPE tml_b counter\n\
                 tml_a 1\ntml_b 1\ntml_a 2\n";
        assert!(validate_metrics(t).is_err());
        // Histogram whose +Inf bucket disagrees with _count.
        let t = "# TYPE tml_h histogram\n\
                 tml_h_bucket{le=\"0.1\"} 1\n\
                 tml_h_bucket{le=\"+Inf\"} 2\n\
                 tml_h_sum 0.5\ntml_h_count 3\n";
        assert!(validate_metrics(t).is_err());
        // Non-cumulative buckets.
        let t = "# TYPE tml_h histogram\n\
                 tml_h_bucket{le=\"0.1\"} 5\n\
                 tml_h_bucket{le=\"0.2\"} 3\n\
                 tml_h_bucket{le=\"+Inf\"} 5\n\
                 tml_h_sum 0.5\ntml_h_count 5\n";
        assert!(validate_metrics(t).is_err());
        // Histogram missing the +Inf bucket entirely.
        let t = "# TYPE tml_h histogram\ntml_h_sum 0.5\ntml_h_count 5\n";
        assert!(validate_metrics(t).is_err());
        // Bad metric name and bad value.
        assert!(validate_metrics("# TYPE 9bad counter\n").is_err());
        assert!(validate_metrics("# TYPE tml_a counter\ntml_a pizza\n").is_err());
    }

    #[test]
    fn trace_fields_are_validated_when_present() {
        let ok = file(
            TRACE_META,
            &[
                r#"{"type":"span_start","id":1,"parent":null,"name":"a","thread":1,"at_ns":0,"trace":"00000000000000ff","fields":{}}"#,
                r#"{"type":"counter","name":"c","value":2,"thread":1,"at_ns":6,"trace":"00000000000000ff"}"#,
                r#"{"type":"span_end","id":1,"name":"a","thread":1,"at_ns":10,"dur_ns":10}"#,
            ],
        );
        assert!(validate(&ok).is_ok());
        let bad = file(
            TRACE_META,
            &[
                r#"{"type":"span_start","id":1,"parent":null,"name":"a","thread":1,"at_ns":0,"trace":"zz","fields":{}}"#,
                r#"{"type":"span_end","id":1,"name":"a","thread":1,"at_ns":10,"dur_ns":10}"#,
            ],
        );
        assert!(validate(&bad).is_err(), "malformed trace ids must be rejected");
        let journal = file(
            JOURNAL_META,
            &[r#"{"type":"submit","job":0,"kind":"corpus","index":4,"trace":"00000000000000ab"}"#],
        );
        assert!(validate(&journal).is_ok());
        let serve = file(
            SERVE_META,
            &[
                r#"{"type":"request","seq":0,"method":"POST","path":"/v1/jobs","status":202,"trace":"00000000000000ab"}"#,
            ],
        );
        assert!(validate(&serve).is_ok());
    }

    #[test]
    fn serve_log_requires_contiguous_seq() {
        let t = file(
            SERVE_META,
            &[
                r#"{"type":"request","seq":0,"method":"POST","path":"/v1/jobs","status":202}"#,
                r#"{"type":"request","seq":1,"method":"GET","path":"/metrics","status":200}"#,
            ],
        );
        assert_eq!(validate(&t).unwrap(), "2 request records, seq contiguous");

        // kill -9 mid-write: a torn final line is tolerated, like journals.
        let torn = file(
            SERVE_META,
            &[
                r#"{"type":"request","seq":0,"method":"POST","path":"/v1/jobs","status":202}"#,
                r#"{"type":"request","seq":1,"meth"#,
            ],
        );
        assert_eq!(validate(&torn).unwrap(), "1 request records, seq contiguous");

        for (lines, why) in [
            (
                &[r#"{"type":"request","seq":1,"method":"GET","path":"/","status":200}"#][..],
                "seq must start at 0",
            ),
            (
                &[
                    r#"{"type":"request","seq":0,"method":"GET","path":"/","status":200}"#,
                    r#"{"type":"request","seq":2,"method":"GET","path":"/","status":200}"#,
                ][..],
                "gaps mean dropped log lines",
            ),
            (
                &[r#"{"type":"request","seq":0,"method":"GET","path":"/","status":7}"#][..],
                "implausible status",
            ),
            (&[r#"{"type":"shutdown"}"#][..], "unknown record type"),
        ] {
            assert!(validate(&file(SERVE_META, lines)).is_err(), "{why}");
        }
    }
}
