//! `telemetry_schema_check` — validates a `tml-trace/v1` JSONL file.
//!
//! Usage: `telemetry_schema_check <trace.jsonl>`
//!
//! Checks, line by line:
//! * line 1 is a `meta` record declaring `"schema":"tml-trace/v1"`;
//! * every line is valid JSON with a known `type`
//!   (`span_start`/`span_end`/`counter`) and that type's required fields;
//! * every `span_end` matches an open `span_start` with the same name,
//!   every `parent` refers to a previously started span, and spans on a
//!   given thread close in LIFO order;
//! * `at_ns` is non-decreasing per thread.
//!
//! Exits 0 and prints a one-line summary on success; exits 1 with the first
//! offending line number otherwise. CI runs this against the trace produced
//! by the bench-smoke WSN model repair.

use std::collections::HashMap;
use std::process::ExitCode;

use tml_telemetry::json::{self, Value};

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(path) = args.next() else {
        eprintln!("usage: telemetry_schema_check <trace.jsonl>");
        return ExitCode::FAILURE;
    };
    let content = match std::fs::read_to_string(&path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match validate(&content) {
        Ok(stats) => {
            println!(
                "ok: {} events ({} spans, {} counters), {} threads",
                stats.events, stats.spans, stats.counters, stats.threads
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

struct Stats {
    events: usize,
    spans: usize,
    counters: usize,
    threads: usize,
}

fn field_u64(v: &Value, key: &str, line: usize) -> Result<u64, String> {
    v.get(key)
        .and_then(|x| x.as_u64())
        .ok_or_else(|| format!("line {line}: missing or non-integer \"{key}\""))
}

fn field_str<'a>(v: &'a Value, key: &str, line: usize) -> Result<&'a str, String> {
    v.get(key)
        .and_then(|x| x.as_str())
        .ok_or_else(|| format!("line {line}: missing or non-string \"{key}\""))
}

fn validate(content: &str) -> Result<Stats, String> {
    let mut lines = content.lines().enumerate();
    let (_, meta_line) = lines.next().ok_or("empty trace")?;
    let meta = json::parse(meta_line).map_err(|e| format!("line 1: {e}"))?;
    if meta.get("type").and_then(|v| v.as_str()) != Some("meta") {
        return Err("line 1: first record must have type \"meta\"".into());
    }
    if meta.get("schema").and_then(|v| v.as_str()) != Some(tml_telemetry::jsonl::schema::TRACE) {
        return Err("line 1: schema must be \"tml-trace/v1\"".into());
    }

    // Per-span-id: (name, thread). Per-thread: open-span stack + last at_ns.
    let mut started: HashMap<u64, (String, u64)> = HashMap::new();
    let mut closed: HashMap<u64, ()> = HashMap::new();
    let mut stacks: HashMap<u64, Vec<u64>> = HashMap::new();
    let mut last_at: HashMap<u64, u64> = HashMap::new();
    let mut stats = Stats { events: 0, spans: 0, counters: 0, threads: 0 };

    for (idx, raw) in lines {
        let line_no = idx + 1;
        if raw.trim().is_empty() {
            continue;
        }
        let v = json::parse(raw).map_err(|e| format!("line {line_no}: {e}"))?;
        let ty = field_str(&v, "type", line_no)?;
        let thread = field_u64(&v, "thread", line_no)?;
        let at_ns = field_u64(&v, "at_ns", line_no)?;
        if let Some(&prev) = last_at.get(&thread) {
            if at_ns < prev {
                return Err(format!(
                    "line {line_no}: at_ns {at_ns} goes backwards on thread {thread} (prev {prev})"
                ));
            }
        }
        last_at.insert(thread, at_ns);
        stats.events += 1;
        match ty {
            "span_start" => {
                let id = field_u64(&v, "id", line_no)?;
                let name = field_str(&v, "name", line_no)?.to_owned();
                let parent = v
                    .get("parent")
                    .ok_or_else(|| format!("line {line_no}: span_start missing \"parent\""))?;
                if !parent.is_null() {
                    let pid = parent
                        .as_u64()
                        .ok_or_else(|| format!("line {line_no}: parent must be null or an id"))?;
                    if !started.contains_key(&pid) && !closed.contains_key(&pid) {
                        return Err(format!("line {line_no}: parent {pid} was never started"));
                    }
                }
                v.get("fields")
                    .and_then(|f| f.as_object())
                    .ok_or_else(|| format!("line {line_no}: span_start missing \"fields\""))?;
                if started.insert(id, (name, thread)).is_some() {
                    return Err(format!("line {line_no}: duplicate span id {id}"));
                }
                stacks.entry(thread).or_default().push(id);
                stats.spans += 1;
            }
            "span_end" => {
                let id = field_u64(&v, "id", line_no)?;
                let name = field_str(&v, "name", line_no)?;
                field_u64(&v, "dur_ns", line_no)?;
                let Some((start_name, _)) = started.remove(&id) else {
                    return Err(format!(
                        "line {line_no}: span_end for id {id} without a matching span_start"
                    ));
                };
                if start_name != name {
                    return Err(format!(
                        "line {line_no}: span {id} started as \"{start_name}\" but ended as \"{name}\""
                    ));
                }
                let stack = stacks.entry(thread).or_default();
                if stack.last() == Some(&id) {
                    stack.pop();
                } else {
                    // A guard may legitimately close on a different thread
                    // than it opened on (moved across a scope boundary);
                    // remove it from whichever stack holds it.
                    for s in stacks.values_mut() {
                        s.retain(|&x| x != id);
                    }
                }
                closed.insert(id, ());
            }
            "counter" => {
                field_str(&v, "name", line_no)?;
                field_u64(&v, "value", line_no)?;
                stats.counters += 1;
            }
            other => {
                return Err(format!("line {line_no}: unknown event type \"{other}\""));
            }
        }
    }
    if !started.is_empty() {
        let mut ids: Vec<&u64> = started.keys().collect();
        ids.sort();
        return Err(format!("trace ended with {} unclosed span(s): {ids:?}", started.len()));
    }
    stats.threads = last_at.len();
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::validate;

    const META: &str = "{\"type\":\"meta\",\"schema\":\"tml-trace/v1\",\"tool\":\"t\"}";

    fn trace(lines: &[&str]) -> String {
        let mut out = String::from(META);
        for l in lines {
            out.push('\n');
            out.push_str(l);
        }
        out
    }

    #[test]
    fn accepts_well_formed_trace() {
        let t = trace(&[
            r#"{"type":"span_start","id":1,"parent":null,"name":"a","thread":1,"at_ns":0,"fields":{}}"#,
            r#"{"type":"span_start","id":2,"parent":1,"name":"b","thread":1,"at_ns":5,"fields":{"k":3}}"#,
            r#"{"type":"counter","name":"c","value":2,"thread":1,"at_ns":6}"#,
            r#"{"type":"span_end","id":2,"name":"b","thread":1,"at_ns":9,"dur_ns":4}"#,
            r#"{"type":"span_end","id":1,"name":"a","thread":1,"at_ns":10,"dur_ns":10}"#,
        ]);
        let stats = validate(&t).unwrap();
        assert_eq!(stats.events, 5);
        assert_eq!(stats.spans, 2);
        assert_eq!(stats.counters, 1);
    }

    #[test]
    fn rejects_bad_meta_and_structural_errors() {
        assert!(validate("").is_err());
        assert!(validate("{\"type\":\"meta\",\"schema\":\"other\"}").is_err());
        // End without start.
        let t =
            trace(&[r#"{"type":"span_end","id":9,"name":"x","thread":1,"at_ns":1,"dur_ns":1}"#]);
        assert!(validate(&t).is_err());
        // Unknown parent.
        let t = trace(&[
            r#"{"type":"span_start","id":1,"parent":77,"name":"a","thread":1,"at_ns":0,"fields":{}}"#,
        ]);
        assert!(validate(&t).is_err());
        // Unclosed span.
        let t = trace(&[
            r#"{"type":"span_start","id":1,"parent":null,"name":"a","thread":1,"at_ns":0,"fields":{}}"#,
        ]);
        assert!(validate(&t).is_err());
        // Name mismatch between start and end.
        let t = trace(&[
            r#"{"type":"span_start","id":1,"parent":null,"name":"a","thread":1,"at_ns":0,"fields":{}}"#,
            r#"{"type":"span_end","id":1,"name":"z","thread":1,"at_ns":2,"dur_ns":2}"#,
        ]);
        assert!(validate(&t).is_err());
        // Time going backwards on a thread.
        let t = trace(&[
            r#"{"type":"counter","name":"c","value":1,"thread":1,"at_ns":5}"#,
            r#"{"type":"counter","name":"c","value":1,"thread":1,"at_ns":4}"#,
        ]);
        assert!(validate(&t).is_err());
    }
}
