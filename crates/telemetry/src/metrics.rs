//! Counters and log-scale histograms, plus their point-in-time snapshots.
//!
//! Live metrics (`Registry`) are lock-light: each counter/histogram is an
//! `Arc` of atomics, registered once under a `RwLock`-protected name map,
//! so the steady state touches only atomics. Snapshots
//! ([`MetricsSnapshot`]) are plain owned data suitable for embedding in
//! `Diagnostics` and for commutative merging across parallel restarts.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Number of log2 duration buckets: bucket `i` holds samples with
/// `floor(log2(ns)) == i`, so 64 buckets cover every `u64` nanosecond value
/// (bucket 0 is `0..2ns`, bucket 63 caps out near 585 years).
pub const HISTOGRAM_BUCKETS: usize = 64;

fn bucket_index(value_ns: u64) -> usize {
    if value_ns == 0 {
        0
    } else {
        63 - value_ns.leading_zeros() as usize
    }
}

/// A fixed log2-bucket histogram with atomic recording.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    fn record(&self, value_ns: u64) {
        self.buckets[bucket_index(value_ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value_ns, Ordering::Relaxed);
        self.max.fetch_max(value_ns, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum_ns: self.sum.load(Ordering::Relaxed),
            max_ns: self.max.load(Ordering::Relaxed),
        }
    }
}

/// Builds the canonical registry key for a labeled metric:
/// `name{k1="v1",k2="v2"}` with label keys sorted and values escaped
/// (`\` and `"`), so the same label set always maps to the same key and
/// the key is already in Prometheus sample form.
pub fn labeled_key(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_owned();
    }
    let mut sorted: Vec<&(&str, &str)> = labels.iter().collect();
    sorted.sort_by_key(|(k, _)| *k);
    let mut out = String::with_capacity(name.len() + 16 * sorted.len());
    out.push_str(name);
    out.push('{');
    for (i, (k, v)) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        for ch in v.chars() {
            match ch {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out.push('}');
    out
}

/// Splits a registry key into its base name and the label block (including
/// braces), if any.
pub fn split_labels(key: &str) -> (&str, Option<&str>) {
    match key.find('{') {
        Some(i) => (&key[..i], Some(&key[i..])),
        None => (key, None),
    }
}

/// Live counter/gauge/histogram store owned by a `Subscriber`.
#[derive(Debug)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: RwLock<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry {
            counters: RwLock::new(BTreeMap::new()),
            gauges: RwLock::new(BTreeMap::new()),
            histograms: RwLock::new(BTreeMap::new()),
        }
    }

    /// Adds `value` to the named monotonic counter, creating it at zero on
    /// first use.
    pub fn incr_counter(&self, name: &str, value: u64) {
        if let Some(c) = self.counters.read().unwrap_or_else(|e| e.into_inner()).get(name) {
            c.fetch_add(value, Ordering::Relaxed);
            return;
        }
        let mut map = self.counters.write().unwrap_or_else(|e| e.into_inner());
        map.entry(name.to_owned())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)))
            .fetch_add(value, Ordering::Relaxed);
    }

    /// Adds `value` to a labeled counter. The label set becomes part of the
    /// registry key (see [`labeled_key`]), so each distinct combination is
    /// its own monotonic series.
    pub fn incr_counter_labeled(&self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.incr_counter(&labeled_key(name, labels), value);
    }

    /// Sets the named gauge to `value` (last write wins), creating it on
    /// first use.
    pub fn set_gauge(&self, name: &str, value: u64) {
        if let Some(g) = self.gauges.read().unwrap_or_else(|e| e.into_inner()).get(name) {
            g.store(value, Ordering::Relaxed);
            return;
        }
        let mut map = self.gauges.write().unwrap_or_else(|e| e.into_inner());
        map.entry(name.to_owned())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)))
            .store(value, Ordering::Relaxed);
    }

    /// Records `value_ns` into the named histogram, creating it on first
    /// use.
    pub fn record_ns(&self, name: &str, value_ns: u64) {
        if let Some(h) = self.histograms.read().unwrap_or_else(|e| e.into_inner()).get(name) {
            h.record(value_ns);
            return;
        }
        let mut map = self.histograms.write().unwrap_or_else(|e| e.into_inner());
        map.entry(name.to_owned()).or_insert_with(|| Arc::new(Histogram::new())).record(value_ns);
    }

    /// A point-in-time copy of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let gauges = self
            .gauges
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let histograms = self
            .histograms
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        MetricsSnapshot { counters, gauges, histograms }
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

/// Point-in-time copy of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (log2 buckets; see [`HISTOGRAM_BUCKETS`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all recorded values, in nanoseconds.
    pub sum_ns: u64,
    /// Largest recorded value, in nanoseconds.
    pub max_ns: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot { buckets: [0; HISTOGRAM_BUCKETS], count: 0, sum_ns: 0, max_ns: 0 }
    }
}

impl HistogramSnapshot {
    /// Merges `other` into `self`. Commutative and associative: counts and
    /// sums add, max takes the max.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (b, ob) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += ob;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Mean recorded value in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }

    /// An upper bound on the p`q` quantile, computed from bucket edges
    /// (`q` in `0.0..=1.0`).
    pub fn quantile_upper_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                // Upper edge of bucket i is 2^(i+1)-1 ns.
                return if i >= 63 { u64::MAX } else { (1u64 << (i + 1)) - 1 };
            }
        }
        self.max_ns
    }
}

/// Point-in-time copy of every counter and histogram a subscriber has
/// aggregated. Plain data: cloneable, comparable, mergeable — suitable for
/// embedding in `Diagnostics` and absorbing across threads.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Point-in-time gauges by name (set semantics, not cumulative).
    pub gauges: BTreeMap<String, u64>,
    /// Duration histograms by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        MetricsSnapshot::default()
    }

    /// Whether no metric has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Counter value by name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value by name (0 when absent).
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Adds to a counter in the snapshot (used when filling `Diagnostics`
    /// without a live subscriber).
    pub fn incr(&mut self, name: &str, value: u64) {
        if value > 0 {
            *self.counters.entry(name.to_owned()).or_insert(0) += value;
        }
    }

    /// Sets a gauge in the snapshot (last write wins).
    pub fn set_gauge(&mut self, name: &str, value: u64) {
        self.gauges.insert(name.to_owned(), value);
    }

    /// Merges `other` into `self`. Commutative and associative (counters
    /// and histogram counts/sums add; gauge and histogram maxima take the
    /// max), so absorbing per-thread snapshots in any order yields the same
    /// result.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, value) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += value;
        }
        for (name, value) in &other.gauges {
            let slot = self.gauges.entry(name.clone()).or_insert(0);
            *slot = (*slot).max(*value);
        }
        for (name, hist) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(hist);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(1023), 9);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(u64::MAX), 63);
    }

    #[test]
    fn registry_counts_and_snapshots() {
        let reg = Registry::new();
        reg.incr_counter("a", 2);
        reg.incr_counter("a", 3);
        reg.incr_counter("b", 1);
        reg.record_ns("h", 100);
        reg.record_ns("h", 900);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("a"), 5);
        assert_eq!(snap.counter("b"), 1);
        assert_eq!(snap.counter("missing"), 0);
        let h = snap.histogram("h").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum_ns, 1000);
        assert_eq!(h.max_ns, 900);
        assert_eq!(h.mean_ns(), 500);
    }

    #[test]
    fn concurrent_increments_do_not_lose_updates() {
        let reg = Arc::new(Registry::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let reg = reg.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        reg.incr_counter("n", 1);
                        reg.record_ns("d", 7);
                    }
                });
            }
        });
        let snap = reg.snapshot();
        assert_eq!(snap.counter("n"), 4000);
        assert_eq!(snap.histogram("d").unwrap().count, 4000);
    }

    #[test]
    fn snapshot_merge_is_order_independent() {
        let mut a = MetricsSnapshot::new();
        a.incr("x", 3);
        let mut ha = HistogramSnapshot::default();
        ha.buckets[4] = 2;
        ha.count = 2;
        ha.sum_ns = 40;
        ha.max_ns = 25;
        a.histograms.insert("h".into(), ha);

        let mut b = MetricsSnapshot::new();
        b.incr("x", 4);
        b.incr("y", 1);
        let mut hb = HistogramSnapshot::default();
        hb.buckets[6] = 1;
        hb.count = 1;
        hb.sum_ns = 70;
        hb.max_ns = 70;
        b.histograms.insert("h".into(), hb);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.counter("x"), 7);
        assert_eq!(ab.histogram("h").unwrap().count, 3);
        assert_eq!(ab.histogram("h").unwrap().max_ns, 70);
    }

    #[test]
    fn labeled_keys_are_canonical() {
        assert_eq!(labeled_key("serve.http.requests", &[]), "serve.http.requests");
        let a = labeled_key("serve.http.requests", &[("status", "202"), ("method", "POST")]);
        let b = labeled_key("serve.http.requests", &[("method", "POST"), ("status", "202")]);
        assert_eq!(a, b, "label order must not matter");
        assert_eq!(a, "serve.http.requests{method=\"POST\",status=\"202\"}");
        let esc = labeled_key("m.o.a", &[("k", "a\"b\\c")]);
        assert_eq!(esc, "m.o.a{k=\"a\\\"b\\\\c\"}");
        assert_eq!(
            split_labels(&a),
            ("serve.http.requests", Some("{method=\"POST\",status=\"202\"}"))
        );
        assert_eq!(split_labels("plain.name.x"), ("plain.name.x", None));
    }

    #[test]
    fn gauges_set_and_merge_by_max() {
        let reg = Registry::new();
        reg.set_gauge("serve.jobs.queued", 5);
        reg.set_gauge("serve.jobs.queued", 2);
        reg.incr_counter_labeled("serve.http.requests", &[("status", "200")], 3);
        let snap = reg.snapshot();
        assert_eq!(snap.gauge("serve.jobs.queued"), 2, "gauges are last-write-wins");
        assert_eq!(snap.counter("serve.http.requests{status=\"200\"}"), 3);

        let mut a = MetricsSnapshot::new();
        a.set_gauge("g", 7);
        let mut b = MetricsSnapshot::new();
        b.set_gauge("g", 3);
        b.set_gauge("h", 1);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "gauge merge must stay commutative");
        assert_eq!(ab.gauge("g"), 7);
        assert_eq!(ab.gauge("h"), 1);
    }

    #[test]
    fn quantile_upper_bound_covers_samples() {
        let mut h = HistogramSnapshot::default();
        for v in [1u64, 2, 4, 8, 1024] {
            h.buckets[if v == 0 { 0 } else { 63 - v.leading_zeros() as usize }] += 1;
            h.count += 1;
            h.sum_ns += v;
            h.max_ns = h.max_ns.max(v);
        }
        assert!(h.quantile_upper_ns(0.5) >= 4);
        assert!(h.quantile_upper_ns(1.0) >= 1024);
        assert_eq!(HistogramSnapshot::default().quantile_upper_ns(0.5), 0);
    }
}
