//! Event types and their JSONL wire encoding (`tml-trace/v1`).

use crate::json;

/// A typed field value attached to a span.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer field.
    U64(u64),
    /// Signed integer field.
    I64(i64),
    /// Floating-point field.
    F64(f64),
    /// String field.
    Str(String),
    /// Boolean field.
    Bool(bool),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<i32> for FieldValue {
    fn from(v: i32) -> Self {
        FieldValue::I64(v as i64)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_owned())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

impl FieldValue {
    fn write_json(&self, out: &mut String) {
        match self {
            FieldValue::U64(v) => out.push_str(&v.to_string()),
            FieldValue::I64(v) => out.push_str(&v.to_string()),
            FieldValue::F64(v) => json::write_f64(out, *v),
            FieldValue::Str(s) => json::write_string(out, s),
            FieldValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        }
    }
}

/// One telemetry event, as delivered to sinks.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A span opened.
    SpanStart {
        /// Subscriber-unique span id.
        id: u64,
        /// Enclosing span on the same thread, if any. When absent and a
        /// [`crate::TraceContext`] is installed, the context's
        /// `parent_span` is used instead (cross-thread linkage).
        parent: Option<u64>,
        /// Span name (dotted registry name, e.g. `model_repair.solve`).
        name: String,
        /// Compact telemetry thread id.
        thread: u64,
        /// Monotonic nanoseconds since the subscriber was installed.
        at_ns: u64,
        /// Trace id from the installed [`crate::TraceContext`], if any.
        /// Serialized as a 16-hex-digit string (the JSON number lane is
        /// f64 and cannot carry 64-bit ids losslessly).
        trace: Option<u64>,
        /// Structured fields captured at open.
        fields: Vec<(String, FieldValue)>,
    },
    /// A span closed.
    SpanEnd {
        /// Id from the matching [`Event::SpanStart`].
        id: u64,
        /// Span name (repeated for grep-ability of JSONL traces).
        name: String,
        /// Compact telemetry thread id.
        thread: u64,
        /// Monotonic nanoseconds since the subscriber was installed.
        at_ns: u64,
        /// Wall time the span was open, in nanoseconds.
        dur_ns: u64,
    },
    /// A counter increment.
    Counter {
        /// Counter name (dotted registry name, e.g. `checker.solve.sweeps`).
        name: String,
        /// Increment amount (counters are monotonic).
        value: u64,
        /// Compact telemetry thread id.
        thread: u64,
        /// Monotonic nanoseconds since the subscriber was installed.
        at_ns: u64,
        /// Trace id from the installed [`crate::TraceContext`], if any
        /// (16-hex-digit string on the wire).
        trace: Option<u64>,
    },
}

impl Event {
    /// Encodes the event as one `tml-trace/v1` JSON line (no trailing
    /// newline).
    pub fn to_json_line(&self) -> String {
        fn write_trace(out: &mut String, trace: &Option<u64>) {
            if let Some(t) = trace {
                out.push_str(",\"trace\":\"");
                out.push_str(&format!("{t:016x}"));
                out.push('"');
            }
        }
        let mut out = String::with_capacity(96);
        match self {
            Event::SpanStart { id, parent, name, thread, at_ns, trace, fields } => {
                out.push_str("{\"type\":\"span_start\",\"id\":");
                out.push_str(&id.to_string());
                out.push_str(",\"parent\":");
                match parent {
                    Some(p) => out.push_str(&p.to_string()),
                    None => out.push_str("null"),
                }
                out.push_str(",\"name\":");
                json::write_string(&mut out, name);
                out.push_str(",\"thread\":");
                out.push_str(&thread.to_string());
                out.push_str(",\"at_ns\":");
                out.push_str(&at_ns.to_string());
                write_trace(&mut out, trace);
                out.push_str(",\"fields\":{");
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    json::write_string(&mut out, k);
                    out.push(':');
                    v.write_json(&mut out);
                }
                out.push_str("}}");
            }
            Event::SpanEnd { id, name, thread, at_ns, dur_ns } => {
                out.push_str("{\"type\":\"span_end\",\"id\":");
                out.push_str(&id.to_string());
                out.push_str(",\"name\":");
                json::write_string(&mut out, name);
                out.push_str(",\"thread\":");
                out.push_str(&thread.to_string());
                out.push_str(",\"at_ns\":");
                out.push_str(&at_ns.to_string());
                out.push_str(",\"dur_ns\":");
                out.push_str(&dur_ns.to_string());
                out.push('}');
            }
            Event::Counter { name, value, thread, at_ns, trace } => {
                out.push_str("{\"type\":\"counter\",\"name\":");
                json::write_string(&mut out, name);
                out.push_str(",\"value\":");
                out.push_str(&value.to_string());
                out.push_str(",\"thread\":");
                out.push_str(&thread.to_string());
                out.push_str(",\"at_ns\":");
                out.push_str(&at_ns.to_string());
                write_trace(&mut out, trace);
                out.push('}');
            }
        }
        out
    }

    /// The meta line every `tml-trace/v1` stream starts with.
    pub fn meta_line(tool: &str) -> String {
        crate::jsonl::LineBuilder::meta(crate::jsonl::schema::TRACE).str("tool", tool).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_start_encoding_roundtrips() {
        let ev = Event::SpanStart {
            id: 3,
            parent: Some(1),
            name: "model_repair.solve".into(),
            thread: 2,
            at_ns: 12345,
            trace: Some(0x00ab_cdef_0123_4567),
            fields: vec![
                ("restart".into(), FieldValue::U64(4)),
                ("label".into(), FieldValue::Str("a\"b".into())),
                ("gain".into(), FieldValue::F64(0.5)),
                ("ok".into(), FieldValue::Bool(true)),
                ("delta".into(), FieldValue::I64(-2)),
            ],
        };
        let line = ev.to_json_line();
        let value = json::parse(&line).expect("valid json");
        assert_eq!(value.get("type").and_then(|v| v.as_str()), Some("span_start"));
        assert_eq!(value.get("id").and_then(|v| v.as_u64()), Some(3));
        assert_eq!(value.get("parent").and_then(|v| v.as_u64()), Some(1));
        assert_eq!(value.get("trace").and_then(|v| v.as_str()), Some("00abcdef01234567"));
        let fields = value.get("fields").expect("fields");
        assert_eq!(fields.get("restart").and_then(|v| v.as_u64()), Some(4));
        assert_eq!(fields.get("label").and_then(|v| v.as_str()), Some("a\"b"));
        assert_eq!(fields.get("ok").and_then(|v| v.as_bool()), Some(true));
    }

    #[test]
    fn null_parent_and_end_and_counter_encode() {
        let start = Event::SpanStart {
            id: 1,
            parent: None,
            name: "root".into(),
            thread: 1,
            at_ns: 0,
            trace: None,
            fields: vec![],
        };
        let line = start.to_json_line();
        assert!(line.contains("\"parent\":null"));
        assert!(!line.contains("\"trace\""), "trace field is omitted when unset");
        let end = Event::SpanEnd { id: 1, name: "root".into(), thread: 1, at_ns: 10, dur_ns: 10 };
        let v = json::parse(&end.to_json_line()).unwrap();
        assert_eq!(v.get("dur_ns").and_then(|x| x.as_u64()), Some(10));
        let c = Event::Counter { name: "c".into(), value: 7, thread: 1, at_ns: 5, trace: Some(9) };
        let v = json::parse(&c.to_json_line()).unwrap();
        assert_eq!(v.get("value").and_then(|x| x.as_u64()), Some(7));
        assert_eq!(v.get("trace").and_then(|x| x.as_str()), Some("0000000000000009"));
    }

    #[test]
    fn meta_line_parses() {
        let v = json::parse(&Event::meta_line("trusted-ml")).unwrap();
        assert_eq!(v.get("schema").and_then(|x| x.as_str()), Some("tml-trace/v1"));
    }
}
