//! The workspace metric-naming convention, as an executable check.
//!
//! Every counter and gauge name is dotted `subsystem.object.action` with an
//! optional fourth `variant` segment:
//!
//! * `checker.solve.sweeps`, `serve.jobs.accepted`,
//!   `runtime.attempt.failures` — three segments;
//! * `checker.backend.scc.ok` — four (the backend is the variant).
//!
//! Histogram names are `span.` followed by a span name of one to three
//! segments (`span.model_repair`, `span.numerics.scc.block`). Labeled
//! registry keys (`name{k="v"}`) are checked on the base name, with label
//! keys held to the same `[a-z][a-z0-9_]*` charset.
//!
//! The convention is enforced by a test that runs the full pipeline and
//! walks the resulting [`MetricsSnapshot`] through
//! [`check_snapshot_names`], so a nonconforming name added anywhere in the
//! workspace fails CI.

use crate::metrics::{split_labels, MetricsSnapshot};

/// What kind of metric a name belongs to (the rules differ slightly).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic counter: 3–4 dotted segments.
    Counter,
    /// Point-in-time gauge: 3–4 dotted segments.
    Gauge,
    /// Duration histogram: `span.` + 1–3 dotted segments.
    Histogram,
}

fn valid_segment(seg: &str) -> bool {
    let mut bytes = seg.bytes();
    match bytes.next() {
        Some(b'a'..=b'z') => {}
        _ => return false,
    }
    bytes.all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_')
}

fn check_segments(name: &str, min: usize, max: usize) -> Result<(), String> {
    let segments: Vec<&str> = name.split('.').collect();
    if segments.len() < min || segments.len() > max {
        return Err(format!(
            "'{name}' has {} dot-separated segments, expected {min}..={max}",
            segments.len()
        ));
    }
    for seg in segments {
        if !valid_segment(seg) {
            return Err(format!("'{name}' segment '{seg}' is not lowercase [a-z][a-z0-9_]*"));
        }
    }
    Ok(())
}

fn check_label_block(name: &str, block: &str) -> Result<(), String> {
    // The block is produced by `labeled_key`, so the shape is
    // {k="v",k2="v2"}; we only validate the key charset here.
    let inner = block
        .strip_prefix('{')
        .and_then(|b| b.strip_suffix('}'))
        .ok_or_else(|| format!("'{name}' has a malformed label block '{block}'"))?;
    for pair in inner.split("\",") {
        let Some((key, _)) = pair.split_once("=\"") else {
            return Err(format!("'{name}' label pair '{pair}' is not k=\"v\""));
        };
        if !valid_segment(key) {
            return Err(format!("'{name}' label key '{key}' is not [a-z][a-z0-9_]*"));
        }
    }
    Ok(())
}

/// Checks one registry key against the convention. Returns a
/// human-readable reason on violation.
///
/// # Errors
///
/// Returns `Err` with the violated rule when the name does not conform.
pub fn check_metric_name(kind: MetricKind, key: &str) -> Result<(), String> {
    let (base, labels) = split_labels(key);
    if let Some(block) = labels {
        check_label_block(base, block)?;
    }
    match kind {
        MetricKind::Counter | MetricKind::Gauge => check_segments(base, 3, 4),
        MetricKind::Histogram => {
            let span_name = base
                .strip_prefix("span.")
                .ok_or_else(|| format!("histogram '{base}' must be named 'span.<span name>'"))?;
            check_segments(span_name, 1, 3)
        }
    }
}

/// Walks every counter, gauge and histogram in `snapshot` and returns all
/// naming violations (empty when the snapshot conforms).
pub fn check_snapshot_names(snapshot: &MetricsSnapshot) -> Vec<String> {
    let mut violations = Vec::new();
    for key in snapshot.counters.keys() {
        if let Err(why) = check_metric_name(MetricKind::Counter, key) {
            violations.push(format!("counter {why}"));
        }
    }
    for key in snapshot.gauges.keys() {
        if let Err(why) = check_metric_name(MetricKind::Gauge, key) {
            violations.push(format!("gauge {why}"));
        }
    }
    for key in snapshot.histograms.keys() {
        if let Err(why) = check_metric_name(MetricKind::Histogram, key) {
            violations.push(format!("histogram {why}"));
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::labeled_key;

    #[test]
    fn conforming_names_pass() {
        for name in [
            "checker.solve.sweeps",
            "checker.backend.scc.ok",
            "serve.jobs.accepted",
            "runtime.journal.torn_tail",
            "numerics.scc.components",
        ] {
            assert_eq!(check_metric_name(MetricKind::Counter, name), Ok(()), "{name}");
        }
        for name in ["span.model_repair", "span.checker.check", "span.numerics.scc.block"] {
            assert_eq!(check_metric_name(MetricKind::Histogram, name), Ok(()), "{name}");
        }
        let labeled = labeled_key("serve.http.requests", &[("status", "202")]);
        assert_eq!(check_metric_name(MetricKind::Counter, &labeled), Ok(()));
    }

    #[test]
    fn nonconforming_names_are_rejected() {
        // Too few segments.
        assert!(check_metric_name(MetricKind::Counter, "checker.sweeps").is_err());
        // Too many.
        assert!(check_metric_name(MetricKind::Counter, "a.b.c.d.e").is_err());
        // Bad charset.
        assert!(check_metric_name(MetricKind::Counter, "serve.Jobs.accepted").is_err());
        assert!(check_metric_name(MetricKind::Counter, "serve.jobs.2fast").is_err());
        assert!(check_metric_name(MetricKind::Counter, "serve..accepted").is_err());
        // Histogram without the span. prefix.
        assert!(check_metric_name(MetricKind::Histogram, "model_repair").is_err());
        // Span name too deep.
        assert!(check_metric_name(MetricKind::Histogram, "span.a.b.c.d").is_err());
        // Bad label key.
        assert!(check_metric_name(MetricKind::Counter, "a.b.c{Status=\"x\"}").is_err());
    }

    #[test]
    fn snapshot_walk_collects_all_violations() {
        let mut snap = MetricsSnapshot::new();
        snap.incr("good.name.here", 1);
        snap.incr("bad", 1);
        snap.set_gauge("also.bad", 1);
        snap.histograms.insert("span.ok".into(), Default::default());
        snap.histograms.insert("noprefix".into(), Default::default());
        let violations = check_snapshot_names(&snap);
        assert_eq!(violations.len(), 3, "{violations:?}");
    }
}
