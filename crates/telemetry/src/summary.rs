//! Human-readable end-of-run summaries.
//!
//! Both the CLI degradation block and the metrics table render through this
//! module, so what a user reads on stderr and what lands in a JSONL trace
//! are derived from the same data and can never disagree.

use crate::metrics::MetricsSnapshot;

/// Degradation facts extracted from a `Diagnostics` (kept as plain fields
/// so this crate stays below `tml-numerics` in the dependency graph).
#[derive(Debug, Clone, Default)]
pub struct DegradationReport<'a> {
    /// Fallback messages, in the order they fired.
    pub fallbacks: &'a [String],
    /// Worst residual observed across linear solves, if any.
    pub worst_residual: Option<f64>,
    /// Budget-exhaustion cause (human-readable), if the run stopped early.
    pub exhausted: Option<String>,
}

impl DegradationReport<'_> {
    /// Whether there is anything worth telling the user.
    pub fn is_degraded(&self) -> bool {
        !self.fallbacks.is_empty() || self.worst_residual.is_some() || self.exhausted.is_some()
    }

    /// Renders the degradation block, one line per fact, or an empty string
    /// when the run was clean.
    pub fn render(&self) -> String {
        if !self.is_degraded() {
            return String::new();
        }
        let mut out = String::from("degraded: result is best-effort, not exact\n");
        for fb in self.fallbacks {
            out.push_str("  fallback: ");
            out.push_str(fb);
            out.push('\n');
        }
        if let Some(r) = self.worst_residual {
            out.push_str(&format!("  worst residual: {r:.3e}\n"));
        }
        if let Some(cause) = &self.exhausted {
            out.push_str("  stopped early: ");
            out.push_str(cause);
            out.push('\n');
        }
        out
    }
}

pub(crate) fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Renders counters and span histograms as an aligned table. Returns an
/// empty string when the snapshot is empty.
pub fn render_metrics(snapshot: &MetricsSnapshot) -> String {
    if snapshot.is_empty() {
        return String::new();
    }
    let mut rows: Vec<[String; 5]> = Vec::new();
    for (name, hist) in &snapshot.histograms {
        rows.push([
            name.clone(),
            hist.count.to_string(),
            fmt_ns(hist.sum_ns),
            fmt_ns(hist.mean_ns()),
            fmt_ns(hist.max_ns),
        ]);
    }
    for (name, value) in &snapshot.counters {
        rows.push([name.clone(), value.to_string(), "-".into(), "-".into(), "-".into()]);
    }
    for (name, value) in &snapshot.gauges {
        rows.push([
            format!("{name} (gauge)"),
            value.to_string(),
            "-".into(),
            "-".into(),
            "-".into(),
        ]);
    }
    let header = ["metric", "count", "total", "mean", "max"];
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in &rows {
        for (w, cell) in widths.iter_mut().zip(row.iter()) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let render_row = |out: &mut String, cells: &[&str]| {
        for (i, (cell, w)) in cells.iter().zip(widths.iter()).enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(cell);
            for _ in cell.len()..*w {
                out.push(' ');
            }
        }
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    };
    render_row(&mut out, &header);
    let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    render_row(&mut out, &rule.iter().map(|s| s.as_str()).collect::<Vec<_>>());
    for row in &rows {
        render_row(&mut out, &row.iter().map(|s| s.as_str()).collect::<Vec<_>>());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::HistogramSnapshot;

    #[test]
    fn clean_report_renders_empty() {
        let rep = DegradationReport::default();
        assert!(!rep.is_degraded());
        assert_eq!(rep.render(), "");
    }

    #[test]
    fn degraded_report_lists_all_facts() {
        let fallbacks = vec!["gauss-seidel stalled".to_string()];
        let rep = DegradationReport {
            fallbacks: &fallbacks,
            worst_residual: Some(1.5e-7),
            exhausted: Some("deadline exceeded".into()),
        };
        let text = rep.render();
        assert!(text.starts_with("degraded:"));
        assert!(text.contains("fallback: gauss-seidel stalled"));
        assert!(text.contains("worst residual: 1.500e-7"));
        assert!(text.contains("stopped early: deadline exceeded"));
    }

    #[test]
    fn metrics_table_aligns_and_covers_all_entries() {
        let mut snap = MetricsSnapshot::new();
        snap.incr("checker.solve.sweeps", 42);
        let h = HistogramSnapshot {
            count: 3,
            sum_ns: 3_600_000,
            max_ns: 2_000_000,
            ..Default::default()
        };
        snap.histograms.insert("span.solver.solve".into(), h);
        let table = render_metrics(&snap);
        assert!(table.contains("metric"));
        assert!(table.contains("span.solver.solve"));
        assert!(table.contains("checker.solve.sweeps"));
        assert!(table.contains("42"));
        assert!(table.contains("3.60ms"));
        assert_eq!(render_metrics(&MetricsSnapshot::new()), "");
    }

    #[test]
    fn duration_formatting_picks_sane_units() {
        assert_eq!(fmt_ns(5), "5ns");
        assert_eq!(fmt_ns(1_500), "1.50us");
        assert_eq!(fmt_ns(2_500_000), "2.50ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.00s");
    }
}
