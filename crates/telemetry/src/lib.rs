//! Structured tracing, metrics and profiling hooks for the repair pipeline.
//!
//! The workspace's long-running routines — model checking, parametric
//! elimination, tape compilation, penalty-solver restarts, IRL gradient
//! passes — are instrumented with three primitives:
//!
//! * **spans** ([`span!`]) — hierarchical timed regions with monotonic
//!   timestamps, thread ids and parent linkage, closed in LIFO order by
//!   RAII guards (early `return`/`?` included);
//! * **counters** ([`counter!`]) — named monotonic totals (constraint
//!   evaluations, solver sweeps, fallback events, …);
//! * **histograms** — per-span wall time recorded automatically into fixed
//!   log-scale buckets (see [`metrics`]).
//!
//! Everything funnels into a [`Subscriber`], which fans events out to
//! pluggable [`sink::Sink`]s (an in-memory ring buffer, a JSONL event
//! writer, …) and aggregates metrics for an end-of-run summary
//! ([`summary`]).
//!
//! # Overhead contract
//!
//! When no subscriber is installed, every instrumentation point reduces to
//! **one relaxed atomic load** and performs **zero heap allocations** (this
//! is asserted by a counting-allocator test). Instrumentation is therefore
//! safe to leave in release binaries and hot paths; only *aggregate* points
//! (one per solve/restart/phase, never per inner iteration) are
//! instrumented.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use tml_telemetry::{counter, span, sink::RingSink, Subscriber};
//!
//! let ring = Arc::new(RingSink::with_capacity(64));
//! let sub = Arc::new(Subscriber::builder().sink(ring.clone()).build());
//! let _scope = tml_telemetry::install_scoped(sub.clone());
//! {
//!     let _solve = span!("solver.solve", restarts = 4_u64);
//!     counter!("solver.evaluations", 123);
//! }
//! let events = ring.drain();
//! assert_eq!(events.len(), 3); // span start, counter, span end
//! let snap = sub.metrics_snapshot();
//! assert_eq!(snap.counter("solver.evaluations"), 123);
//! assert_eq!(snap.histogram("span.solver.solve").unwrap().count, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod json;
pub mod jsonl;
pub mod metrics;
pub mod sink;
pub mod summary;

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

pub use event::{Event, FieldValue};
pub use metrics::{HistogramSnapshot, MetricsSnapshot};

use metrics::Registry;
use sink::Sink;

// ------------------------------------------------------------- global state

/// Number of currently installed subscribers (global + scoped). The
/// disabled fast path is exactly one relaxed load of this counter.
static ACTIVE: AtomicUsize = AtomicUsize::new(0);

/// The globally installed subscriber, if any.
static GLOBAL: RwLock<Option<Arc<Subscriber>>> = RwLock::new(None);

/// Process-wide source of compact thread ids (`std::thread::ThreadId` has
/// no stable integer accessor).
static NEXT_THREAD: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Scoped subscribers for this thread (innermost last).
    static SCOPED: RefCell<Vec<Arc<Subscriber>>> = const { RefCell::new(Vec::new()) };
    /// The stack of open span ids on this thread (parent linkage).
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    /// This thread's compact id.
    static THREAD_ID: u64 = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
}

/// Whether any subscriber (global or scoped) is installed. This is the
/// no-op fast path: a single relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    ACTIVE.load(Ordering::Relaxed) != 0
}

/// The subscriber instrumentation should dispatch to on this thread: the
/// innermost scoped subscriber if one is active here, the global one
/// otherwise.
fn current() -> Option<Arc<Subscriber>> {
    if !enabled() {
        return None;
    }
    if let Some(sub) = SCOPED.with(|s| s.borrow().last().cloned()) {
        return Some(sub);
    }
    GLOBAL.read().ok().and_then(|g| g.clone())
}

/// This thread's compact telemetry id (small, stable per thread).
pub fn thread_id() -> u64 {
    THREAD_ID.with(|t| *t)
}

/// Installs `sub` as the process-wide subscriber, visible from every
/// thread. Returns `false` (and leaves the existing subscriber in place) if
/// one is already installed.
pub fn install_global(sub: Arc<Subscriber>) -> bool {
    let mut g = GLOBAL.write().unwrap_or_else(|e| e.into_inner());
    if g.is_some() {
        return false;
    }
    *g = Some(sub);
    ACTIVE.fetch_add(1, Ordering::Relaxed);
    true
}

/// Removes and returns the process-wide subscriber, if any. Sinks are
/// flushed before the subscriber is handed back.
pub fn uninstall_global() -> Option<Arc<Subscriber>> {
    let mut g = GLOBAL.write().unwrap_or_else(|e| e.into_inner());
    let sub = g.take();
    if let Some(sub) = &sub {
        ACTIVE.fetch_sub(1, Ordering::Relaxed);
        sub.flush();
    }
    sub
}

/// Installs `sub` for the current thread only, until the returned guard is
/// dropped. Scoped subscribers shadow the global one on this thread;
/// instrumentation on *other* threads (e.g. parallel restarts) still sees
/// the global subscriber, so cross-thread tests should prefer
/// [`install_global`].
#[must_use]
pub fn install_scoped(sub: Arc<Subscriber>) -> ScopedGuard {
    SCOPED.with(|s| s.borrow_mut().push(sub));
    ACTIVE.fetch_add(1, Ordering::Relaxed);
    ScopedGuard { _private: () }
}

/// RAII guard for [`install_scoped`]; uninstalls on drop.
pub struct ScopedGuard {
    _private: (),
}

impl Drop for ScopedGuard {
    fn drop(&mut self) {
        if let Some(sub) = SCOPED.with(|s| s.borrow_mut().pop()) {
            ACTIVE.fetch_sub(1, Ordering::Relaxed);
            sub.flush();
        }
    }
}

// -------------------------------------------------------------- subscriber

/// Receives every event from the instrumentation layer, fans it out to the
/// configured sinks and aggregates counters and span-duration histograms.
pub struct Subscriber {
    epoch: Instant,
    sinks: Vec<Arc<dyn Sink>>,
    metrics: Registry,
    next_span: AtomicU64,
}

impl std::fmt::Debug for Subscriber {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Subscriber").field("sinks", &self.sinks.len()).finish()
    }
}

impl Default for Subscriber {
    fn default() -> Self {
        Subscriber::builder().build()
    }
}

impl Subscriber {
    /// Starts building a subscriber.
    pub fn builder() -> SubscriberBuilder {
        SubscriberBuilder { sinks: Vec::new() }
    }

    /// Monotonic nanoseconds since this subscriber was created.
    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn dispatch(&self, event: &Event) {
        for sink in &self.sinks {
            sink.record(event);
        }
    }

    /// Records a named counter increment (also emitted to sinks).
    pub fn record_counter(&self, name: &str, value: u64) {
        self.metrics.incr_counter(name, value);
        self.dispatch(&Event::Counter {
            name: name.to_owned(),
            value,
            thread: thread_id(),
            at_ns: self.now_ns(),
        });
    }

    /// Records `dur_ns` into the named histogram (no sink event; histograms
    /// surface through [`Subscriber::metrics_snapshot`]).
    pub fn record_duration_ns(&self, name: &str, dur_ns: u64) {
        self.metrics.record_ns(name, dur_ns);
    }

    /// A point-in-time copy of every counter and histogram.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Flushes every sink (e.g. the JSONL writer's buffer).
    pub fn flush(&self) {
        for sink in &self.sinks {
            sink.flush();
        }
    }
}

/// Builder for [`Subscriber`].
pub struct SubscriberBuilder {
    sinks: Vec<Arc<dyn Sink>>,
}

impl SubscriberBuilder {
    /// Adds a sink.
    #[must_use]
    pub fn sink(mut self, sink: Arc<dyn Sink>) -> Self {
        self.sinks.push(sink);
        self
    }

    /// Finalizes the subscriber.
    pub fn build(self) -> Subscriber {
        Subscriber {
            epoch: Instant::now(),
            sinks: self.sinks,
            metrics: Registry::new(),
            next_span: AtomicU64::new(1),
        }
    }
}

// ------------------------------------------------------------------- spans

/// An open span; closing (dropping) it emits the end event and records the
/// wall time into the `span.<name>` histogram.
///
/// Guards close in LIFO order by Rust's drop rules, including on early
/// `return` and `?` — this is what makes the parent linkage sound.
#[must_use = "a span guard measures the region it is alive in"]
pub struct SpanGuard {
    inner: Option<SpanInner>,
}

struct SpanInner {
    sub: Arc<Subscriber>,
    id: u64,
    name: &'static str,
    start: Instant,
}

impl SpanGuard {
    /// The no-op guard used when telemetry is disabled. Allocates nothing.
    #[inline]
    pub fn disabled() -> SpanGuard {
        SpanGuard { inner: None }
    }

    /// The span id, when the span is live (useful in tests).
    pub fn id(&self) -> Option<u64> {
        self.inner.as_ref().map(|i| i.id)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else { return };
        let dur_ns = inner.start.elapsed().as_nanos() as u64;
        // Pop this span from the thread's stack. Guards drop LIFO, so the
        // top is ours; a retain keeps the stack sound even if a guard was
        // moved across threads.
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if stack.last() == Some(&inner.id) {
                stack.pop();
            } else {
                stack.retain(|&id| id != inner.id);
            }
        });
        inner.sub.dispatch(&Event::SpanEnd {
            id: inner.id,
            name: inner.name.to_owned(),
            thread: thread_id(),
            at_ns: inner.sub.now_ns(),
            dur_ns,
        });
        inner.sub.record_duration_ns(&format!("span.{}", inner.name), dur_ns);
    }
}

/// Opens a span with explicit fields. Prefer the [`span!`] macro, which
/// skips field construction entirely when telemetry is disabled.
pub fn enter_span(name: &'static str, fields: Vec<(&'static str, FieldValue)>) -> SpanGuard {
    let Some(sub) = current() else { return SpanGuard::disabled() };
    let id = sub.next_span.fetch_add(1, Ordering::Relaxed);
    let parent = SPAN_STACK.with(|s| {
        let mut stack = s.borrow_mut();
        let parent = stack.last().copied();
        stack.push(id);
        parent
    });
    sub.dispatch(&Event::SpanStart {
        id,
        parent,
        name: name.to_owned(),
        thread: thread_id(),
        at_ns: sub.now_ns(),
        fields: fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect(),
    });
    SpanGuard { inner: Some(SpanInner { sub, id, name, start: Instant::now() }) }
}

/// Records a named counter increment through the current subscriber.
/// Prefer the [`counter!`] macro, which is a no-op load when disabled.
pub fn record_counter(name: &str, value: u64) {
    if let Some(sub) = current() {
        sub.record_counter(name, value);
    }
}

/// Records a duration into the named histogram through the current
/// subscriber.
pub fn record_duration(name: &str, dur: std::time::Duration) {
    if let Some(sub) = current() {
        sub.record_duration_ns(name, dur.as_nanos() as u64);
    }
}

/// Opens a timed, named span. Returns a [`SpanGuard`] that must be bound to
/// a local (`let _span = span!(...)`) so it lives for the region.
///
/// ```
/// # use tml_telemetry::span;
/// let _solve = span!("model_repair.solve");
/// let _restart = span!("solver.restart", restart = 3_u64, dims = 2_u64);
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        if $crate::enabled() {
            $crate::enter_span($name, ::std::vec::Vec::new())
        } else {
            $crate::SpanGuard::disabled()
        }
    };
    ($name:expr, $($k:ident = $v:expr),+ $(,)?) => {
        if $crate::enabled() {
            $crate::enter_span(
                $name,
                ::std::vec![$((::std::stringify!($k), $crate::FieldValue::from($v))),+],
            )
        } else {
            $crate::SpanGuard::disabled()
        }
    };
}

/// Increments a named counter (no-op atomic load when disabled).
///
/// ```
/// # use tml_telemetry::counter;
/// counter!("checker.sweeps", 42);
/// ```
#[macro_export]
macro_rules! counter {
    ($name:expr, $n:expr) => {
        if $crate::enabled() {
            $crate::record_counter($name, $n as u64);
        }
    };
}

// A process-wide test lock so integration tests that install the global
// subscriber do not race each other (cargo runs tests concurrently).
#[doc(hidden)]
pub static TEST_MUTEX: Mutex<()> = Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;
    use sink::RingSink;

    fn scoped() -> (Arc<RingSink>, Arc<Subscriber>, ScopedGuard) {
        let ring = Arc::new(RingSink::with_capacity(256));
        let sub = Arc::new(Subscriber::builder().sink(ring.clone()).build());
        let guard = install_scoped(sub.clone());
        (ring, sub, guard)
    }

    #[test]
    fn disabled_spans_are_inert() {
        // No subscriber installed on this thread and (in this test binary)
        // no global one: spans carry no id and emit nothing.
        let g = span!("nothing");
        assert_eq!(g.id(), None);
        drop(g);
        counter!("nothing.count", 5);
    }

    #[test]
    fn span_parentage_and_events() {
        let (ring, sub, _guard) = scoped();
        {
            let outer = span!("outer");
            let outer_id = outer.id().unwrap();
            {
                let inner = span!("inner", idx = 7_u64);
                assert_ne!(inner.id().unwrap(), outer_id);
            }
            counter!("c", 2);
        }
        let events = ring.drain();
        assert_eq!(events.len(), 5, "{events:?}");
        match &events[0] {
            Event::SpanStart { name, parent, .. } => {
                assert_eq!(name, "outer");
                assert_eq!(*parent, None);
            }
            other => panic!("expected outer start, got {other:?}"),
        }
        match &events[1] {
            Event::SpanStart { name, parent, fields, .. } => {
                assert_eq!(name, "inner");
                assert!(parent.is_some(), "inner span must link to outer");
                assert_eq!(fields[0].0, "idx");
            }
            other => panic!("expected inner start, got {other:?}"),
        }
        assert!(matches!(&events[2], Event::SpanEnd { name, .. } if name == "inner"));
        assert!(matches!(&events[3], Event::Counter { name, value: 2, .. } if name == "c"));
        assert!(matches!(&events[4], Event::SpanEnd { name, .. } if name == "outer"));
        let snap = sub.metrics_snapshot();
        assert_eq!(snap.counter("c"), 2);
        assert_eq!(snap.histogram("span.outer").unwrap().count, 1);
        assert_eq!(snap.histogram("span.inner").unwrap().count, 1);
    }

    #[test]
    fn scoped_subscriber_uninstalls_on_drop() {
        assert!(!enabled() || GLOBAL.read().unwrap().is_some());
        {
            let (_ring, _sub, _guard) = scoped();
            assert!(enabled());
        }
        // After the guard drops, this thread no longer dispatches anywhere.
        let g = span!("after");
        assert_eq!(g.id(), None);
    }

    #[test]
    fn global_install_is_exclusive() {
        let _lock = TEST_MUTEX.lock().unwrap_or_else(|e| e.into_inner());
        let a = Arc::new(Subscriber::default());
        let b = Arc::new(Subscriber::default());
        assert!(install_global(a));
        assert!(!install_global(b), "second install must be rejected");
        assert!(uninstall_global().is_some());
        assert!(uninstall_global().is_none());
    }

    #[test]
    fn spans_on_spawned_threads_see_the_global_subscriber() {
        let _lock = TEST_MUTEX.lock().unwrap_or_else(|e| e.into_inner());
        let ring = Arc::new(RingSink::with_capacity(64));
        let sub = Arc::new(Subscriber::builder().sink(ring.clone()).build());
        assert!(install_global(sub));
        std::thread::scope(|s| {
            s.spawn(|| {
                let g = span!("worker");
                assert!(g.id().is_some());
            });
        });
        assert!(uninstall_global().is_some());
        let events = ring.drain();
        assert_eq!(events.len(), 2);
    }
}
