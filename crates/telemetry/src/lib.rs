//! Structured tracing, metrics and profiling hooks for the repair pipeline.
//!
//! The workspace's long-running routines — model checking, parametric
//! elimination, tape compilation, penalty-solver restarts, IRL gradient
//! passes — are instrumented with three primitives:
//!
//! * **spans** ([`span!`]) — hierarchical timed regions with monotonic
//!   timestamps, thread ids and parent linkage, closed in LIFO order by
//!   RAII guards (early `return`/`?` included);
//! * **counters** ([`counter!`]) — named monotonic totals (constraint
//!   evaluations, solver sweeps, fallback events, …);
//! * **histograms** — per-span wall time recorded automatically into fixed
//!   log-scale buckets (see [`metrics`]).
//!
//! Everything funnels into a [`Subscriber`], which fans events out to
//! pluggable [`sink::Sink`]s (an in-memory ring buffer, a JSONL event
//! writer, …) and aggregates metrics for an end-of-run summary
//! ([`summary`]).
//!
//! # Overhead contract
//!
//! When no subscriber is installed, every instrumentation point reduces to
//! **one relaxed atomic load** and performs **zero heap allocations** (this
//! is asserted by a counting-allocator test). Instrumentation is therefore
//! safe to leave in release binaries and hot paths; only *aggregate* points
//! (one per solve/restart/phase, never per inner iteration) are
//! instrumented.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use tml_telemetry::{counter, span, sink::RingSink, Subscriber};
//!
//! let ring = Arc::new(RingSink::with_capacity(64));
//! let sub = Arc::new(Subscriber::builder().sink(ring.clone()).build());
//! let _scope = tml_telemetry::install_scoped(sub.clone());
//! {
//!     let _solve = span!("solver.solve", restarts = 4_u64);
//!     counter!("solver.penalty.evaluations", 123);
//! }
//! let events = ring.drain();
//! assert_eq!(events.len(), 3); // span start, counter, span end
//! let snap = sub.metrics_snapshot();
//! assert_eq!(snap.counter("solver.penalty.evaluations"), 123);
//! assert_eq!(snap.histogram("span.solver.solve").unwrap().count, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod event;
pub mod json;
pub mod jsonl;
pub mod metrics;
pub mod naming;
pub mod prometheus;
pub mod sink;
pub mod summary;

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

pub use event::{Event, FieldValue};
pub use metrics::{HistogramSnapshot, MetricsSnapshot};

use metrics::Registry;
use sink::Sink;

// ------------------------------------------------------------- global state

/// Number of currently installed subscribers (global + scoped). The
/// disabled fast path is exactly one relaxed load of this counter.
static ACTIVE: AtomicUsize = AtomicUsize::new(0);

/// The globally installed subscriber, if any.
static GLOBAL: RwLock<Option<Arc<Subscriber>>> = RwLock::new(None);

/// Process-wide source of compact thread ids (`std::thread::ThreadId` has
/// no stable integer accessor).
static NEXT_THREAD: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Scoped subscribers for this thread (innermost last).
    static SCOPED: RefCell<Vec<Arc<Subscriber>>> = const { RefCell::new(Vec::new()) };
    /// The stack of open span ids on this thread (parent linkage).
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    /// The stack of installed trace contexts on this thread (innermost
    /// last); see [`with_trace`].
    static TRACE_STACK: RefCell<Vec<TraceContext>> = const { RefCell::new(Vec::new()) };
    /// This thread's compact id.
    static THREAD_ID: u64 = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
}

/// Whether any subscriber (global or scoped) is installed. This is the
/// no-op fast path: a single relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    ACTIVE.load(Ordering::Relaxed) != 0
}

/// The subscriber instrumentation should dispatch to on this thread: the
/// innermost scoped subscriber if one is active here, the global one
/// otherwise.
fn current() -> Option<Arc<Subscriber>> {
    if !enabled() {
        return None;
    }
    if let Some(sub) = SCOPED.with(|s| s.borrow().last().cloned()) {
        return Some(sub);
    }
    GLOBAL.read().ok().and_then(|g| g.clone())
}

/// This thread's compact telemetry id (small, stable per thread).
pub fn thread_id() -> u64 {
    THREAD_ID.with(|t| *t)
}

// ----------------------------------------------------------- trace context

/// Correlates spans and counters that belong to one logical request across
/// threads, processes and crash/resume boundaries.
///
/// A trace context is installed explicitly at unit-of-work boundaries
/// ([`with_trace`]) and read implicitly by every [`span!`] and
/// [`counter!`] fired while it is installed: span-start and counter events
/// carry `trace_id` on the wire, and a root span opened under the context
/// (empty span stack) links to `parent_span` instead of `null` — this is
/// what stitches a worker-thread span tree to the submission-side span
/// that enqueued the job.
///
/// Ids are derived deterministically from `(seed, job)` — never from wall
/// time — so a resumed run re-derives the *same* id and re-links to the
/// original trace (see `Submission::trace` in `tml-runtime`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceContext {
    /// The 64-bit trace id (never 0; serialized as 16 hex digits).
    pub trace_id: u64,
    /// Span id (in the *originating* process's id space) that logically
    /// spawned this unit of work, if known. Only meaningful within one
    /// trace file; it is not persisted across processes.
    pub parent_span: Option<u64>,
}

/// The splitmix64 finalizer: a bijective avalanche mix, the standard way to
/// turn small structured integers (seed, job index) into well-spread ids.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TraceContext {
    /// A context with the given id and no parent span.
    pub fn new(trace_id: u64) -> TraceContext {
        TraceContext { trace_id: if trace_id == 0 { 1 } else { trace_id }, parent_span: None }
    }

    /// Derives the seed-deterministic trace id for `(seed, job)`. Pure —
    /// no clock, no process state — so the id can be re-derived by a
    /// resumed process, an old journal without trace records, or a test.
    pub fn derive(seed: u64, job: u64) -> TraceContext {
        let mixed = splitmix64(splitmix64(seed) ^ splitmix64(job ^ 0xA076_1D64_78BD_642F));
        TraceContext::new(mixed)
    }

    /// Attaches the span that spawned this unit of work.
    #[must_use]
    pub fn with_parent_span(mut self, span: u64) -> TraceContext {
        self.parent_span = Some(span);
        self
    }

    /// The wire form of the trace id: exactly 16 lowercase hex digits.
    pub fn hex(&self) -> String {
        format!("{:016x}", self.trace_id)
    }

    /// Parses a 16-hex-digit trace id as written by [`TraceContext::hex`].
    pub fn parse_hex(s: &str) -> Option<u64> {
        if s.len() != 16 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        u64::from_str_radix(s, 16).ok()
    }
}

/// Installs `ctx` as this thread's trace context until the returned guard
/// drops. Nested installs shadow (innermost wins); the guard restores the
/// outer context. Installation is independent of whether a subscriber is
/// enabled — a context on a disabled thread costs nothing at
/// instrumentation points (the [`enabled`] load still short-circuits
/// first).
#[must_use]
pub fn with_trace(ctx: TraceContext) -> TraceGuard {
    TRACE_STACK.with(|t| t.borrow_mut().push(ctx));
    TraceGuard { ctx }
}

/// This thread's innermost installed trace context, if any.
pub fn current_trace() -> Option<TraceContext> {
    TRACE_STACK.with(|t| t.borrow().last().copied())
}

/// RAII guard for [`with_trace`]; restores the previous context on drop.
pub struct TraceGuard {
    ctx: TraceContext,
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        TRACE_STACK.with(|t| {
            let mut stack = t.borrow_mut();
            // Guards drop LIFO, so the top is ours; fall back to removing
            // the last matching entry if one was moved across scopes.
            if stack.last() == Some(&self.ctx) {
                stack.pop();
            } else if let Some(pos) = stack.iter().rposition(|c| *c == self.ctx) {
                stack.remove(pos);
            }
        });
    }
}

/// Installs `sub` as the process-wide subscriber, visible from every
/// thread. Returns `false` (and leaves the existing subscriber in place) if
/// one is already installed.
pub fn install_global(sub: Arc<Subscriber>) -> bool {
    let mut g = GLOBAL.write().unwrap_or_else(|e| e.into_inner());
    if g.is_some() {
        return false;
    }
    *g = Some(sub);
    ACTIVE.fetch_add(1, Ordering::Relaxed);
    true
}

/// The currently installed process-wide subscriber, if any. Lets a
/// long-running component (e.g. the serve layer) aggregate its metrics
/// into the same registry the CLI installed for `--trace-json`, instead of
/// splitting spans and counters across two subscribers.
pub fn global_subscriber() -> Option<Arc<Subscriber>> {
    GLOBAL.read().ok().and_then(|g| g.clone())
}

/// Removes and returns the process-wide subscriber, if any. Sinks are
/// flushed before the subscriber is handed back.
pub fn uninstall_global() -> Option<Arc<Subscriber>> {
    let mut g = GLOBAL.write().unwrap_or_else(|e| e.into_inner());
    let sub = g.take();
    if let Some(sub) = &sub {
        ACTIVE.fetch_sub(1, Ordering::Relaxed);
        sub.flush();
    }
    sub
}

/// Installs `sub` for the current thread only, until the returned guard is
/// dropped. Scoped subscribers shadow the global one on this thread;
/// instrumentation on *other* threads (e.g. parallel restarts) still sees
/// the global subscriber, so cross-thread tests should prefer
/// [`install_global`].
#[must_use]
pub fn install_scoped(sub: Arc<Subscriber>) -> ScopedGuard {
    SCOPED.with(|s| s.borrow_mut().push(sub));
    ACTIVE.fetch_add(1, Ordering::Relaxed);
    ScopedGuard { _private: () }
}

/// RAII guard for [`install_scoped`]; uninstalls on drop.
pub struct ScopedGuard {
    _private: (),
}

impl Drop for ScopedGuard {
    fn drop(&mut self) {
        if let Some(sub) = SCOPED.with(|s| s.borrow_mut().pop()) {
            ACTIVE.fetch_sub(1, Ordering::Relaxed);
            sub.flush();
        }
    }
}

// -------------------------------------------------------------- subscriber

/// Receives every event from the instrumentation layer, fans it out to the
/// configured sinks and aggregates counters and span-duration histograms.
pub struct Subscriber {
    epoch: Instant,
    sinks: Vec<Arc<dyn Sink>>,
    metrics: Registry,
    next_span: AtomicU64,
}

impl std::fmt::Debug for Subscriber {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Subscriber").field("sinks", &self.sinks.len()).finish()
    }
}

impl Default for Subscriber {
    fn default() -> Self {
        Subscriber::builder().build()
    }
}

impl Subscriber {
    /// Starts building a subscriber.
    pub fn builder() -> SubscriberBuilder {
        SubscriberBuilder { sinks: Vec::new() }
    }

    /// Monotonic nanoseconds since this subscriber was created.
    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn dispatch(&self, event: &Event) {
        for sink in &self.sinks {
            sink.record(event);
        }
    }

    /// Records a named counter increment (also emitted to sinks, tagged
    /// with this thread's trace context when one is installed).
    pub fn record_counter(&self, name: &str, value: u64) {
        self.metrics.incr_counter(name, value);
        self.dispatch(&Event::Counter {
            name: name.to_owned(),
            value,
            thread: thread_id(),
            at_ns: self.now_ns(),
            trace: current_trace().map(|c| c.trace_id),
        });
    }

    /// Records a labeled counter increment. Labels become part of the
    /// registry key (`name{k="v",...}`, keys sorted); no sink event is
    /// emitted — labeled series surface through `/metrics` and snapshots.
    pub fn record_counter_labeled(&self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.metrics.incr_counter_labeled(name, labels, value);
    }

    /// Sets a named gauge (last write wins; surfaces through snapshots and
    /// the Prometheus exposition, no sink event).
    pub fn set_gauge(&self, name: &str, value: u64) {
        self.metrics.set_gauge(name, value);
    }

    /// Records `dur_ns` into the named histogram (no sink event; histograms
    /// surface through [`Subscriber::metrics_snapshot`]).
    pub fn record_duration_ns(&self, name: &str, dur_ns: u64) {
        self.metrics.record_ns(name, dur_ns);
    }

    /// A point-in-time copy of every counter and histogram.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Flushes every sink (e.g. the JSONL writer's buffer).
    pub fn flush(&self) {
        for sink in &self.sinks {
            sink.flush();
        }
    }
}

/// Builder for [`Subscriber`].
pub struct SubscriberBuilder {
    sinks: Vec<Arc<dyn Sink>>,
}

impl SubscriberBuilder {
    /// Adds a sink.
    #[must_use]
    pub fn sink(mut self, sink: Arc<dyn Sink>) -> Self {
        self.sinks.push(sink);
        self
    }

    /// Finalizes the subscriber.
    pub fn build(self) -> Subscriber {
        Subscriber {
            epoch: Instant::now(),
            sinks: self.sinks,
            metrics: Registry::new(),
            next_span: AtomicU64::new(1),
        }
    }
}

// ------------------------------------------------------------------- spans

/// An open span; closing (dropping) it emits the end event and records the
/// wall time into the `span.<name>` histogram.
///
/// Guards close in LIFO order by Rust's drop rules, including on early
/// `return` and `?` — this is what makes the parent linkage sound.
#[must_use = "a span guard measures the region it is alive in"]
pub struct SpanGuard {
    inner: Option<SpanInner>,
}

struct SpanInner {
    sub: Arc<Subscriber>,
    id: u64,
    name: &'static str,
    start: Instant,
}

impl SpanGuard {
    /// The no-op guard used when telemetry is disabled. Allocates nothing.
    #[inline]
    pub fn disabled() -> SpanGuard {
        SpanGuard { inner: None }
    }

    /// The span id, when the span is live (useful in tests).
    pub fn id(&self) -> Option<u64> {
        self.inner.as_ref().map(|i| i.id)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else { return };
        let dur_ns = inner.start.elapsed().as_nanos() as u64;
        // Pop this span from the thread's stack. Guards drop LIFO, so the
        // top is ours; a retain keeps the stack sound even if a guard was
        // moved across threads.
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if stack.last() == Some(&inner.id) {
                stack.pop();
            } else {
                stack.retain(|&id| id != inner.id);
            }
        });
        inner.sub.dispatch(&Event::SpanEnd {
            id: inner.id,
            name: inner.name.to_owned(),
            thread: thread_id(),
            at_ns: inner.sub.now_ns(),
            dur_ns,
        });
        inner.sub.record_duration_ns(&format!("span.{}", inner.name), dur_ns);
    }
}

/// Opens a span with explicit fields. Prefer the [`span!`] macro, which
/// skips field construction entirely when telemetry is disabled.
pub fn enter_span(name: &'static str, fields: Vec<(&'static str, FieldValue)>) -> SpanGuard {
    let Some(sub) = current() else { return SpanGuard::disabled() };
    let id = sub.next_span.fetch_add(1, Ordering::Relaxed);
    let trace = current_trace();
    let parent = SPAN_STACK.with(|s| {
        let mut stack = s.borrow_mut();
        let parent = stack.last().copied();
        stack.push(id);
        parent
    });
    // A root span on this thread links to the trace context's parent span
    // instead of null: that is the cross-thread edge from the worker's
    // span tree back to the submission-side span that enqueued the job.
    let parent = parent.or_else(|| trace.and_then(|c| c.parent_span));
    sub.dispatch(&Event::SpanStart {
        id,
        parent,
        name: name.to_owned(),
        thread: thread_id(),
        at_ns: sub.now_ns(),
        trace: trace.map(|c| c.trace_id),
        fields: fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect(),
    });
    SpanGuard { inner: Some(SpanInner { sub, id, name, start: Instant::now() }) }
}

/// Records a named counter increment through the current subscriber.
/// Prefer the [`counter!`] macro, which is a no-op load when disabled.
pub fn record_counter(name: &str, value: u64) {
    if let Some(sub) = current() {
        sub.record_counter(name, value);
    }
}

/// Records a duration into the named histogram through the current
/// subscriber.
pub fn record_duration(name: &str, dur: std::time::Duration) {
    if let Some(sub) = current() {
        sub.record_duration_ns(name, dur.as_nanos() as u64);
    }
}

/// Opens a timed, named span. Returns a [`SpanGuard`] that must be bound to
/// a local (`let _span = span!(...)`) so it lives for the region.
///
/// ```
/// # use tml_telemetry::span;
/// let _solve = span!("model_repair.solve");
/// let _restart = span!("solver.restart", restart = 3_u64, dims = 2_u64);
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        if $crate::enabled() {
            $crate::enter_span($name, ::std::vec::Vec::new())
        } else {
            $crate::SpanGuard::disabled()
        }
    };
    ($name:expr, $($k:ident = $v:expr),+ $(,)?) => {
        if $crate::enabled() {
            $crate::enter_span(
                $name,
                ::std::vec![$((::std::stringify!($k), $crate::FieldValue::from($v))),+],
            )
        } else {
            $crate::SpanGuard::disabled()
        }
    };
}

/// Increments a named counter (no-op atomic load when disabled).
///
/// ```
/// # use tml_telemetry::counter;
/// counter!("checker.solve.sweeps", 42);
/// ```
#[macro_export]
macro_rules! counter {
    ($name:expr, $n:expr) => {
        if $crate::enabled() {
            $crate::record_counter($name, $n as u64);
        }
    };
}

// A process-wide test lock so integration tests that install the global
// subscriber do not race each other (cargo runs tests concurrently).
#[doc(hidden)]
pub static TEST_MUTEX: Mutex<()> = Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;
    use sink::RingSink;

    fn scoped() -> (Arc<RingSink>, Arc<Subscriber>, ScopedGuard) {
        let ring = Arc::new(RingSink::with_capacity(256));
        let sub = Arc::new(Subscriber::builder().sink(ring.clone()).build());
        let guard = install_scoped(sub.clone());
        (ring, sub, guard)
    }

    #[test]
    fn disabled_spans_are_inert() {
        // No subscriber installed on this thread and (in this test binary)
        // no global one: spans carry no id and emit nothing.
        let g = span!("nothing");
        assert_eq!(g.id(), None);
        drop(g);
        counter!("nothing.count", 5);
    }

    #[test]
    fn span_parentage_and_events() {
        let (ring, sub, _guard) = scoped();
        {
            let outer = span!("outer");
            let outer_id = outer.id().unwrap();
            {
                let inner = span!("inner", idx = 7_u64);
                assert_ne!(inner.id().unwrap(), outer_id);
            }
            counter!("c", 2);
        }
        let events = ring.drain();
        assert_eq!(events.len(), 5, "{events:?}");
        match &events[0] {
            Event::SpanStart { name, parent, .. } => {
                assert_eq!(name, "outer");
                assert_eq!(*parent, None);
            }
            other => panic!("expected outer start, got {other:?}"),
        }
        match &events[1] {
            Event::SpanStart { name, parent, fields, .. } => {
                assert_eq!(name, "inner");
                assert!(parent.is_some(), "inner span must link to outer");
                assert_eq!(fields[0].0, "idx");
            }
            other => panic!("expected inner start, got {other:?}"),
        }
        assert!(matches!(&events[2], Event::SpanEnd { name, .. } if name == "inner"));
        assert!(matches!(&events[3], Event::Counter { name, value: 2, .. } if name == "c"));
        assert!(matches!(&events[4], Event::SpanEnd { name, .. } if name == "outer"));
        let snap = sub.metrics_snapshot();
        assert_eq!(snap.counter("c"), 2);
        assert_eq!(snap.histogram("span.outer").unwrap().count, 1);
        assert_eq!(snap.histogram("span.inner").unwrap().count, 1);
    }

    #[test]
    fn scoped_subscriber_uninstalls_on_drop() {
        assert!(!enabled() || GLOBAL.read().unwrap().is_some());
        {
            let (_ring, _sub, _guard) = scoped();
            assert!(enabled());
        }
        // After the guard drops, this thread no longer dispatches anywhere.
        let g = span!("after");
        assert_eq!(g.id(), None);
    }

    #[test]
    fn global_install_is_exclusive() {
        let _lock = TEST_MUTEX.lock().unwrap_or_else(|e| e.into_inner());
        let a = Arc::new(Subscriber::default());
        let b = Arc::new(Subscriber::default());
        assert!(install_global(a));
        assert!(!install_global(b), "second install must be rejected");
        assert!(uninstall_global().is_some());
        assert!(uninstall_global().is_none());
    }

    #[test]
    fn trace_ids_are_seed_deterministic_and_hex_roundtrip() {
        let a = TraceContext::derive(2024, 3);
        let b = TraceContext::derive(2024, 3);
        assert_eq!(a, b, "same (seed, job) must derive the same id");
        assert_ne!(a.trace_id, TraceContext::derive(2024, 4).trace_id);
        assert_ne!(a.trace_id, TraceContext::derive(2025, 3).trace_id);
        assert_ne!(a.trace_id, 0, "0 is reserved as the non-id");
        let hex = a.hex();
        assert_eq!(hex.len(), 16);
        assert_eq!(TraceContext::parse_hex(&hex), Some(a.trace_id));
        assert_eq!(TraceContext::parse_hex("xyz"), None);
        assert_eq!(TraceContext::parse_hex("00000000000000"), None, "length must be 16");
    }

    #[test]
    fn spans_and_counters_carry_the_installed_trace() {
        let (ring, _sub, _guard) = scoped();
        let ctx = TraceContext::derive(7, 0).with_parent_span(99);
        {
            let _t = with_trace(ctx);
            assert_eq!(current_trace(), Some(ctx));
            {
                let _root = span!("job.root");
                let _child = span!("job.child");
                counter!("job.root.ticks", 1);
            }
        }
        assert_eq!(current_trace(), None, "guard restores the outer (empty) context");
        let events = ring.drain();
        match &events[0] {
            Event::SpanStart { parent, trace, .. } => {
                assert_eq!(*parent, Some(99), "root span links to the context's parent span");
                assert_eq!(*trace, Some(ctx.trace_id));
            }
            other => panic!("expected root start, got {other:?}"),
        }
        match &events[1] {
            Event::SpanStart { parent, trace, .. } => {
                assert_ne!(*parent, Some(99), "nested span keeps its thread-local parent");
                assert_eq!(*trace, Some(ctx.trace_id));
            }
            other => panic!("expected child start, got {other:?}"),
        }
        assert!(matches!(&events[2], Event::Counter { trace: Some(t), .. } if *t == ctx.trace_id));
    }

    #[test]
    fn nested_trace_contexts_shadow_and_restore() {
        let outer = TraceContext::new(10);
        let inner = TraceContext::new(20);
        let _a = with_trace(outer);
        {
            let _b = with_trace(inner);
            assert_eq!(current_trace(), Some(inner));
        }
        assert_eq!(current_trace(), Some(outer));
    }

    #[test]
    fn spans_on_spawned_threads_see_the_global_subscriber() {
        let _lock = TEST_MUTEX.lock().unwrap_or_else(|e| e.into_inner());
        let ring = Arc::new(RingSink::with_capacity(64));
        let sub = Arc::new(Subscriber::builder().sink(ring.clone()).build());
        assert!(install_global(sub));
        std::thread::scope(|s| {
            s.spawn(|| {
                let g = span!("worker");
                assert!(g.id().is_some());
            });
        });
        assert!(uninstall_global().is_some());
        let events = ring.drain();
        assert_eq!(events.len(), 2);
    }
}
