//! Event sinks: where dispatched events go.
//!
//! Two built-ins: [`RingSink`] (bounded in-memory buffer for tests and
//! post-hoc inspection) and [`JsonlSink`] (streams `tml-trace/v1` lines to
//! any `Write`). Custom sinks implement [`Sink`].

use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::event::Event;
use crate::jsonl::JsonlWriter;

/// Receives every event a subscriber dispatches. Implementations must be
/// thread-safe; `record` is called from whichever thread the span/counter
/// fired on.
pub trait Sink: Send + Sync {
    /// Handles one event.
    fn record(&self, event: &Event);
    /// Flushes buffered output (no-op by default).
    fn flush(&self) {}
}

/// A bounded in-memory buffer of the most recent events.
///
/// Writers claim a slot with one atomic fetch-add on the head counter and
/// then take only that slot's own mutex, so concurrent recorders on
/// different slots never contend. When the buffer wraps, the oldest events
/// are overwritten (the total count keeps growing, so `dropped()` reports
/// how many were lost).
pub struct RingSink {
    slots: Vec<Mutex<Option<Event>>>,
    head: AtomicU64,
}

impl RingSink {
    /// A ring holding up to `capacity` events (minimum 1).
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        RingSink {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            head: AtomicU64::new(0),
        }
    }

    /// Total events ever recorded (including overwritten ones).
    pub fn total(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Events lost to wrap-around.
    pub fn dropped(&self) -> u64 {
        self.total().saturating_sub(self.slots.len() as u64)
    }

    /// Removes and returns the buffered events, oldest first.
    pub fn drain(&self) -> Vec<Event> {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let start = head.saturating_sub(cap);
        let mut out = Vec::new();
        for seq in start..head {
            let slot = &self.slots[(seq % cap) as usize];
            if let Some(ev) = slot.lock().unwrap_or_else(|e| e.into_inner()).take() {
                out.push(ev);
            }
        }
        out
    }
}

impl Sink for RingSink {
    fn record(&self, event: &Event) {
        let seq = self.head.fetch_add(1, Ordering::AcqRel);
        let slot = &self.slots[(seq % self.slots.len() as u64) as usize];
        *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(event.clone());
    }
}

/// Streams events as `tml-trace/v1` JSON lines to a writer, starting with
/// the schema meta line. Line framing is shared with every other `tml-*/v1`
/// stream via [`crate::jsonl::JsonlWriter`].
pub struct JsonlSink<W: Write + Send> {
    writer: JsonlWriter<W>,
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wraps `writer` and immediately emits the meta line identifying the
    /// producing tool.
    pub fn new(writer: W, tool: &str) -> std::io::Result<Self> {
        let writer = JsonlWriter::new(writer);
        writer.line(&Event::meta_line(tool))?;
        Ok(JsonlSink { writer })
    }
}

impl<W: Write + Send> Sink for JsonlSink<W> {
    fn record(&self, event: &Event) {
        // Trace output is best-effort: a full disk must not abort a repair.
        let _ = self.writer.line(&event.to_json_line());
    }

    fn flush(&self) {
        let _ = self.writer.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn counter_event(value: u64) -> Event {
        Event::Counter { name: "c".into(), value, thread: 1, at_ns: value, trace: None }
    }

    #[test]
    fn ring_preserves_order_and_wraps() {
        let ring = RingSink::with_capacity(4);
        for i in 0..6 {
            ring.record(&counter_event(i));
        }
        assert_eq!(ring.total(), 6);
        assert_eq!(ring.dropped(), 2);
        let values: Vec<u64> = ring
            .drain()
            .into_iter()
            .map(|e| match e {
                Event::Counter { value, .. } => value,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(values, vec![2, 3, 4, 5]);
        assert!(ring.drain().is_empty(), "drain empties the buffer");
    }

    #[test]
    fn ring_handles_concurrent_writers() {
        let ring = Arc::new(RingSink::with_capacity(1024));
        std::thread::scope(|s| {
            for t in 0..4 {
                let ring = ring.clone();
                s.spawn(move || {
                    for i in 0..100 {
                        ring.record(&counter_event(t * 1000 + i));
                    }
                });
            }
        });
        assert_eq!(ring.total(), 400);
        assert_eq!(ring.drain().len(), 400);
    }

    #[test]
    fn jsonl_sink_emits_meta_then_valid_lines() {
        let buf: Vec<u8> = Vec::new();
        let sink = JsonlSink::new(buf, "test-tool").unwrap();
        sink.record(&counter_event(9));
        sink.record(&Event::SpanStart {
            id: 1,
            parent: None,
            name: "s".into(),
            thread: 1,
            at_ns: 0,
            trace: None,
            fields: vec![],
        });
        let buf = sink.writer.into_inner();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        let meta = crate::json::parse(lines[0]).unwrap();
        assert_eq!(meta.get("schema").and_then(|v| v.as_str()), Some("tml-trace/v1"));
        assert_eq!(meta.get("tool").and_then(|v| v.as_str()), Some("test-tool"));
        for line in &lines[1..] {
            crate::json::parse(line).expect("every event line is valid JSON");
        }
    }
}
