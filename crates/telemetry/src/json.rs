//! Minimal JSON writer and parser.
//!
//! `tml-telemetry` is deliberately dependency-free (it sits below every
//! other workspace crate), so it carries its own tiny JSON support: enough
//! to emit trace lines and to *validate* them in the
//! `telemetry_schema_check` binary. This is not a general-purpose JSON
//! library — it handles the subset the `tml-trace/v1` schema uses (objects,
//! strings, numbers, booleans, null) plus arrays for completeness.

use std::collections::BTreeMap;

/// Appends a JSON string literal (with escaping) to `out`.
pub fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a finite-safe JSON number to `out` (NaN/inf become null, which
/// keeps every emitted line valid JSON).
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let s = format!("{v}");
        out.push_str(&s);
        // Make sure it reads back as a float, not an integer.
        if !s.contains('.') && !s.contains('e') && !s.contains('E') {
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (kept as f64; u64 accessor checks integrality).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// String accessor.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Unsigned integer accessor (exact integers only).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// Float accessor.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Boolean accessor.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Whether this is JSON `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Array accessor.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Object accessor.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }
}

/// Parses one JSON document. Returns a human-readable error with a byte
/// offset on malformed input; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn parse_value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') => self.parse_lit("true", Value::Bool(true)),
            Some(b'f') => self.parse_lit("false", Value::Bool(false)),
            Some(b'n') => self.parse_lit("null", Value::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(format!("unexpected byte '{}' at {}", b as char, self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn parse_lit(&mut self, lit: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn parse_object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            // Surrogate pairs are not needed by our schema;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so this
                    // char boundary arithmetic is safe).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid utf-8")?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| format!("invalid number '{text}' at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_escaping_roundtrips() {
        let mut out = String::new();
        write_string(&mut out, "a\"b\\c\nd\te\u{0001}");
        let v = parse(&out).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nd\te\u{0001}"));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a":[1,2.5,-3],"b":{"c":null,"d":false},"e":"x"}"#).unwrap();
        let a = v.get("a").unwrap();
        match a {
            Value::Array(items) => {
                assert_eq!(items.len(), 3);
                assert_eq!(items[1].as_f64(), Some(2.5));
            }
            _ => panic!("expected array"),
        }
        assert!(v.get("b").unwrap().get("c").unwrap().is_null());
        assert_eq!(v.get("b").unwrap().get("d").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("e").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,2,]").is_err());
        assert!(parse("123 45").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut out = String::new();
        write_f64(&mut out, f64::NAN);
        assert_eq!(out, "null");
        let mut out = String::new();
        write_f64(&mut out, 3.0);
        assert_eq!(out, "3.0");
    }

    #[test]
    fn integer_accessor_checks_integrality() {
        let v = parse("2.5").unwrap();
        assert_eq!(v.as_u64(), None);
        let v = parse("7").unwrap();
        assert_eq!(v.as_u64(), Some(7));
        let v = parse("-1").unwrap();
        assert_eq!(v.as_u64(), None);
    }
}
