//! Span-nesting guarantees: guards close in LIFO order even on early
//! `return` and `?`, and parent linkage always points at the innermost
//! open span on the thread.

use std::sync::Arc;

use tml_telemetry::sink::RingSink;
use tml_telemetry::{span, Event, Subscriber};

fn with_ring<R>(f: impl FnOnce() -> R) -> (Vec<Event>, R) {
    let ring = Arc::new(RingSink::with_capacity(256));
    let sub = Arc::new(Subscriber::builder().sink(ring.clone()).build());
    let guard = tml_telemetry::install_scoped(sub);
    let result = f();
    drop(guard);
    (ring.drain(), result)
}

fn names_in_order(events: &[Event]) -> Vec<(String, String)> {
    events
        .iter()
        .map(|e| match e {
            Event::SpanStart { name, .. } => ("start".to_string(), name.clone()),
            Event::SpanEnd { name, .. } => ("end".to_string(), name.clone()),
            Event::Counter { name, .. } => ("counter".to_string(), name.clone()),
        })
        .collect()
}

#[test]
fn early_return_closes_spans_lifo() {
    fn inner_with_early_return(flag: bool) -> u32 {
        let _a = span!("a");
        let _b = span!("b");
        if flag {
            return 1; // both guards must close here, b before a
        }
        2
    }

    let (events, out) = with_ring(|| inner_with_early_return(true));
    assert_eq!(out, 1);
    assert_eq!(
        names_in_order(&events),
        vec![
            ("start".into(), "a".into()),
            ("start".into(), "b".into()),
            ("end".into(), "b".into()),
            ("end".into(), "a".into()),
        ]
    );
}

#[test]
fn question_mark_closes_spans_lifo() {
    fn fallible(fail: bool) -> Result<(), String> {
        let _outer = span!("outer");
        let step = |ok: bool| -> Result<(), String> {
            let _inner = span!("inner");
            if ok {
                Ok(())
            } else {
                Err("boom".into())
            }
        };
        step(true)?;
        step(!fail)?; // on fail=true this `?` propagates; spans still close
        step(true)?;
        Ok(())
    }

    let (events, out) = with_ring(|| fallible(true));
    assert!(out.is_err());
    assert_eq!(
        names_in_order(&events),
        vec![
            ("start".into(), "outer".into()),
            ("start".into(), "inner".into()),
            ("end".into(), "inner".into()),
            ("start".into(), "inner".into()),
            ("end".into(), "inner".into()),
            ("end".into(), "outer".into()),
        ]
    );
}

#[test]
fn parent_linkage_follows_the_open_stack() {
    let (events, _) = with_ring(|| {
        let _a = span!("a");
        {
            let _b = span!("b");
            let _c = span!("c");
        }
        let _d = span!("d");
    });
    let mut ids = std::collections::HashMap::new();
    for e in &events {
        if let Event::SpanStart { id, name, parent, .. } = e {
            ids.insert(name.clone(), (*id, *parent));
        }
    }
    let (a_id, a_parent) = ids["a"];
    let (b_id, b_parent) = ids["b"];
    let (_c_id, c_parent) = ids["c"];
    let (_d_id, d_parent) = ids["d"];
    assert_eq!(a_parent, None);
    assert_eq!(b_parent, Some(a_id));
    assert_eq!(c_parent, Some(b_id));
    assert_eq!(d_parent, Some(a_id), "after b/c close, a is innermost again");
}

#[test]
fn sibling_spans_reuse_the_same_parent() {
    let (events, _) = with_ring(|| {
        let _root = span!("root");
        for i in 0..3_u64 {
            let _restart = span!("solver.restart", restart = i);
        }
    });
    let mut root_id = None;
    let mut restart_parents = Vec::new();
    for e in &events {
        if let Event::SpanStart { id, name, parent, .. } = e {
            if name == "root" {
                root_id = Some(*id);
            } else {
                restart_parents.push(*parent);
            }
        }
    }
    assert_eq!(restart_parents.len(), 3);
    for p in restart_parents {
        assert_eq!(p, Some(root_id.unwrap()));
    }
}
