//! Disabled-path overhead guarantee: with no subscriber installed, opening
//! and dropping a span performs ZERO heap allocations, and a counter
//! increment likewise. This is the contract that makes it safe to leave
//! instrumentation in hot paths (solver inner loops, per-operator PCTL
//! evaluation) in release builds.
//!
//! This lives in its own integration-test binary because (a) it needs a
//! process-global counting allocator, which the `#![forbid(unsafe_code)]`
//! library itself must not contain, and (b) no other test in this binary
//! may install a subscriber.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use tml_telemetry::{counter, span};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates directly to the system allocator; the counter update
// is a relaxed atomic add with no other side effects.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations_during<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let result = f();
    (ALLOCATIONS.load(Ordering::Relaxed) - before, result)
}

#[test]
fn disabled_spans_and_counters_allocate_nothing() {
    assert!(!tml_telemetry::enabled(), "no subscriber may be installed in this binary");

    // Warm up thread-locals (lazy init may allocate once, legitimately).
    {
        let _g = span!("warmup", i = 1_u64);
        counter!("warmup.count", 1);
    }

    let (allocs, _) = allocations_during(|| {
        for i in 0..1000_u64 {
            let _outer = span!("model_repair.solve", restart = i);
            let _inner = span!("solver.restart", restart = i, dims = 4_u64);
            counter!("solver.penalty.evaluations", i);
        }
    });
    assert_eq!(allocs, 0, "disabled telemetry fast path must not allocate");
}

#[test]
fn disabled_spans_allocate_nothing_under_a_trace_context() {
    assert!(!tml_telemetry::enabled(), "no subscriber may be installed in this binary");

    // Install the trace context BEFORE the counted window: the first
    // TRACE_STACK push may allocate (Vec growth), which is install-time
    // cost, not per-span cost.
    let ctx = tml_telemetry::TraceContext::derive(7, 3).with_parent_span(11);
    let _trace = tml_telemetry::with_trace(ctx);
    {
        let _g = span!("warmup", i = 1_u64);
        counter!("warmup.count", 1);
    }

    let (allocs, _) = allocations_during(|| {
        for i in 0..1000_u64 {
            let _span = span!("runtime.job", job = i);
            counter!("runtime.attempt.failures", 1);
        }
    });
    assert_eq!(allocs, 0, "trace propagation must stay free while disabled");
}

#[test]
fn disabled_span_guard_is_inert() {
    let g = span!("nothing");
    assert_eq!(g.id(), None);
}
