use std::error::Error;
use std::fmt;

/// Error produced when parsing a PCTL formula or trace rule fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input at which the error was detected.
    pub position: usize,
    /// Human-readable description of what went wrong.
    pub message: String,
}

impl ParseError {
    pub(crate) fn new(position: usize, message: impl Into<String>) -> Self {
        ParseError { position, message: message.into() }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at offset {}: {}", self.position, self.message)
    }
}

impl Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_position() {
        let e = ParseError::new(4, "expected ']'");
        assert!(e.to_string().contains("offset 4"));
        assert!(e.to_string().contains("expected ']'"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ParseError>();
    }
}
