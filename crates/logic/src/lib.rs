//! PCTL and finite-trace rule logics for trusted machine learning.
//!
//! Two specification languages live here:
//!
//! * **PCTL** ([`StateFormula`], [`PathFormula`], [`Query`]) — the property
//!   language for model checking Markov chains and MDPs, e.g.
//!   `P>=0.99 [ F "changedLane" ]` or `R{"attempts"}<=40 [ F "delivered" ]`.
//!   Parse with [`parse_formula`] / [`parse_query`].
//! * **Trace rules** ([`TraceFormula`]) — LTL interpreted over *finite*
//!   trajectories of an MDP, used by Reward Repair to express constraints
//!   such as "the trajectory never enters an unsafe state". Evaluate with
//!   [`TraceFormula::eval`] against anything implementing [`TraceContext`].
//!
//! # Example
//!
//! ```
//! use tml_logic::parse_formula;
//!
//! # fn main() -> Result<(), tml_logic::ParseError> {
//! let phi = parse_formula("P>=0.99 [ F (\"changedLane\" | \"reducedSpeed\") ]")?;
//! // Formulas round-trip through their display form.
//! let again = parse_formula(&phi.to_string())?;
//! assert_eq!(phi, again);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ast;
mod display;
mod error;
mod parser;
mod trace;

pub use ast::{CmpOp, Opt, PathFormula, Query, RewardKind, StateFormula};
pub use error::ParseError;
pub use parser::{parse_formula, parse_query, parse_trace_formula};
pub use trace::{SliceTrace, TraceContext, TraceFormula};
