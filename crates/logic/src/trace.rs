//! LTL over finite traces, the rule language of Reward Repair.
//!
//! Reward Repair (paper §IV-C) constrains the *trajectory distribution* of
//! an MDP: rules `φ_l(U)` are evaluated on finite trajectories `U` and
//! trajectories violating them are driven to probability zero. Rules can be
//! propositional ("the action taken in S1 is 1") or temporal ("the
//! trajectory never visits an unsafe state"), so the natural rule language
//! is LTL with finite-trace semantics.

use serde::{Deserialize, Serialize};

/// A view of one finite trajectory that rules are evaluated against.
///
/// Implemented by the workspace's `Path`-based adapters; any sequence that
/// can answer "does the state at position `i` carry label `a`?" and "which
/// action was taken at position `i`?" qualifies.
pub trait TraceContext {
    /// Number of positions (states) in the trace.
    fn len(&self) -> usize;

    /// Whether the trace is empty (has no positions).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the state at position `i` carries the atomic proposition.
    fn holds(&self, position: usize, atom: &str) -> bool;

    /// The action taken at position `i`, if any (the final position has
    /// none).
    fn action(&self, position: usize) -> Option<usize>;
}

/// A finite-trace LTL formula.
///
/// Semantics at position `i` of a trace of length `n` (positions `0..n`):
///
/// * `X φ` holds iff `i+1 < n` and `φ` holds at `i+1` (strong next);
/// * `G φ` holds iff `φ` holds at all `j ≥ i`;
/// * `F φ` holds iff `φ` holds at some `j ≥ i`;
/// * `φ U ψ` holds iff `ψ` holds at some `k ≥ i` and `φ` holds at all
///   `j ∈ [i, k)`.
///
/// # Example
///
/// ```
/// use tml_logic::{TraceFormula, SliceTrace};
///
/// // "never unsafe": G !unsafe
/// let rule = TraceFormula::Always(Box::new(TraceFormula::Not(Box::new(
///     TraceFormula::Atom("unsafe".into()),
/// ))));
/// let safe = SliceTrace::new(vec![vec!["start"], vec![], vec!["goal"]], vec![0, 0]);
/// let unsafe_ = SliceTrace::new(vec![vec!["start"], vec!["unsafe"]], vec![0]);
/// assert!(rule.eval(&safe, 0));
/// assert!(!rule.eval(&unsafe_, 0));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceFormula {
    /// Constant truth.
    True,
    /// The state at the current position carries this label.
    Atom(String),
    /// The action taken at the current position equals this id.
    ActionIs(usize),
    /// Negation.
    Not(Box<TraceFormula>),
    /// Conjunction.
    And(Box<TraceFormula>, Box<TraceFormula>),
    /// Disjunction.
    Or(Box<TraceFormula>, Box<TraceFormula>),
    /// Strong next.
    Next(Box<TraceFormula>),
    /// Globally (over the remaining suffix).
    Always(Box<TraceFormula>),
    /// Eventually (within the remaining suffix).
    Eventually(Box<TraceFormula>),
    /// Until.
    Until(Box<TraceFormula>, Box<TraceFormula>),
}

impl TraceFormula {
    /// Evaluates the formula at `position` of `trace`.
    ///
    /// Positions at or beyond the end of the trace satisfy no atom, so e.g.
    /// `F φ` is false there and `G φ` is (vacuously) true.
    pub fn eval<T: TraceContext + ?Sized>(&self, trace: &T, position: usize) -> bool {
        let n = trace.len();
        match self {
            TraceFormula::True => true,
            TraceFormula::Atom(a) => position < n && trace.holds(position, a),
            TraceFormula::ActionIs(a) => trace.action(position) == Some(*a),
            TraceFormula::Not(f) => !f.eval(trace, position),
            TraceFormula::And(a, b) => a.eval(trace, position) && b.eval(trace, position),
            TraceFormula::Or(a, b) => a.eval(trace, position) || b.eval(trace, position),
            TraceFormula::Next(f) => position + 1 < n && f.eval(trace, position + 1),
            TraceFormula::Always(f) => (position..n).all(|i| f.eval(trace, i)),
            TraceFormula::Eventually(f) => (position..n).any(|i| f.eval(trace, i)),
            TraceFormula::Until(lhs, rhs) => (position..n)
                .any(|k| rhs.eval(trace, k) && (position..k).all(|j| lhs.eval(trace, j))),
        }
    }

    /// Convenience: `G !atom` — the trace never visits an `atom` state.
    pub fn never(atom: &str) -> Self {
        TraceFormula::Always(Box::new(TraceFormula::Not(Box::new(TraceFormula::Atom(
            atom.to_owned(),
        )))))
    }

    /// Convenience: `F atom` — the trace eventually visits an `atom` state.
    pub fn eventually(atom: &str) -> Self {
        TraceFormula::Eventually(Box::new(TraceFormula::Atom(atom.to_owned())))
    }

    /// Convenience: `G (atom => action = a)` — whenever the trace is in an
    /// `atom` state, it takes action `a` there.
    pub fn whenever_do(atom: &str, action: usize) -> Self {
        TraceFormula::Always(Box::new(TraceFormula::Or(
            Box::new(TraceFormula::Not(Box::new(TraceFormula::Atom(atom.to_owned())))),
            Box::new(TraceFormula::ActionIs(action)),
        )))
    }
}

/// A simple owned [`TraceContext`] built from per-position label sets and an
/// action sequence. Mostly useful in tests and examples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SliceTrace {
    labels: Vec<Vec<String>>,
    actions: Vec<usize>,
}

impl SliceTrace {
    /// Builds a trace from per-position labels and actions
    /// (`actions.len()` should be `labels.len() - 1`, but this is not
    /// enforced: missing actions simply answer `None`).
    pub fn new<S: Into<String>>(labels: Vec<Vec<S>>, actions: Vec<usize>) -> Self {
        SliceTrace {
            labels: labels
                .into_iter()
                .map(|row| row.into_iter().map(Into::into).collect())
                .collect(),
            actions,
        }
    }
}

impl TraceContext for SliceTrace {
    fn len(&self) -> usize {
        self.labels.len()
    }

    fn holds(&self, position: usize, atom: &str) -> bool {
        self.labels.get(position).is_some_and(|row| row.iter().any(|l| l == atom))
    }

    fn action(&self, position: usize) -> Option<usize> {
        self.actions.get(position).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> SliceTrace {
        // positions: 0:{s0} 1:{s1} 2:{unsafe} 3:{goal}; actions 0,1,2
        SliceTrace::new(vec![vec!["s0"], vec!["s1"], vec!["unsafe"], vec!["goal"]], vec![0, 1, 2])
    }

    #[test]
    fn atoms_and_actions() {
        let tr = t();
        assert!(TraceFormula::Atom("s0".into()).eval(&tr, 0));
        assert!(!TraceFormula::Atom("s0".into()).eval(&tr, 1));
        assert!(TraceFormula::ActionIs(1).eval(&tr, 1));
        assert!(!TraceFormula::ActionIs(1).eval(&tr, 3)); // terminal position
        assert!(!TraceFormula::Atom("s0".into()).eval(&tr, 99));
    }

    #[test]
    fn temporal_operators() {
        let tr = t();
        assert!(TraceFormula::eventually("goal").eval(&tr, 0));
        assert!(
            !TraceFormula::eventually("goal").eval(&SliceTrace::new(vec![vec!["s0"]], vec![]), 0)
        );
        assert!(!TraceFormula::never("unsafe").eval(&tr, 0));
        assert!(TraceFormula::never("unsafe").eval(&tr, 3));
        let next = TraceFormula::Next(Box::new(TraceFormula::Atom("s1".into())));
        assert!(next.eval(&tr, 0));
        assert!(!next.eval(&tr, 3)); // strong next at trace end
    }

    #[test]
    fn until_semantics() {
        let tr = t();
        // !goal U goal: holds (goal at 3, all earlier positions lack it)
        let u = TraceFormula::Until(
            Box::new(TraceFormula::Not(Box::new(TraceFormula::Atom("goal".into())))),
            Box::new(TraceFormula::Atom("goal".into())),
        );
        assert!(u.eval(&tr, 0));
        // s0 U goal: fails, s0 only holds at position 0
        let u2 = TraceFormula::Until(
            Box::new(TraceFormula::Atom("s0".into())),
            Box::new(TraceFormula::Atom("goal".into())),
        );
        assert!(!u2.eval(&tr, 0));
        // s0 U s1: rhs at position 1, lhs at position 0 — holds
        let u3 = TraceFormula::Until(
            Box::new(TraceFormula::Atom("s0".into())),
            Box::new(TraceFormula::Atom("s1".into())),
        );
        assert!(u3.eval(&tr, 0));
    }

    #[test]
    fn whenever_do_rule() {
        let tr = t();
        // whenever in s1, take action 1 — true on this trace
        assert!(TraceFormula::whenever_do("s1", 1).eval(&tr, 0));
        // whenever in s1, take action 0 — false
        assert!(!TraceFormula::whenever_do("s1", 0).eval(&tr, 0));
        // vacuous: no s7 states
        assert!(TraceFormula::whenever_do("s7", 0).eval(&tr, 0));
    }

    #[test]
    fn boolean_connectives() {
        let tr = t();
        let a = TraceFormula::Atom("s0".into());
        let b = TraceFormula::Atom("s1".into());
        assert!(TraceFormula::Or(Box::new(a.clone()), Box::new(b.clone())).eval(&tr, 0));
        assert!(!TraceFormula::And(Box::new(a.clone()), Box::new(b)).eval(&tr, 0));
        assert!(TraceFormula::True.eval(&tr, 0));
        assert!(!TraceFormula::Not(Box::new(TraceFormula::True)).eval(&tr, 0));
    }

    #[test]
    fn empty_trace_edge_cases() {
        let empty = SliceTrace::new(Vec::<Vec<&str>>::new(), vec![]);
        assert!(empty.is_empty());
        assert!(TraceFormula::never("x").eval(&empty, 0)); // vacuously true
        assert!(!TraceFormula::eventually("x").eval(&empty, 0));
    }
}
