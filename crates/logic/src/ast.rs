use serde::{Deserialize, Serialize};

/// Comparison operator of a probability or reward bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    /// Strictly less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Strictly greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CmpOp {
    /// Applies the comparison: `lhs ⋈ rhs`.
    ///
    /// # Example
    ///
    /// ```
    /// use tml_logic::CmpOp;
    /// assert!(CmpOp::Ge.test(0.99, 0.99));
    /// assert!(!CmpOp::Gt.test(0.99, 0.99));
    /// ```
    pub fn test(self, lhs: f64, rhs: f64) -> bool {
        match self {
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Gt => lhs > rhs,
            CmpOp::Ge => lhs >= rhs,
        }
    }

    /// Whether the operator is a lower bound (`>` or `>=`).
    ///
    /// Lower-bounded probability operators on MDPs quantify over the *worst*
    /// scheduler (`Pmin`), upper-bounded ones over the *best* (`Pmax`).
    pub fn is_lower_bound(self) -> bool {
        matches!(self, CmpOp::Gt | CmpOp::Ge)
    }

    /// The textual symbol (`"<"`, `"<="`, `">"`, `">="`).
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// Optimization direction over MDP schedulers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Opt {
    /// Minimize over schedulers (`Pmin`, `Rmin`).
    Min,
    /// Maximize over schedulers (`Pmax`, `Rmax`).
    Max,
}

/// A PCTL state formula.
///
/// Atoms refer to state labels from the model's
/// `Labeling`. The probabilistic operator `P⋈b[ψ]` holds in a state iff the
/// probability of the path formula `ψ` satisfies the bound; on MDPs the
/// scheduler quantification is either explicit (`opt`) or derived from the
/// bound direction (lower bounds → all schedulers → `Pmin`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StateFormula {
    /// Constant truth.
    True,
    /// Constant falsehood.
    False,
    /// An atomic proposition (state label).
    Atom(String),
    /// Negation.
    Not(Box<StateFormula>),
    /// Conjunction.
    And(Box<StateFormula>, Box<StateFormula>),
    /// Disjunction.
    Or(Box<StateFormula>, Box<StateFormula>),
    /// Implication.
    Implies(Box<StateFormula>, Box<StateFormula>),
    /// `P⋈b [ψ]` — probability bound on a path formula.
    Prob {
        /// Explicit scheduler quantification (`Pmax`/`Pmin`); `None` means
        /// derive from the bound direction (the PRISM convention).
        opt: Option<Opt>,
        /// The comparison operator.
        op: CmpOp,
        /// The probability threshold in `[0, 1]`.
        bound: f64,
        /// The path formula.
        path: PathFormula,
    },
    /// `R{"structure"}⋈c [·]` — bound on an expected reward.
    Reward {
        /// Reward structure name; `None` selects the model's default.
        structure: Option<String>,
        /// Explicit scheduler quantification; `None` derives from the bound
        /// (upper bounds → `Rmax`, i.e. even the worst scheduler stays below).
        opt: Option<Opt>,
        /// The comparison operator.
        op: CmpOp,
        /// The reward threshold (non-negative).
        bound: f64,
        /// Which expected reward is constrained.
        kind: RewardKind,
    },
}

impl StateFormula {
    /// Convenience constructor: `P⋈b [F atom]`.
    pub fn eventually(op: CmpOp, bound: f64, atom: &str) -> Self {
        StateFormula::Prob {
            opt: None,
            op,
            bound,
            path: PathFormula::Eventually {
                sub: Box::new(StateFormula::Atom(atom.to_owned())),
                bound: None,
            },
        }
    }

    /// Convenience constructor: `R{"structure"}⋈c [F atom]`.
    pub fn reach_reward(structure: &str, op: CmpOp, bound: f64, atom: &str) -> Self {
        StateFormula::Reward {
            structure: Some(structure.to_owned()),
            opt: None,
            op,
            bound,
            kind: RewardKind::Reach(Box::new(StateFormula::Atom(atom.to_owned()))),
        }
    }
}

/// A PCTL path formula.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PathFormula {
    /// `X φ` — `φ` holds in the next state.
    Next(Box<StateFormula>),
    /// `φ U ψ` (optionally step-bounded `φ U<=k ψ`).
    Until {
        /// Left operand (must hold until the right one does).
        lhs: Box<StateFormula>,
        /// Right operand (must eventually hold).
        rhs: Box<StateFormula>,
        /// Optional step bound `k`.
        bound: Option<u64>,
    },
    /// `F φ` — eventually (optionally step-bounded).
    Eventually {
        /// The operand.
        sub: Box<StateFormula>,
        /// Optional step bound `k`.
        bound: Option<u64>,
    },
    /// `G φ` — globally (optionally step-bounded).
    Globally {
        /// The operand.
        sub: Box<StateFormula>,
        /// Optional step bound `k`.
        bound: Option<u64>,
    },
}

/// Which expected reward a reward operator refers to.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RewardKind {
    /// `[F φ]` — expected reward accumulated until first reaching `φ`.
    Reach(Box<StateFormula>),
    /// `[C<=k]` — expected reward accumulated over the first `k` steps.
    Cumulative(u64),
}

/// A numeric top-level query such as `P=? [ F "goal" ]` or
/// `Rmax=? [ F "delivered" ]`: instead of a truth value, the checker returns
/// the probability/reward itself.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Query {
    /// `P=? [ψ]` / `Pmax=?` / `Pmin=?`.
    Prob {
        /// Scheduler quantification (required for MDPs, ignored for DTMCs).
        opt: Option<Opt>,
        /// The path formula.
        path: PathFormula,
    },
    /// `R=? [·]` / `Rmax=?` / `Rmin=?`.
    Reward {
        /// Reward structure name; `None` selects the model's default.
        structure: Option<String>,
        /// Scheduler quantification.
        opt: Option<Opt>,
        /// Which expected reward is queried.
        kind: RewardKind,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_op_semantics() {
        assert!(CmpOp::Lt.test(1.0, 2.0));
        assert!(!CmpOp::Lt.test(2.0, 2.0));
        assert!(CmpOp::Le.test(2.0, 2.0));
        assert!(CmpOp::Gt.test(3.0, 2.0));
        assert!(CmpOp::Ge.test(2.0, 2.0));
        assert!(CmpOp::Ge.is_lower_bound());
        assert!(CmpOp::Gt.is_lower_bound());
        assert!(!CmpOp::Le.is_lower_bound());
        assert_eq!(CmpOp::Le.symbol(), "<=");
    }

    #[test]
    fn convenience_constructors() {
        let f = StateFormula::eventually(CmpOp::Ge, 0.9, "goal");
        match f {
            StateFormula::Prob {
                op: CmpOp::Ge,
                bound,
                path: PathFormula::Eventually { sub, bound: None },
                ..
            } => {
                assert_eq!(bound, 0.9);
                assert_eq!(*sub, StateFormula::Atom("goal".into()));
            }
            other => panic!("unexpected shape: {other:?}"),
        }
        let r = StateFormula::reach_reward("attempts", CmpOp::Le, 19.0, "delivered");
        match r {
            StateFormula::Reward { structure: Some(s), kind: RewardKind::Reach(t), .. } => {
                assert_eq!(s, "attempts");
                assert_eq!(*t, StateFormula::Atom("delivered".into()));
            }
            other => panic!("unexpected shape: {other:?}"),
        }
    }
}
