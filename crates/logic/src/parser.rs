//! Recursive-descent parser for PCTL formulas, numeric queries and trace
//! rules.
//!
//! The grammar follows PRISM's property syntax closely:
//!
//! ```text
//! state    := implies
//! implies  := or ('=>' implies)?
//! or       := and ('|' and)*
//! and      := unary ('&' unary)*
//! unary    := '!' unary | '(' state ')' | 'true' | 'false' | '"atom"'
//!           | ('P'|'Pmax'|'Pmin') cmp number '[' path ']'
//!           | ('R'|'Rmax'|'Rmin') ('{' '"name"' '}')? cmp number '[' rkind ']'
//! path     := 'X' state | 'F' ('<=' int)? state | 'G' ('<=' int)? state
//!           | state 'U' ('<=' int)? state
//! rkind    := 'F' state | 'C' '<=' int
//! cmp      := '<' | '<=' | '>' | '>='
//! ```
//!
//! Atoms must be double-quoted, which keeps the keyword set (`U`, `X`, `F`,
//! `G`, `C`, `P…`, `R…`, `true`, `false`) unambiguous.

use crate::ast::{CmpOp, Opt, PathFormula, Query, RewardKind, StateFormula};
use crate::error::ParseError;
use crate::trace::TraceFormula;

/// Parses a boolean-valued PCTL state formula, e.g.
/// `P>=0.99 [ F "changedLane" ]`.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first offending token.
///
/// # Example
///
/// ```
/// use tml_logic::{parse_formula, StateFormula, CmpOp};
///
/// # fn main() -> Result<(), tml_logic::ParseError> {
/// let phi = parse_formula("R{\"attempts\"}<=40 [ F \"delivered\" ]")?;
/// assert_eq!(phi, StateFormula::reach_reward("attempts", CmpOp::Le, 40.0, "delivered"));
/// # Ok(())
/// # }
/// ```
pub fn parse_formula(input: &str) -> Result<StateFormula, ParseError> {
    let mut p = Parser::new(input)?;
    let f = p.state_formula()?;
    p.expect_eof()?;
    Ok(f)
}

/// Parses a numeric query such as `Pmax=? [ F "goal" ]` or
/// `R{"attempts"}min=? [ C<=10 ]`.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first offending token.
pub fn parse_query(input: &str) -> Result<Query, ParseError> {
    let mut p = Parser::new(input)?;
    let q = p.query()?;
    p.expect_eof()?;
    Ok(q)
}

/// Parses a finite-trace rule, e.g. `G !("unsafe")` or
/// `G ("s1" => action=1)`.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first offending token.
pub fn parse_trace_formula(input: &str) -> Result<TraceFormula, ParseError> {
    let mut p = Parser::new(input)?;
    let f = p.trace_formula()?;
    p.expect_eof()?;
    Ok(f)
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Quoted(String),
    Number(f64),
    LBrack,
    RBrack,
    LParen,
    RParen,
    LBrace,
    RBrace,
    Bang,
    Amp,
    Pipe,
    Arrow,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    EqQuestion,
}

struct Parser {
    toks: Vec<(Tok, usize)>,
    pos: usize,
    input_len: usize,
}

impl Parser {
    fn new(input: &str) -> Result<Self, ParseError> {
        Ok(Parser { toks: lex(input)?, pos: 0, input_len: input.len() })
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn here(&self) -> usize {
        self.toks.get(self.pos).map(|&(_, p)| p).unwrap_or(self.input_len)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(t, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, tok: &Tok) -> bool {
        if self.peek() == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: Tok, what: &str) -> Result<(), ParseError> {
        if self.eat(&tok) {
            Ok(())
        } else {
            Err(ParseError::new(self.here(), format!("expected {what}")))
        }
    }

    fn expect_eof(&self) -> Result<(), ParseError> {
        if self.pos == self.toks.len() {
            Ok(())
        } else {
            Err(ParseError::new(self.here(), "unexpected trailing input"))
        }
    }

    // ---------- PCTL state formulas ----------

    fn state_formula(&mut self) -> Result<StateFormula, ParseError> {
        let lhs = self.or_formula()?;
        if self.eat(&Tok::Arrow) {
            let rhs = self.state_formula()?;
            return Ok(StateFormula::Implies(Box::new(lhs), Box::new(rhs)));
        }
        Ok(lhs)
    }

    fn or_formula(&mut self) -> Result<StateFormula, ParseError> {
        let mut lhs = self.and_formula()?;
        while self.eat(&Tok::Pipe) {
            let rhs = self.and_formula()?;
            lhs = StateFormula::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_formula(&mut self) -> Result<StateFormula, ParseError> {
        let mut lhs = self.unary_formula()?;
        while self.eat(&Tok::Amp) {
            let rhs = self.unary_formula()?;
            lhs = StateFormula::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary_formula(&mut self) -> Result<StateFormula, ParseError> {
        let at = self.here();
        match self.bump() {
            Some(Tok::Bang) => Ok(StateFormula::Not(Box::new(self.unary_formula()?))),
            Some(Tok::LParen) => {
                let f = self.state_formula()?;
                self.expect(Tok::RParen, "')'")?;
                Ok(f)
            }
            Some(Tok::Quoted(a)) => Ok(StateFormula::Atom(a)),
            Some(Tok::Ident(id)) => match id.as_str() {
                "true" => Ok(StateFormula::True),
                "false" => Ok(StateFormula::False),
                "P" | "Pmax" | "Pmin" => self.prob_operator(opt_of(&id)),
                "R" | "Rmax" | "Rmin" => self.reward_operator(opt_of(&id)),
                other => Err(ParseError::new(
                    at,
                    format!("unexpected identifier {other:?} (atoms must be double-quoted)"),
                )),
            },
            Some(_) => Err(ParseError::new(at, "expected a state formula")),
            None => Err(ParseError::new(at, "unexpected end of input")),
        }
    }

    fn prob_operator(&mut self, opt: Option<Opt>) -> Result<StateFormula, ParseError> {
        let at = self.here();
        let op = self.cmp_op()?;
        let bound = self.number()?;
        if !(0.0..=1.0).contains(&bound) {
            return Err(ParseError::new(at, format!("probability bound {bound} outside [0, 1]")));
        }
        self.expect(Tok::LBrack, "'['")?;
        let path = self.path_formula()?;
        self.expect(Tok::RBrack, "']'")?;
        Ok(StateFormula::Prob { opt, op, bound, path })
    }

    fn reward_operator(&mut self, opt: Option<Opt>) -> Result<StateFormula, ParseError> {
        let structure = self.reward_structure_name()?;
        // Allow the PRISM 4 style R{"s"}max<=b as well: an optional
        // min/max suffix after the structure braces.
        let opt = self.opt_suffix(opt);
        let at = self.here();
        let op = self.cmp_op()?;
        let bound = self.number()?;
        if bound < 0.0 {
            return Err(ParseError::new(at, format!("negative reward bound {bound}")));
        }
        self.expect(Tok::LBrack, "'['")?;
        let kind = self.reward_kind()?;
        self.expect(Tok::RBrack, "']'")?;
        Ok(StateFormula::Reward { structure, opt, op, bound, kind })
    }

    fn reward_structure_name(&mut self) -> Result<Option<String>, ParseError> {
        if !self.eat(&Tok::LBrace) {
            return Ok(None);
        }
        let at = self.here();
        let name = match self.bump() {
            Some(Tok::Quoted(s)) => s,
            _ => return Err(ParseError::new(at, "expected a quoted reward structure name")),
        };
        self.expect(Tok::RBrace, "'}'")?;
        Ok(Some(name))
    }

    fn opt_suffix(&mut self, existing: Option<Opt>) -> Option<Opt> {
        if existing.is_some() {
            return existing;
        }
        match self.peek() {
            Some(Tok::Ident(id)) if id == "min" => {
                self.pos += 1;
                Some(Opt::Min)
            }
            Some(Tok::Ident(id)) if id == "max" => {
                self.pos += 1;
                Some(Opt::Max)
            }
            _ => None,
        }
    }

    fn reward_kind(&mut self) -> Result<RewardKind, ParseError> {
        match self.peek() {
            Some(Tok::Ident(id)) if id == "F" => {
                self.pos += 1;
                Ok(RewardKind::Reach(Box::new(self.state_formula()?)))
            }
            Some(Tok::Ident(id)) if id == "C" => {
                self.pos += 1;
                self.expect(Tok::Le, "'<=' after C")?;
                Ok(RewardKind::Cumulative(self.integer()?))
            }
            _ => Err(ParseError::new(self.here(), "expected 'F φ' or 'C<=k' in reward operator")),
        }
    }

    fn path_formula(&mut self) -> Result<PathFormula, ParseError> {
        match self.peek() {
            Some(Tok::Ident(id)) if id == "X" => {
                self.pos += 1;
                Ok(PathFormula::Next(Box::new(self.state_formula()?)))
            }
            Some(Tok::Ident(id)) if id == "F" => {
                self.pos += 1;
                let bound = self.step_bound()?;
                Ok(PathFormula::Eventually { sub: Box::new(self.state_formula()?), bound })
            }
            Some(Tok::Ident(id)) if id == "G" => {
                self.pos += 1;
                let bound = self.step_bound()?;
                Ok(PathFormula::Globally { sub: Box::new(self.state_formula()?), bound })
            }
            _ => {
                let lhs = self.state_formula()?;
                match self.peek() {
                    Some(Tok::Ident(id)) if id == "U" => {
                        self.pos += 1;
                        let bound = self.step_bound()?;
                        let rhs = self.state_formula()?;
                        Ok(PathFormula::Until { lhs: Box::new(lhs), rhs: Box::new(rhs), bound })
                    }
                    _ => Err(ParseError::new(self.here(), "expected 'U' in path formula")),
                }
            }
        }
    }

    fn step_bound(&mut self) -> Result<Option<u64>, ParseError> {
        if self.eat(&Tok::Le) {
            Ok(Some(self.integer()?))
        } else {
            Ok(None)
        }
    }

    fn cmp_op(&mut self) -> Result<CmpOp, ParseError> {
        let at = self.here();
        match self.bump() {
            Some(Tok::Lt) => Ok(CmpOp::Lt),
            Some(Tok::Le) => Ok(CmpOp::Le),
            Some(Tok::Gt) => Ok(CmpOp::Gt),
            Some(Tok::Ge) => Ok(CmpOp::Ge),
            _ => Err(ParseError::new(at, "expected a comparison operator")),
        }
    }

    fn number(&mut self) -> Result<f64, ParseError> {
        let at = self.here();
        match self.bump() {
            Some(Tok::Number(n)) => Ok(n),
            _ => Err(ParseError::new(at, "expected a number")),
        }
    }

    fn integer(&mut self) -> Result<u64, ParseError> {
        let at = self.here();
        let n = self.number()?;
        if n.fract() != 0.0 || n < 0.0 || n > u64::MAX as f64 {
            return Err(ParseError::new(at, format!("expected a non-negative integer, got {n}")));
        }
        Ok(n as u64)
    }

    // ---------- queries ----------

    fn query(&mut self) -> Result<Query, ParseError> {
        let at = self.here();
        match self.bump() {
            Some(Tok::Ident(id)) if matches!(id.as_str(), "P" | "Pmax" | "Pmin") => {
                let opt = opt_of(&id);
                self.expect(Tok::EqQuestion, "'=?'")?;
                self.expect(Tok::LBrack, "'['")?;
                let path = self.path_formula()?;
                self.expect(Tok::RBrack, "']'")?;
                Ok(Query::Prob { opt, path })
            }
            Some(Tok::Ident(id)) if matches!(id.as_str(), "R" | "Rmax" | "Rmin") => {
                let structure = self.reward_structure_name()?;
                let opt = self.opt_suffix(opt_of(&id));
                self.expect(Tok::EqQuestion, "'=?'")?;
                self.expect(Tok::LBrack, "'['")?;
                let kind = self.reward_kind()?;
                self.expect(Tok::RBrack, "']'")?;
                Ok(Query::Reward { structure, opt, kind })
            }
            _ => Err(ParseError::new(at, "expected a query starting with P or R")),
        }
    }

    // ---------- trace rules ----------

    fn trace_formula(&mut self) -> Result<TraceFormula, ParseError> {
        let lhs = self.trace_or()?;
        match self.peek() {
            Some(Tok::Ident(id)) if id == "U" => {
                self.pos += 1;
                let rhs = self.trace_formula()?;
                Ok(TraceFormula::Until(Box::new(lhs), Box::new(rhs)))
            }
            Some(Tok::Arrow) => {
                // sugar: a => b  ≡  !a | b
                self.pos += 1;
                let rhs = self.trace_formula()?;
                Ok(TraceFormula::Or(Box::new(TraceFormula::Not(Box::new(lhs))), Box::new(rhs)))
            }
            _ => Ok(lhs),
        }
    }

    fn trace_or(&mut self) -> Result<TraceFormula, ParseError> {
        let mut lhs = self.trace_and()?;
        while self.eat(&Tok::Pipe) {
            let rhs = self.trace_and()?;
            lhs = TraceFormula::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn trace_and(&mut self) -> Result<TraceFormula, ParseError> {
        let mut lhs = self.trace_unary()?;
        while self.eat(&Tok::Amp) {
            let rhs = self.trace_unary()?;
            lhs = TraceFormula::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn trace_unary(&mut self) -> Result<TraceFormula, ParseError> {
        let at = self.here();
        match self.bump() {
            Some(Tok::Bang) => Ok(TraceFormula::Not(Box::new(self.trace_unary()?))),
            Some(Tok::LParen) => {
                let f = self.trace_formula()?;
                self.expect(Tok::RParen, "')'")?;
                Ok(f)
            }
            Some(Tok::Quoted(a)) => Ok(TraceFormula::Atom(a)),
            Some(Tok::Ident(id)) => match id.as_str() {
                "true" => Ok(TraceFormula::True),
                "X" => Ok(TraceFormula::Next(Box::new(self.trace_unary()?))),
                "F" => Ok(TraceFormula::Eventually(Box::new(self.trace_unary()?))),
                "G" => Ok(TraceFormula::Always(Box::new(self.trace_unary()?))),
                "action" => {
                    self.expect(Tok::Eq, "'=' after 'action'")?;
                    Ok(TraceFormula::ActionIs(self.integer()? as usize))
                }
                other => Err(ParseError::new(
                    at,
                    format!("unexpected identifier {other:?} in trace rule"),
                )),
            },
            Some(_) => Err(ParseError::new(at, "expected a trace rule")),
            None => Err(ParseError::new(at, "unexpected end of input")),
        }
    }
}

fn opt_of(ident: &str) -> Option<Opt> {
    if ident.ends_with("max") {
        Some(Opt::Max)
    } else if ident.ends_with("min") {
        Some(Opt::Min)
    } else {
        None
    }
}

fn lex(input: &str) -> Result<Vec<(Tok, usize)>, ParseError> {
    let bytes = input.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let start = i;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '[' => push(&mut toks, Tok::LBrack, start, &mut i),
            ']' => push(&mut toks, Tok::RBrack, start, &mut i),
            '(' => push(&mut toks, Tok::LParen, start, &mut i),
            ')' => push(&mut toks, Tok::RParen, start, &mut i),
            '{' => push(&mut toks, Tok::LBrace, start, &mut i),
            '}' => push(&mut toks, Tok::RBrace, start, &mut i),
            '!' => push(&mut toks, Tok::Bang, start, &mut i),
            '&' => push(&mut toks, Tok::Amp, start, &mut i),
            '|' => push(&mut toks, Tok::Pipe, start, &mut i),
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push((Tok::Le, start));
                    i += 2;
                } else {
                    toks.push((Tok::Lt, start));
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push((Tok::Ge, start));
                    i += 2;
                } else {
                    toks.push((Tok::Gt, start));
                    i += 1;
                }
            }
            '=' => {
                if bytes.get(i + 1) == Some(&b'?') {
                    toks.push((Tok::EqQuestion, start));
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    toks.push((Tok::Arrow, start));
                    i += 2;
                } else {
                    toks.push((Tok::Eq, start));
                    i += 1;
                }
            }
            '"' => {
                let mut j = i + 1;
                while j < bytes.len() && bytes[j] != b'"' {
                    j += 1;
                }
                if j == bytes.len() {
                    return Err(ParseError::new(start, "unterminated string literal"));
                }
                toks.push((Tok::Quoted(input[i + 1..j].to_owned()), start));
                i = j + 1;
            }
            c if c.is_ascii_digit() || c == '.' => {
                let mut j = i;
                while j < bytes.len()
                    && (bytes[j].is_ascii_digit()
                        || bytes[j] == b'.'
                        || bytes[j] == b'e'
                        || bytes[j] == b'E'
                        || ((bytes[j] == b'+' || bytes[j] == b'-')
                            && j > i
                            && (bytes[j - 1] == b'e' || bytes[j - 1] == b'E')))
                {
                    j += 1;
                }
                let text = &input[i..j];
                let n: f64 = text
                    .parse()
                    .map_err(|_| ParseError::new(start, format!("invalid number {text:?}")))?;
                toks.push((Tok::Number(n), start));
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut j = i;
                while j < bytes.len()
                    && ((bytes[j] as char).is_ascii_alphanumeric() || bytes[j] == b'_')
                {
                    j += 1;
                }
                toks.push((Tok::Ident(input[i..j].to_owned()), start));
                i = j;
            }
            other => {
                return Err(ParseError::new(start, format!("unexpected character {other:?}")));
            }
        }
    }
    Ok(toks)
}

fn push(toks: &mut Vec<(Tok, usize)>, tok: Tok, start: usize, i: &mut usize) {
    toks.push((tok, start));
    *i += 1;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_lane_change_property() {
        let f = parse_formula("P>0.99 [ F (\"changedLane\" | \"reducedSpeed\") ]").unwrap();
        match f {
            StateFormula::Prob {
                opt: None,
                op: CmpOp::Gt,
                bound,
                path: PathFormula::Eventually { sub, .. },
            } => {
                assert_eq!(bound, 0.99);
                assert!(matches!(*sub, StateFormula::Or(_, _)));
            }
            other => panic!("bad shape: {other:?}"),
        }
    }

    #[test]
    fn parses_wsn_reward_property() {
        let f = parse_formula("R{\"attempts\"}<=40 [ F \"delivered\" ]").unwrap();
        assert_eq!(f, StateFormula::reach_reward("attempts", CmpOp::Le, 40.0, "delivered"));
    }

    #[test]
    fn parses_bounded_until_and_next() {
        let f = parse_formula("P<0.1 [ \"a\" U<=5 \"b\" ]").unwrap();
        match f {
            StateFormula::Prob { path: PathFormula::Until { bound: Some(5), .. }, .. } => {}
            other => panic!("bad shape: {other:?}"),
        }
        let g = parse_formula("Pmin>=0.5 [ X \"a\" ]").unwrap();
        match g {
            StateFormula::Prob { opt: Some(Opt::Min), path: PathFormula::Next(_), .. } => {}
            other => panic!("bad shape: {other:?}"),
        }
    }

    #[test]
    fn parses_boolean_structure_with_precedence() {
        let f = parse_formula("\"a\" | \"b\" & \"c\" => \"d\"").unwrap();
        // & binds tighter than |, | tighter than =>
        match f {
            StateFormula::Implies(lhs, _) => match *lhs {
                StateFormula::Or(_, rhs) => assert!(matches!(*rhs, StateFormula::And(_, _))),
                other => panic!("bad lhs: {other:?}"),
            },
            other => panic!("bad shape: {other:?}"),
        }
    }

    #[test]
    fn parses_queries() {
        let q = parse_query("Pmax=? [ F \"goal\" ]").unwrap();
        assert!(matches!(q, Query::Prob { opt: Some(Opt::Max), .. }));
        let q2 = parse_query("R{\"attempts\"}max=? [ F \"delivered\" ]").unwrap();
        match q2 {
            Query::Reward {
                structure: Some(s),
                opt: Some(Opt::Max),
                kind: RewardKind::Reach(_),
            } => {
                assert_eq!(s, "attempts");
            }
            other => panic!("bad shape: {other:?}"),
        }
        let q3 = parse_query("R=? [ C<=10 ]").unwrap();
        assert!(matches!(q3, Query::Reward { kind: RewardKind::Cumulative(10), .. }));
    }

    #[test]
    fn parses_trace_rules() {
        let r = parse_trace_formula("G !(\"unsafe\")").unwrap();
        assert_eq!(r, TraceFormula::never("unsafe"));
        let r2 = parse_trace_formula("G (\"s1\" => action=1)").unwrap();
        assert_eq!(r2, TraceFormula::whenever_do("s1", 1));
        let r3 = parse_trace_formula("\"a\" U \"b\"").unwrap();
        assert!(matches!(r3, TraceFormula::Until(_, _)));
        let r4 = parse_trace_formula("X F \"goal\"").unwrap();
        assert!(matches!(r4, TraceFormula::Next(_)));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_formula("P>=1.5 [ F \"a\" ]").is_err()); // bound out of range
        assert!(parse_formula("P>= [ F \"a\" ]").is_err());
        assert!(parse_formula("P>=0.5 [ \"a\" ]").is_err()); // missing U
        assert!(parse_formula("bare_atom").is_err()); // atoms must be quoted
        assert!(parse_formula("P>=0.5 [ F \"a\" ] extra").is_err());
        assert!(parse_formula("\"unterminated").is_err());
        assert!(parse_formula("R<=-3 [ F \"a\" ]").is_err()); // negative bound: '-' is lexed as bad char
        assert!(parse_formula("P>=0.5 [ F \"a\"").is_err()); // missing ]
        assert!(parse_query("P>=0.5 [ F \"a\" ]").is_err()); // not a query
        assert!(parse_trace_formula("action=").is_err());
        assert!(parse_trace_formula("action=1.5").is_err());
    }

    #[test]
    fn error_positions_are_meaningful() {
        let err = parse_formula("P>=0.5 [ Q ]").unwrap_err();
        assert!(err.position >= 9, "position was {}", err.position);
    }

    #[test]
    fn display_roundtrip_examples() {
        for src in [
            "P>=0.99 [ F \"done\" ]",
            "Pmax<0.5 [ \"a\" U<=7 \"b\" ]",
            "R{\"attempts\"}<=19 [ F \"delivered\" ]",
            "Rmin>=1 [ C<=3 ]",
            "(\"a\" & !(\"b\"))",
            "P>0 [ G<=4 \"safe\" ]",
            "(true => (false | \"x\"))",
        ] {
            let f = parse_formula(src).unwrap();
            let round = parse_formula(&f.to_string()).unwrap();
            assert_eq!(f, round, "round-trip failed for {src}");
        }
    }

    #[test]
    fn query_display_roundtrip() {
        for src in
            ["P=? [ F \"g\" ]", "Pmin=? [ X \"g\" ]", "Rmax=? [ F \"g\" ]", "R{\"c\"}=? [ C<=5 ]"]
        {
            let q = parse_query(src).unwrap();
            assert_eq!(parse_query(&q.to_string()).unwrap(), q, "round-trip failed for {src}");
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_state_formula() -> impl Strategy<Value = StateFormula> {
        let leaf = prop_oneof![
            Just(StateFormula::True),
            Just(StateFormula::False),
            "[a-z][a-z0-9_]{0,6}".prop_map(StateFormula::Atom),
        ];
        leaf.prop_recursive(4, 24, 3, |inner| {
            prop_oneof![
                inner.clone().prop_map(|f| StateFormula::Not(Box::new(f))),
                (inner.clone(), inner.clone())
                    .prop_map(|(a, b)| StateFormula::And(Box::new(a), Box::new(b))),
                (inner.clone(), inner.clone())
                    .prop_map(|(a, b)| StateFormula::Or(Box::new(a), Box::new(b))),
                (inner.clone(), inner.clone())
                    .prop_map(|(a, b)| StateFormula::Implies(Box::new(a), Box::new(b))),
                (inner.clone(), 0.0_f64..=1.0, proptest::option::of(0u64..20)).prop_map(
                    |(f, b, k)| StateFormula::Prob {
                        opt: None,
                        op: CmpOp::Ge,
                        bound: (b * 100.0).round() / 100.0,
                        path: PathFormula::Eventually { sub: Box::new(f), bound: k },
                    }
                ),
                (inner, 0.0_f64..=100.0).prop_map(|(f, b)| StateFormula::Reward {
                    structure: None,
                    opt: Some(Opt::Max),
                    op: CmpOp::Le,
                    bound: b.round(),
                    kind: RewardKind::Reach(Box::new(f)),
                }),
            ]
        })
    }

    fn arb_trace_formula() -> impl Strategy<Value = TraceFormula> {
        let leaf = prop_oneof![
            Just(TraceFormula::True),
            "[a-z][a-z0-9_]{0,6}".prop_map(TraceFormula::Atom),
            (0usize..5).prop_map(TraceFormula::ActionIs),
        ];
        leaf.prop_recursive(4, 24, 2, |inner| {
            prop_oneof![
                inner.clone().prop_map(|f| TraceFormula::Not(Box::new(f))),
                (inner.clone(), inner.clone())
                    .prop_map(|(a, b)| TraceFormula::And(Box::new(a), Box::new(b))),
                (inner.clone(), inner.clone())
                    .prop_map(|(a, b)| TraceFormula::Or(Box::new(a), Box::new(b))),
                inner.clone().prop_map(|f| TraceFormula::Next(Box::new(f))),
                inner.clone().prop_map(|f| TraceFormula::Always(Box::new(f))),
                inner.clone().prop_map(|f| TraceFormula::Eventually(Box::new(f))),
                (inner.clone(), inner)
                    .prop_map(|(a, b)| TraceFormula::Until(Box::new(a), Box::new(b))),
            ]
        })
    }

    proptest! {
        /// Every formula round-trips through its display form.
        #[test]
        fn display_parse_roundtrip(f in arb_state_formula()) {
            let printed = f.to_string();
            let reparsed = parse_formula(&printed)
                .unwrap_or_else(|e| panic!("failed to reparse {printed:?}: {e}"));
            prop_assert_eq!(f, reparsed);
        }

        /// Trace rules round-trip through their display form too.
        #[test]
        fn trace_display_parse_roundtrip(f in arb_trace_formula()) {
            let printed = f.to_string();
            let reparsed = parse_trace_formula(&printed)
                .unwrap_or_else(|e| panic!("failed to reparse {printed:?}: {e}"));
            prop_assert_eq!(f, reparsed);
        }
    }
}
