//! Pretty-printers producing the concrete syntax accepted by the parser,
//! so every formula round-trips: `parse_formula(&phi.to_string()) == phi`.

use std::fmt;

use crate::ast::{CmpOp, Opt, PathFormula, Query, RewardKind, StateFormula};
use crate::trace::TraceFormula;

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

impl fmt::Display for Opt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Opt::Min => f.write_str("min"),
            Opt::Max => f.write_str("max"),
        }
    }
}

impl fmt::Display for StateFormula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StateFormula::True => f.write_str("true"),
            StateFormula::False => f.write_str("false"),
            StateFormula::Atom(a) => write!(f, "\"{a}\""),
            StateFormula::Not(s) => write!(f, "!({s})"),
            StateFormula::And(a, b) => write!(f, "({a} & {b})"),
            StateFormula::Or(a, b) => write!(f, "({a} | {b})"),
            StateFormula::Implies(a, b) => write!(f, "({a} => {b})"),
            StateFormula::Prob { opt, op, bound, path } => {
                write!(f, "P{}{op}{bound} [ {path} ]", opt_suffix(*opt))
            }
            StateFormula::Reward { structure, opt, op, bound, kind } => {
                write!(f, "R")?;
                if let Some(s) = structure {
                    write!(f, "{{\"{s}\"}}")?;
                }
                write!(f, "{}{op}{bound} [ {kind} ]", opt_suffix(*opt))
            }
        }
    }
}

fn opt_suffix(opt: Option<Opt>) -> &'static str {
    match opt {
        Some(Opt::Min) => "min",
        Some(Opt::Max) => "max",
        None => "",
    }
}

impl fmt::Display for PathFormula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathFormula::Next(s) => write!(f, "X {s}"),
            PathFormula::Until { lhs, rhs, bound } => {
                write!(f, "{lhs} U{} {rhs}", step(*bound))
            }
            PathFormula::Eventually { sub, bound } => write!(f, "F{} {sub}", step(*bound)),
            PathFormula::Globally { sub, bound } => write!(f, "G{} {sub}", step(*bound)),
        }
    }
}

fn step(bound: Option<u64>) -> String {
    bound.map(|k| format!("<={k}")).unwrap_or_default()
}

impl fmt::Display for RewardKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RewardKind::Reach(s) => write!(f, "F {s}"),
            RewardKind::Cumulative(k) => write!(f, "C<={k}"),
        }
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Query::Prob { opt, path } => write!(f, "P{}=? [ {path} ]", opt_suffix(*opt)),
            Query::Reward { structure, opt, kind } => {
                write!(f, "R")?;
                if let Some(s) = structure {
                    write!(f, "{{\"{s}\"}}")?;
                }
                write!(f, "{}=? [ {kind} ]", opt_suffix(*opt))
            }
        }
    }
}

impl fmt::Display for TraceFormula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceFormula::True => f.write_str("true"),
            TraceFormula::Atom(a) => write!(f, "\"{a}\""),
            TraceFormula::ActionIs(a) => write!(f, "action={a}"),
            TraceFormula::Not(s) => write!(f, "!({s})"),
            TraceFormula::And(a, b) => write!(f, "({a} & {b})"),
            TraceFormula::Or(a, b) => write!(f, "({a} | {b})"),
            TraceFormula::Next(s) => write!(f, "X ({s})"),
            TraceFormula::Always(s) => write!(f, "G ({s})"),
            TraceFormula::Eventually(s) => write!(f, "F ({s})"),
            TraceFormula::Until(a, b) => write!(f, "(({a}) U ({b}))"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_formula_rendering() {
        let f = StateFormula::And(
            Box::new(StateFormula::Atom("a".into())),
            Box::new(StateFormula::Not(Box::new(StateFormula::True))),
        );
        assert_eq!(f.to_string(), "(\"a\" & !(true))");
    }

    #[test]
    fn prob_and_reward_rendering() {
        let p = StateFormula::eventually(CmpOp::Ge, 0.99, "done");
        assert_eq!(p.to_string(), "P>=0.99 [ F \"done\" ]");
        let r = StateFormula::reach_reward("attempts", CmpOp::Le, 40.0, "delivered");
        assert_eq!(r.to_string(), "R{\"attempts\"}<=40 [ F \"delivered\" ]");
    }

    #[test]
    fn bounded_operators_rendering() {
        let f = StateFormula::Prob {
            opt: Some(Opt::Max),
            op: CmpOp::Lt,
            bound: 0.5,
            path: PathFormula::Until {
                lhs: Box::new(StateFormula::True),
                rhs: Box::new(StateFormula::Atom("x".into())),
                bound: Some(7),
            },
        };
        assert_eq!(f.to_string(), "Pmax<0.5 [ true U<=7 \"x\" ]");
    }

    #[test]
    fn query_rendering() {
        let q = Query::Reward {
            structure: None,
            opt: Some(Opt::Min),
            kind: RewardKind::Cumulative(10),
        };
        assert_eq!(q.to_string(), "Rmin=? [ C<=10 ]");
        let q2 = Query::Prob { opt: None, path: PathFormula::Next(Box::new(StateFormula::False)) };
        assert_eq!(q2.to_string(), "P=? [ X false ]");
    }
}
