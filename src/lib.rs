//! # trusted-ml
//!
//! Trusted Machine Learning for Markov Decision Processes: **model repair**,
//! **data repair** and **reward repair** under logical (PCTL / trajectory)
//! constraints — a from-scratch Rust reproduction of the DSN 2018 paper
//! *"Model, Data and Reward Repair: Trusted Machine Learning for Markov
//! Decision Processes"* (Ghosh, Jha, Tiwari, Lincoln, Zhu).
//!
//! This façade crate re-exports the workspace crates under stable module
//! names so downstream users can depend on a single crate:
//!
//! | module | contents |
//! |---|---|
//! | [`numerics`] | dense/sparse linear algebra, generic-field solvers |
//! | [`models`] | DTMCs, MDPs, policies, simulation, maximum-likelihood learning |
//! | [`logic`] | PCTL and finite-trace rule logics (syntax + parser) |
//! | [`checker`] | PCTL model checking for DTMCs and MDPs |
//! | [`parametric`] | rational functions + parametric model checking |
//! | [`optimizer`] | non-linear constrained optimization |
//! | [`irl`] | maximum-entropy inverse reinforcement learning |
//! | [`repair`] | the paper's contribution: Model / Data / Reward repair + TML pipeline |
//! | [`runtime`] | crash-consistent batch repair: isolation, retries, breakers, journaled resume (see DESIGN.md §11) |
//! | [`telemetry`] | structured tracing, metrics and profiling hooks (see DESIGN.md §9) |
//! | `conformance` | seeded simulation, model generators, differential oracle (feature `test-support`; see DESIGN.md §10) |
//! | [`wsn`] | wireless-sensor-network query-routing case study |
//! | [`car`] | autonomous-car obstacle-avoidance case study |
//!
//! # Quickstart
//!
//! Verify a PCTL property on a tiny Markov chain and repair it when it fails:
//!
//! ```
//! use trusted_ml::models::DtmcBuilder;
//! use trusted_ml::logic::parse_formula;
//! use trusted_ml::checker::Checker;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A two-state chain: from `try` we succeed with probability 0.8.
//! let mut b = DtmcBuilder::new(2);
//! b.transition(0, 0, 0.2)?;
//! b.transition(0, 1, 0.8)?;
//! b.transition(1, 1, 1.0)?;
//! b.label(1, "done")?;
//! let dtmc = b.build()?;
//!
//! let phi = parse_formula("P>=0.99 [ F \"done\" ]")?;
//! let result = Checker::new().check_dtmc(&dtmc, &phi)?;
//! assert!(result.holds_in(0)); // eventually done almost surely
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub use tml_car as car;
pub use tml_checker as checker;
#[cfg(feature = "test-support")]
pub use tml_conformance as conformance;
pub use tml_core as repair;
pub use tml_irl as irl;
pub use tml_logic as logic;
pub use tml_models as models;
pub use tml_numerics as numerics;
pub use tml_optimizer as optimizer;
pub use tml_parametric as parametric;
pub use tml_runtime as runtime;
pub use tml_telemetry as telemetry;
pub use tml_wsn as wsn;
