//! Stress tests for the penalty optimizer against problems with known
//! closed-form solutions — the soundness of every repair rests on it.

use proptest::prelude::*;
use trusted_ml::optimizer::{ConstraintSense, Nlp, PenaltyOptions, PenaltySolver};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// min ‖x − c‖² s.t. aᵀx ≥ b has the closed form
    /// x* = c + a·max(0, (b − aᵀc)/‖a‖²): the Euclidean projection of `c`
    /// onto the half-space. The solver must match it.
    #[test]
    fn halfspace_projection(
        c in proptest::collection::vec(-1.0_f64..1.0, 2),
        a in proptest::collection::vec(0.2_f64..1.0, 2),
        b in -0.5_f64..1.5,
    ) {
        let mut nlp = Nlp::new(2, vec![(-5.0, 5.0), (-5.0, 5.0)]).unwrap();
        let c2 = c.clone();
        nlp.objective(move |x| {
            x.iter().zip(&c2).map(|(xi, ci)| (xi - ci).powi(2)).sum()
        });
        let a2 = a.clone();
        nlp.constraint("plane", ConstraintSense::Ge, b, move |x| {
            x.iter().zip(&a2).map(|(xi, ai)| xi * ai).sum()
        });
        let sol = PenaltySolver::new().solve(&nlp).unwrap();
        prop_assert!(sol.feasible);

        let a_dot_c: f64 = a.iter().zip(&c).map(|(x, y)| x * y).sum();
        let a_norm2: f64 = a.iter().map(|x| x * x).sum();
        let lambda = ((b - a_dot_c) / a_norm2).max(0.0);
        let expected: Vec<f64> = c.iter().zip(&a).map(|(ci, ai)| ci + lambda * ai).collect();
        for (got, want) in sol.x.iter().zip(&expected) {
            prop_assert!((got - want).abs() < 5e-3, "{:?} vs {:?}", sol.x, expected);
        }
    }

    /// Box-only quadratic: the solution is the clamp of the unconstrained
    /// optimum into the box.
    #[test]
    fn box_clamping(c in proptest::collection::vec(-3.0_f64..3.0, 3)) {
        let mut nlp = Nlp::new(3, vec![(-1.0, 1.0); 3]).unwrap();
        let c2 = c.clone();
        nlp.objective(move |x| x.iter().zip(&c2).map(|(xi, ci)| (xi - ci).powi(2)).sum());
        let sol = PenaltySolver::new().solve(&nlp).unwrap();
        for (got, ci) in sol.x.iter().zip(&c) {
            let want = ci.clamp(-1.0, 1.0);
            prop_assert!((got - want).abs() < 1e-3, "{got} vs {want}");
        }
    }

    /// Infeasibility detection: two half-spaces separated by a gap can
    /// never both hold, regardless of the random geometry.
    #[test]
    fn separated_halfspaces_reported_infeasible(gap in 0.2_f64..2.0, a in 0.3_f64..1.0) {
        let mut nlp = Nlp::new(1, vec![(-3.0, 3.0)]).unwrap();
        nlp.minimize_norm2();
        nlp.constraint("lo", ConstraintSense::Le, -gap / 2.0, move |x| a * x[0]);
        nlp.constraint("hi", ConstraintSense::Ge, gap / 2.0, move |x| a * x[0]);
        let sol = PenaltySolver::new().solve(&nlp).unwrap();
        prop_assert!(!sol.feasible);
        prop_assert!(sol.max_violation > 0.0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Generator-driven repair stress: the full Model Repair NLP (symbolic
    /// constraint compilation + penalty solve) over seeded chains from the
    /// shared generator library. Soundness oracle: whenever the solver
    /// reports a repaired model, an independent checker run must confirm
    /// the property on it.
    #[test]
    fn model_repair_nlp_is_sound_on_generated_chains(seed in 0u64..256, n in 4usize..9) {
        use tml_conformance::test_support::random_dtmc;
        use trusted_ml::checker::Checker;
        use trusted_ml::logic::parse_formula;
        use trusted_ml::repair::{ModelRepair, PerturbationTemplate, RepairStatus};

        let d = random_dtmc(seed, n);
        let checker = Checker::new();
        let current = checker
            .query_dtmc(&d, &trusted_ml::logic::parse_query("P=? [ F \"goal\" ]").unwrap())
            .unwrap()[d.initial_state()];

        // Shift mass between state 0's two successors; both carry at least
        // 0.1 of mass, so a ±0.05 shift never leaves the support class.
        let succ: Vec<(usize, f64)> = d.successors(0).collect();
        prop_assert!(succ.len() == 2, "generator gives two successors, got {:?}", succ);
        let mut t = PerturbationTemplate::new();
        let v = t.parameter("v", -0.05, 0.05);
        t.nudge(0, succ[0].0, v, 1.0).unwrap();
        t.nudge(0, succ[1].0, v, -1.0).unwrap();

        // Ask for slightly more than the chain currently delivers, so the
        // NLP genuinely has to move (or prove it cannot).
        let bound = (current + 0.01).min(0.995);
        let phi = parse_formula(&format!("P>={bound} [ F \"goal\" ]")).unwrap();
        let out = ModelRepair::new().repair_dtmc(&d, &phi, &t).unwrap();
        match out.status {
            RepairStatus::Repaired => {
                let m = out.model.as_ref().expect("repaired model present");
                if out.verified {
                    let confirmed = checker.check_dtmc(m, &phi).unwrap();
                    prop_assert!(confirmed.holds(), "seed {} bound {}", seed, bound);
                }
            }
            RepairStatus::AlreadySatisfied
            | RepairStatus::Infeasible
            | RepairStatus::BudgetExhausted => {}
        }
    }
}

/// Failure injection: objectives and constraints that return NaN/∞ in part
/// of the box must not crash or trap the solver.
#[test]
fn survives_partial_nan_regions() {
    let mut nlp = Nlp::new(1, vec![(-2.0, 2.0)]).unwrap();
    nlp.objective(|x| if x[0] < -1.0 { f64::NAN } else { (x[0] - 0.5).powi(2) });
    nlp.constraint(
        "c",
        ConstraintSense::Ge,
        0.0,
        |x| {
            if x[0] > 1.5 {
                f64::INFINITY
            } else {
                x[0]
            }
        },
    );
    let sol = PenaltySolver::new().solve(&nlp).unwrap();
    assert!(sol.feasible, "violation {}", sol.max_violation);
    assert!((sol.x[0] - 0.5).abs() < 1e-3, "x = {:?}", sol.x);
}

/// Satellite (PR 9): the multi-start search must not silently narrow —
/// every start is accounted for either as run, pruned (budget spent before
/// it began) or exhausted (cut short mid-descent).
#[test]
fn restart_diagnostics_expose_silent_narrowing() {
    use trusted_ml::optimizer::Budget;
    let build = || {
        let mut nlp = Nlp::new(2, vec![(-2.0, 2.0); 2]).unwrap();
        nlp.objective(|x| (x[0] - 0.7).powi(2) + (x[1] - 0.7).powi(2));
        nlp.constraint("plane", ConstraintSense::Ge, 0.5, |x| x[0] + x[1]);
        nlp
    };
    // Unlimited budget: the full multi-start ran, nothing hidden.
    let full = PenaltySolver::new().solve(&build()).unwrap();
    assert_eq!(full.restarts_pruned, 0, "no start may be pruned without a budget");
    assert_eq!(full.restarts_exhausted, 0);
    // Tight budget, serial for determinism: the diagnostics must admit the
    // narrowing instead of silently reporting only the best survivor.
    let tight =
        PenaltySolver::with_options(PenaltyOptions { parallel: false, ..Default::default() })
            .with_budget(Budget::unlimited().with_max_evaluations(10))
            .solve(&build())
            .unwrap();
    assert!(tight.stopped.is_some());
    assert!(
        tight.restarts_pruned + tight.restarts_exhausted > 0,
        "a truncated solve must record which starts it lost"
    );
    // 1 center start + 8 default restarts, each pruned or exhausted.
    assert_eq!(tight.restarts_pruned + tight.restarts_exhausted, 9);
}

/// The evaluation budget scales with restarts, and zero restarts still
/// solve easy problems from the center start.
#[test]
fn restart_budget_control() {
    let build = || {
        let mut nlp = Nlp::new(2, vec![(-1.0, 1.0); 2]).unwrap();
        nlp.objective(|x| (x[0] - 0.3).powi(2) + (x[1] + 0.2).powi(2));
        nlp
    };
    let lean = PenaltySolver::with_options(PenaltyOptions { restarts: 0, ..Default::default() })
        .solve(&build())
        .unwrap();
    let rich = PenaltySolver::with_options(PenaltyOptions { restarts: 12, ..Default::default() })
        .solve(&build())
        .unwrap();
    assert!(lean.feasible && rich.feasible);
    assert!(lean.evaluations < rich.evaluations);
    assert!((lean.x[0] - 0.3).abs() < 1e-3);
}
