//! End-to-end reproduction of the car case study (paper §V-B) as
//! integration tests spanning models → IRL → repair.

use trusted_ml::car;
use trusted_ml::checker::Checker;
use trusted_ml::irl::{value_iteration, ViOptions};
use trusted_ml::logic::{parse_formula, TraceFormula};
use trusted_ml::models::DeterministicPolicy;
use trusted_ml::repair::{
    enumerate_trajectories, project_distribution, MdpTraceView, RepairStatus, RewardRepair,
    WeightedRule,
};

/// E5: IRL on the expert demonstration learns a reward whose optimal
/// policy takes action 0 (forward) in S1 — colliding with the van.
#[test]
fn e5_learned_policy_is_unsafe() {
    let mdp = car::build_mdp().unwrap();
    let irl = car::learn_reward(&mdp).unwrap();
    let pi = car::greedy_policy(&mdp, &irl.theta).unwrap();
    assert_eq!(mdp.choices(1)[pi[1]].action, car::FORWARD);
    let rollout = car::rollout(&mdp, &pi, 25);
    assert!(rollout.contains(&car::COLLISION), "rollout {rollout:?}");
}

/// E6: Q-constraint Reward Repair makes the optimal policy safe; the
/// repaired policy changes lane at S1 and returns to the right lane before
/// the road ends — exactly the paper's repaired policy shape.
#[test]
fn e6_reward_repair_restores_safety() {
    let mdp = car::build_mdp().unwrap();
    let features = car::features().unwrap();
    let irl = car::learn_reward(&mdp).unwrap();
    let out = RewardRepair::new()
        .q_constraint_repair(
            &mdp,
            &features,
            &irl.theta,
            &[car::q_repair_constraint()],
            car::GAMMA,
            3.0,
        )
        .unwrap();
    assert_eq!(out.status, RepairStatus::Repaired);
    assert!(out.verified);
    let pi = car::greedy_policy(&mdp, &out.theta).unwrap();
    assert_eq!(mdp.choices(1)[pi[1]].action, car::LEFT, "lane change at S1");
    let rollout = car::rollout(&mdp, &pi, 25);
    assert!(!rollout.contains(&car::COLLISION));
    assert!(!rollout.contains(&car::OFFROAD));
    assert!(rollout.contains(&car::GOAL));
    // The paper's repaired policy returns to the right lane via S9 or S8.
    assert!(rollout.contains(&9) || rollout.contains(&8), "rollout {rollout:?}");
}

/// E7: the posterior-regularization projection kills the probability mass
/// of unsafe trajectories monotonically in λ.
#[test]
fn e7_projection_mass_decreases_in_lambda() {
    let mdp = car::build_mdp().unwrap();
    let features = car::features().unwrap();
    let irl = car::learn_reward(&mdp).unwrap();
    let paths = enumerate_trajectories(&mdp, mdp.initial_state(), 6);
    let logw: Vec<f64> = paths
        .iter()
        .map(|u| trusted_ml::repair::trajectory_log_weight(&mdp, &features, &irl.theta, u))
        .collect();
    let z = trusted_ml::numerics::vector::log_sum_exp(&logw);
    let p: Vec<f64> = logw.iter().map(|lw| (lw - z).exp()).collect();

    let rule = TraceFormula::never("unsafe");
    let mass = |dist: &[f64]| -> f64 {
        paths
            .iter()
            .zip(dist)
            .filter(|(u, _)| !rule.eval(&MdpTraceView::new(&mdp, u), 0))
            .map(|(_, &pr)| pr)
            .sum()
    };
    let mut last = mass(&p);
    assert!(last > 0.0);
    for lambda in [0.5, 1.0, 2.0, 5.0, 20.0] {
        let q = project_distribution(&mdp, &paths, &p, &[WeightedRule::soft(rule.clone(), lambda)]);
        let m = mass(&q);
        assert!(m <= last + 1e-12, "λ={lambda}: {m} > {last}");
        last = m;
    }
    assert!(last < 1e-6, "λ=20 leaves mass {last}");
}

/// The projection-based repair (Prop. 4 + feature matching) also reduces
/// the unsafe trajectory mass of the *reward itself*.
#[test]
fn projection_based_repair_reduces_violation() {
    let mdp = car::build_mdp().unwrap();
    let features = car::features().unwrap();
    let irl = car::learn_reward(&mdp).unwrap();
    let out = RewardRepair::new()
        .project_and_fit(&mdp, &features, &irl.theta, &car::safety_rules(), 6)
        .unwrap();
    assert!(out.violation_mass_after < out.violation_mass_before);
    assert!(out.kl_divergence > 0.0);
}

/// The induced chain of the repaired policy satisfies the PCTL safety
/// property `P>=0.99 [ !unsafe U goal ]` — closing the loop through the
/// model checker.
#[test]
fn repaired_policy_chain_satisfies_pctl() {
    let mdp = car::build_mdp().unwrap();
    let features = car::features().unwrap();
    let irl = car::learn_reward(&mdp).unwrap();
    let out = RewardRepair::new()
        .q_constraint_repair(
            &mdp,
            &features,
            &irl.theta,
            &[car::q_repair_constraint()],
            car::GAMMA,
            3.0,
        )
        .unwrap();
    let pi = car::greedy_policy(&mdp, &out.theta).unwrap();
    let chain = DeterministicPolicy::new(pi).induce(&mdp).unwrap();
    let phi = parse_formula("P>=0.99 [ !\"unsafe\" U \"goal\" ]").unwrap();
    let res = Checker::new().check_dtmc(&chain, &phi).unwrap();
    assert!(res.holds(), "repaired controller violates the PCTL safety spec");

    // While the learned (unrepaired) policy violates it.
    let pi0 = car::greedy_policy(&mdp, &irl.theta).unwrap();
    let chain0 = DeterministicPolicy::new(pi0).induce(&mdp).unwrap();
    let res0 = Checker::new().check_dtmc(&chain0, &phi).unwrap();
    assert!(!res0.holds());
}

/// Simulation cross-check on the repaired controller: the induced chain is
/// deterministic, so collision probability is exactly zero and the Monte
/// Carlo verdicts are genuinely *corroborated* (the confidence interval
/// sits strictly on the safe side of both bounds), not merely consistent.
#[test]
fn repaired_policy_chain_passes_simulation_cross_check() {
    use tml_conformance::test_support::{SimCheck, SimOptions, Simulator, Verdict};
    let mdp = car::build_mdp().unwrap();
    let features = car::features().unwrap();
    let irl = car::learn_reward(&mdp).unwrap();
    let out = RewardRepair::new()
        .q_constraint_repair(
            &mdp,
            &features,
            &irl.theta,
            &[car::q_repair_constraint()],
            car::GAMMA,
            3.0,
        )
        .unwrap();
    assert_eq!(out.status, RepairStatus::Repaired);
    let pi = car::greedy_policy(&mdp, &out.theta).unwrap();
    let chain = DeterministicPolicy::new(pi).induce(&mdp).unwrap();

    // Sanity: the exact collision probability really is zero, so the
    // Corroborated assertions below are about the simulator, not luck.
    let exact = Checker::new()
        .query_dtmc(&chain, &trusted_ml::logic::parse_query("P=? [ F \"unsafe\" ]").unwrap())
        .unwrap()[chain.initial_state()];
    assert!(exact.abs() < 1e-12, "repaired chain reaches unsafe with P = {exact}");

    let sim = Simulator::new(SimOptions { trajectories: 20_000, seed: 3, ..SimOptions::default() });
    // 0 hits out of 20 000 puts the Wilson upper bound near 1.9e-3 at the
    // simulator's 1e-9 confidence, safely inside a 1e-2 safety budget.
    let safety = parse_formula("P<=0.01 [ F \"unsafe\" ]").unwrap();
    let check = sim.check_formula(&chain, &safety).unwrap();
    assert_eq!(check.verdict(), Verdict::Corroborated, "{check:?}");
    let SimCheck::Probability { estimate, .. } = &check else {
        panic!("probability check expected")
    };
    assert_eq!(estimate.hits, 0);
    assert!(estimate.interval.high < 0.01, "CI upper {}", estimate.interval.high);

    let reach = parse_formula("P>=0.99 [ !\"unsafe\" U \"goal\" ]").unwrap();
    let check = sim.check_formula(&chain, &reach).unwrap();
    assert_eq!(check.verdict(), Verdict::Corroborated, "{check:?}");
    assert!(check.interval().low > 0.99, "CI lower {}", check.interval().low);
}

/// Value iteration under the expert-matching reward reproduces the expert's
/// actions along the expert's own trajectory after repair.
#[test]
fn repaired_policy_matches_expert_on_demo_states() {
    let mdp = car::build_mdp().unwrap();
    let features = car::features().unwrap();
    let irl = car::learn_reward(&mdp).unwrap();
    let out = RewardRepair::new()
        .q_constraint_repair(
            &mdp,
            &features,
            &irl.theta,
            &[car::q_repair_constraint()],
            car::GAMMA,
            3.0,
        )
        .unwrap();
    let rewards = features.rewards(&out.theta);
    let vi = value_iteration(&mdp, &rewards, ViOptions { gamma: car::GAMMA, ..Default::default() })
        .unwrap();
    // At S1 the repaired policy agrees with the expert's lane change.
    assert_eq!(mdp.choices(1)[vi.policy[1]].action, car::LEFT);
}
