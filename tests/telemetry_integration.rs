//! End-to-end telemetry integration: a WSN model repair with the JSONL
//! sink installed must emit a `tml-trace/v1` stream whose spans balance,
//! whose phase durations sum to the parent repair span (within tolerance —
//! the phases cover everything but loop glue), and whose root span agrees
//! with externally measured wall time.

use std::collections::HashMap;
use std::io::Write;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use trusted_ml::repair::ModelRepair;
use trusted_ml::telemetry::json::{self, Value};
use trusted_ml::telemetry::sink::JsonlSink;
use trusted_ml::telemetry::Subscriber;
use trusted_ml::wsn::{attempts_property, build_dtmc, repair_template, WsnConfig};

/// A `Write` target the test can read back after the sink is done with it.
#[derive(Clone)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn wsn_repair_trace_phases_sum_to_the_parent_span() {
    let _lock = trusted_ml::telemetry::TEST_MUTEX.lock().unwrap_or_else(|e| e.into_inner());
    let buf = SharedBuf(Arc::new(Mutex::new(Vec::new())));
    let sink = JsonlSink::new(buf.clone(), "telemetry-integration-test").expect("meta line");
    let sub = Arc::new(Subscriber::builder().sink(Arc::new(sink)).build());
    assert!(trusted_ml::telemetry::install_global(sub.clone()), "telemetry slot free");

    let config = WsnConfig::default();
    let chain = build_dtmc(&config).expect("wsn chain");
    let template = repair_template(&config).expect("wsn template");
    let start = Instant::now();
    let outcome = ModelRepair::new()
        .repair_dtmc(&chain, &attempts_property(40.0), &template)
        .expect("repair run");
    let wall_ns = start.elapsed().as_nanos() as u64;
    trusted_ml::telemetry::uninstall_global();
    assert!(outcome.verified, "the x=40 WSN repair verifies");

    let bytes = buf.0.lock().unwrap().clone();
    let text = String::from_utf8(bytes).expect("utf-8 trace");
    let mut lines = text.lines();
    let meta = json::parse(lines.next().expect("meta line first")).expect("meta parses");
    assert_eq!(meta.get("schema").and_then(Value::as_str), Some("tml-trace/v1"));

    // Replay the event stream: every line valid JSON, every span balanced.
    let mut started: HashMap<u64, (String, Option<u64>)> = HashMap::new();
    let mut durations: HashMap<u64, u64> = HashMap::new();
    let mut counters = 0u64;
    for line in lines {
        let v = json::parse(line).expect("every trace line is valid JSON");
        match v.get("type").and_then(Value::as_str) {
            Some("span_start") => {
                let id = v.get("id").and_then(Value::as_u64).expect("span id");
                let name = v.get("name").and_then(Value::as_str).expect("span name").to_owned();
                let parent = v.get("parent").and_then(Value::as_u64);
                started.insert(id, (name, parent));
            }
            Some("span_end") => {
                let id = v.get("id").and_then(Value::as_u64).expect("span id");
                assert!(started.contains_key(&id), "span_end for unknown span {id}");
                durations.insert(id, v.get("dur_ns").and_then(Value::as_u64).expect("dur_ns"));
            }
            Some("counter") => counters += 1,
            other => panic!("unexpected event type {other:?}"),
        }
    }
    assert_eq!(started.len(), durations.len(), "every span start has a matching end");
    assert!(counters > 0, "counter events were recorded");

    // The root repair span and its phase children.
    let (&root_id, _) = started
        .iter()
        .find(|(_, (name, _))| name == "model_repair")
        .expect("root model_repair span");
    let root_dur = durations[&root_id];
    let phases: Vec<(&str, u64)> = started
        .iter()
        .filter(|(_, (_, parent))| *parent == Some(root_id))
        .map(|(id, (name, _))| (name.as_str(), durations[id]))
        .collect();
    for expected in ["model_repair.verify_initial", "model_repair.compile", "model_repair.solve"] {
        assert!(
            phases.iter().any(|(name, _)| *name == expected),
            "missing phase {expected}; saw {phases:?}"
        );
    }
    let phase_sum: u64 = phases.iter().map(|(_, d)| d).sum();
    assert!(
        phase_sum <= root_dur,
        "sequential phases cannot exceed their parent: {phase_sum} > {root_dur}"
    );
    assert!(
        phase_sum >= root_dur - root_dur / 5,
        "phases should cover >=80% of the repair span: {phase_sum} of {root_dur}"
    );
    assert!(root_dur <= wall_ns, "span duration exceeds measured wall time");
    assert!(
        root_dur >= wall_ns / 2,
        "root span misses most of the repair: {root_dur} of {wall_ns}"
    );

    // The metrics registry saw the same activity the trace did.
    let snapshot = sub.metrics_snapshot();
    assert!(snapshot.counter("solver.evaluations") > 0, "solver evaluations counted");
    assert!(
        snapshot.histogram("span.model_repair").is_some(),
        "root span recorded a duration histogram"
    );
}

#[test]
fn disabled_telemetry_changes_no_repair_outcome() {
    // No subscriber installed: the instrumented repair must behave exactly
    // as before telemetry existed.
    let config = WsnConfig::default();
    let chain = build_dtmc(&config).expect("wsn chain");
    let template = repair_template(&config).expect("wsn template");
    let outcome = ModelRepair::new()
        .repair_dtmc(&chain, &attempts_property(40.0), &template)
        .expect("repair run");
    assert!(outcome.verified);
    assert_eq!(outcome.parameters.len(), 2);
}
