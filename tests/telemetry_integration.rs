//! End-to-end telemetry integration: a WSN model repair with the JSONL
//! sink installed must emit a `tml-trace/v1` stream whose spans balance,
//! whose phase durations sum to the parent repair span (within tolerance —
//! the phases cover everything but loop glue), and whose root span agrees
//! with externally measured wall time.

use std::collections::HashMap;
use std::io::Write;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use trusted_ml::repair::ModelRepair;
use trusted_ml::telemetry::json::{self, Value};
use trusted_ml::telemetry::sink::JsonlSink;
use trusted_ml::telemetry::Subscriber;
use trusted_ml::wsn::{attempts_property, build_dtmc, repair_template, WsnConfig};

/// A `Write` target the test can read back after the sink is done with it.
#[derive(Clone)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn wsn_repair_trace_phases_sum_to_the_parent_span() {
    let _lock = trusted_ml::telemetry::TEST_MUTEX.lock().unwrap_or_else(|e| e.into_inner());
    let buf = SharedBuf(Arc::new(Mutex::new(Vec::new())));
    let sink = JsonlSink::new(buf.clone(), "telemetry-integration-test").expect("meta line");
    let sub = Arc::new(Subscriber::builder().sink(Arc::new(sink)).build());
    assert!(trusted_ml::telemetry::install_global(sub.clone()), "telemetry slot free");

    let config = WsnConfig::default();
    let chain = build_dtmc(&config).expect("wsn chain");
    let template = repair_template(&config).expect("wsn template");
    let start = Instant::now();
    let outcome = ModelRepair::new()
        .repair_dtmc(&chain, &attempts_property(40.0), &template)
        .expect("repair run");
    let wall_ns = start.elapsed().as_nanos() as u64;
    trusted_ml::telemetry::uninstall_global();
    assert!(outcome.verified, "the x=40 WSN repair verifies");

    let bytes = buf.0.lock().unwrap().clone();
    let text = String::from_utf8(bytes).expect("utf-8 trace");
    let mut lines = text.lines();
    let meta = json::parse(lines.next().expect("meta line first")).expect("meta parses");
    assert_eq!(meta.get("schema").and_then(Value::as_str), Some("tml-trace/v1"));

    // Replay the event stream: every line valid JSON, every span balanced.
    let mut started: HashMap<u64, (String, Option<u64>)> = HashMap::new();
    let mut durations: HashMap<u64, u64> = HashMap::new();
    let mut counters = 0u64;
    for line in lines {
        let v = json::parse(line).expect("every trace line is valid JSON");
        match v.get("type").and_then(Value::as_str) {
            Some("span_start") => {
                let id = v.get("id").and_then(Value::as_u64).expect("span id");
                let name = v.get("name").and_then(Value::as_str).expect("span name").to_owned();
                let parent = v.get("parent").and_then(Value::as_u64);
                started.insert(id, (name, parent));
            }
            Some("span_end") => {
                let id = v.get("id").and_then(Value::as_u64).expect("span id");
                assert!(started.contains_key(&id), "span_end for unknown span {id}");
                durations.insert(id, v.get("dur_ns").and_then(Value::as_u64).expect("dur_ns"));
            }
            Some("counter") => counters += 1,
            other => panic!("unexpected event type {other:?}"),
        }
    }
    assert_eq!(started.len(), durations.len(), "every span start has a matching end");
    assert!(counters > 0, "counter events were recorded");

    // The root repair span and its phase children.
    let (&root_id, _) = started
        .iter()
        .find(|(_, (name, _))| name == "model_repair")
        .expect("root model_repair span");
    let root_dur = durations[&root_id];
    let phases: Vec<(&str, u64)> = started
        .iter()
        .filter(|(_, (_, parent))| *parent == Some(root_id))
        .map(|(id, (name, _))| (name.as_str(), durations[id]))
        .collect();
    for expected in ["model_repair.verify_initial", "model_repair.compile", "model_repair.solve"] {
        assert!(
            phases.iter().any(|(name, _)| *name == expected),
            "missing phase {expected}; saw {phases:?}"
        );
    }
    let phase_sum: u64 = phases.iter().map(|(_, d)| d).sum();
    assert!(
        phase_sum <= root_dur,
        "sequential phases cannot exceed their parent: {phase_sum} > {root_dur}"
    );
    assert!(
        phase_sum >= root_dur - root_dur / 5,
        "phases should cover >=80% of the repair span: {phase_sum} of {root_dur}"
    );
    assert!(root_dur <= wall_ns, "span duration exceeds measured wall time");
    assert!(
        root_dur >= wall_ns / 2,
        "root span misses most of the repair: {root_dur} of {wall_ns}"
    );

    // The metrics registry saw the same activity the trace did.
    let snapshot = sub.metrics_snapshot();
    assert!(snapshot.counter("solver.penalty.evaluations") > 0, "solver evaluations counted");
    assert!(
        snapshot.histogram("span.model_repair").is_some(),
        "root span recorded a duration histogram"
    );

    // Every metric the full pipeline emitted conforms to the
    // subsystem.object.action convention (DESIGN.md §14): a nonconforming
    // name added anywhere in the workspace fails here.
    let violations = trusted_ml::telemetry::naming::check_snapshot_names(&snapshot);
    assert!(violations.is_empty(), "metric naming convention violated: {violations:#?}");
}

// ---------------------------------------------------------------------
// Span-tree reconstruction property test.
//
// Random balanced span forests across interleaved threads, serialized as
// a tml-trace/v1 stream with a torn partial line appended (the `kill -9`
// signature), must rebuild losslessly: every span recovered with its
// exact duration, self-time equal to duration minus child time, child
// durations never exceeding their parent, and one trace group per
// thread's trace id.

mod span_tree_reconstruction {
    use proptest::prelude::*;
    use trusted_ml::telemetry::analysis::parse_trace_bytes;

    #[derive(Debug, Clone)]
    struct SpanTree {
        /// Self time beyond what the children cover, ns.
        slack: u64,
        children: Vec<SpanTree>,
    }

    fn tree_strategy() -> impl Strategy<Value = SpanTree> {
        let leaf = (1u64..1_000).prop_map(|slack| SpanTree { slack, children: vec![] });
        leaf.prop_recursive(3, 16, 3, |inner| {
            ((1u64..1_000), proptest::collection::vec(inner, 0..3))
                .prop_map(|(slack, children)| SpanTree { slack, children })
        })
    }

    /// Serializes one tree depth-first; returns the span's duration.
    /// Events are pushed as `(at_ns, line)` so threads can be merged by
    /// time afterwards.
    #[allow(clippy::too_many_arguments)]
    fn emit(
        tree: &SpanTree,
        depth: usize,
        thread: u64,
        trace: u64,
        parent: Option<u64>,
        next_id: &mut u64,
        cursor: &mut u64,
        out: &mut Vec<(u64, String)>,
        emitted: &mut Vec<(u64, u64, u64)>, // (id, dur, children_dur)
    ) -> u64 {
        let id = *next_id;
        *next_id += 1;
        let start = *cursor;
        let name = format!("job.level{depth}");
        let parent_json = parent.map_or("null".to_string(), |p| p.to_string());
        out.push((
            start,
            format!(
                "{{\"type\":\"span_start\",\"id\":{id},\"parent\":{parent_json},\
                 \"name\":\"{name}\",\"thread\":{thread},\"at_ns\":{start},\
                 \"trace\":\"{trace:016x}\",\"fields\":{{}}}}"
            ),
        ));
        let mut children_dur = 0u64;
        for child in &tree.children {
            children_dur +=
                emit(child, depth + 1, thread, trace, Some(id), next_id, cursor, out, emitted);
        }
        let dur = children_dur + tree.slack;
        let end = start + dur;
        *cursor = end;
        out.push((
            end,
            format!(
                "{{\"type\":\"span_end\",\"id\":{id},\"name\":\"{name}\",\
                 \"thread\":{thread},\"at_ns\":{end},\"dur_ns\":{dur}}}"
            ),
        ));
        emitted.push((id, dur, children_dur));
        dur
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn interleaved_torn_traces_rebuild_losslessly(
            forests in proptest::collection::vec(tree_strategy(), 1..4),
            torn in (0u64..2).prop_map(|b| b == 1),
        ) {
            // One root tree per thread, each thread under its own trace id.
            let mut next_id = 1u64;
            let mut events: Vec<(u64, String)> = Vec::new();
            let mut emitted: Vec<(u64, u64, u64)> = Vec::new();
            for (t, tree) in forests.iter().enumerate() {
                let thread = t as u64 + 1;
                let trace = 0x1000 + thread;
                let mut cursor = 0u64;
                emit(tree, 0, thread, trace, None, &mut next_id, &mut cursor,
                     &mut events, &mut emitted);
            }
            // Merge threads by time; the stable sort interleaves threads
            // while preserving each thread's own event order.
            events.sort_by_key(|(at, _)| *at);

            let mut text = String::from(
                "{\"type\":\"meta\",\"schema\":\"tml-trace/v1\",\"tool\":\"proptest\"}\n",
            );
            for (_, line) in &events {
                text.push_str(line);
                text.push('\n');
            }
            if torn {
                // A partial final line with no newline: exactly what a
                // kill -9 mid-write leaves behind.
                text.push_str("{\"type\":\"span_star");
            }

            let analysis = parse_trace_bytes(&[("t.jsonl", text.as_bytes())])
                .expect("torn tail is tolerated, everything else parses");
            prop_assert_eq!(analysis.torn_tails, usize::from(torn));
            prop_assert_eq!(analysis.spans.len(), emitted.len(), "lossless rebuild");

            for (id, dur, children_dur) in &emitted {
                let span = analysis.spans.iter().find(|s| s.id == *id)
                    .expect("every emitted span is recovered");
                prop_assert!(!span.open, "balanced spans close");
                prop_assert_eq!(span.dur_ns, *dur, "exact duration");
                prop_assert!(*children_dur <= *dur, "children fit in the parent");
                prop_assert_eq!(span.self_ns, dur - children_dur,
                    "self time is duration minus child time");
                let recovered_children: u64 = span.children.iter()
                    .map(|&c| analysis.spans[c].dur_ns).sum();
                prop_assert_eq!(recovered_children, *children_dur,
                    "recovered child durations sum to what was emitted");
            }

            // One group per thread trace, holding that thread's spans.
            prop_assert_eq!(analysis.groups.len(), forests.len());
            for (t, _) in forests.iter().enumerate() {
                let trace = 0x1000 + t as u64 + 1;
                let group = analysis.group(trace).expect("group per trace id");
                let expected = analysis.spans.iter()
                    .filter(|s| s.trace == Some(trace)).count();
                prop_assert_eq!(group.spans, expected);
                prop_assert_eq!(group.roots.len(), 1, "one root per thread");
            }
        }
    }
}

#[test]
fn disabled_telemetry_changes_no_repair_outcome() {
    // No subscriber installed: the instrumented repair must behave exactly
    // as before telemetry existed.
    let config = WsnConfig::default();
    let chain = build_dtmc(&config).expect("wsn chain");
    let template = repair_template(&config).expect("wsn template");
    let outcome = ModelRepair::new()
        .repair_dtmc(&chain, &attempts_property(40.0), &template)
        .expect("repair run");
    assert!(outcome.verified);
    assert_eq!(outcome.parameters.len(), 2);
}
