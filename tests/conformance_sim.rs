//! Statistical conformance of the Monte Carlo simulator against closed
//! forms: on a two-state chain the empirical bounded-reachability estimate
//! must land within the Hoeffding half-width of `1 − (1−p)^k`, at the
//! simulator's stated confidence — and be bit-identical across runs.

use proptest::prelude::*;
use tml_conformance::test_support::{hoeffding_half_width, SimCheck, SimOptions, Simulator};
use trusted_ml::logic::parse_formula;
use trusted_ml::models::{Dtmc, DtmcBuilder};

/// `0 → 1` with probability `p` per step, state 1 absorbing and labeled.
fn two_state_chain(p: f64) -> Dtmc {
    let mut b = DtmcBuilder::new(2);
    b.transition(0, 1, p).unwrap();
    b.transition(0, 0, 1.0 - p).unwrap();
    b.transition(1, 1, 1.0).unwrap();
    b.label(1, "goal").unwrap();
    b.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Empirical P(F<=k goal) converges to the geometric closed form
    /// within the Hoeffding bound at the simulator's confidence level.
    #[test]
    fn bounded_reachability_matches_closed_form(
        p in 0.05f64..0.95, k in 1u64..12, seed in 0u64..1_000_000,
    ) {
        let chain = two_state_chain(p);
        let opts = SimOptions { trajectories: 4_000, seed, ..SimOptions::default() };
        let sim = Simulator::new(opts);
        let phi = parse_formula(&format!("P>=0.0 [ F<={k} \"goal\" ]")).unwrap();
        let check = sim.check_formula(&chain, &phi).unwrap();
        let SimCheck::Probability { estimate, .. } = &check else {
            return Err(TestCaseError::fail("probability check expected"));
        };
        // Bounded queries always decide within the horizon: no trajectory
        // is inconclusive, so the estimate is a plain Bernoulli mean.
        prop_assert_eq!(estimate.inconclusive, 0);
        let truth = 1.0 - (1.0 - p).powi(k as i32);
        let slack = hoeffding_half_width(opts.trajectories, opts.alpha);
        prop_assert!(
            (estimate.interval.estimate - truth).abs() <= slack,
            "p={} k={} seed={}: estimate {} vs closed form {} (slack {})",
            p, k, seed, estimate.interval.estimate, truth, slack
        );
        // And the statistical interval brackets the truth at this
        // confidence (the proptest sweep would expose systematic bias).
        prop_assert!(estimate.interval.low <= truth + 1e-12);
        prop_assert!(estimate.interval.high >= truth - 1e-12);
    }

    /// The simulator is a pure function of its seed: re-running the same
    /// query yields the identical estimate, bit for bit.
    #[test]
    fn estimates_are_seed_deterministic(p in 0.1f64..0.9, seed in 0u64..1_000_000) {
        let chain = two_state_chain(p);
        let opts = SimOptions { trajectories: 1_000, seed, ..SimOptions::default() };
        let phi = parse_formula("P>=0.5 [ F<=8 \"goal\" ]").unwrap();
        let a = Simulator::new(opts).check_formula(&chain, &phi).unwrap();
        let b = Simulator::new(opts).check_formula(&chain, &phi).unwrap();
        prop_assert_eq!(a.interval().estimate.to_bits(), b.interval().estimate.to_bits());
        prop_assert_eq!(a.interval().low.to_bits(), b.interval().low.to_bits());
        prop_assert_eq!(a.interval().high.to_bits(), b.interval().high.to_bits());
    }
}
