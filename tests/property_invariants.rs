//! Property-based invariants across crates: logical dualities of the
//! finite-trace rule language, DSL round-trips on random models, and
//! checker invariants on random MDPs.

use proptest::prelude::*;
use trusted_ml::logic::{SliceTrace, TraceFormula};
use trusted_ml::models::dsl::{dtmc_to_dsl, parse_model, ModelFile};
use trusted_ml::models::DtmcBuilder;

fn arb_trace_formula() -> impl Strategy<Value = TraceFormula> {
    let leaf = prop_oneof![
        Just(TraceFormula::True),
        (0usize..3).prop_map(|i| TraceFormula::Atom(format!("a{i}"))),
        (0usize..3).prop_map(TraceFormula::ActionIs),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|f| TraceFormula::Not(Box::new(f))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| TraceFormula::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| TraceFormula::Or(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|f| TraceFormula::Next(Box::new(f))),
            inner.clone().prop_map(|f| TraceFormula::Always(Box::new(f))),
            inner.clone().prop_map(|f| TraceFormula::Eventually(Box::new(f))),
            (inner.clone(), inner).prop_map(|(a, b)| TraceFormula::Until(Box::new(a), Box::new(b))),
        ]
    })
}

fn arb_trace() -> impl Strategy<Value = SliceTrace> {
    proptest::collection::vec((proptest::collection::vec(0usize..3, 0..3), 0usize..3), 1..7)
        .prop_map(|positions| {
            let labels: Vec<Vec<String>> = positions
                .iter()
                .map(|(ls, _)| ls.iter().map(|i| format!("a{i}")).collect())
                .collect();
            let actions: Vec<usize> = positions.iter().map(|(_, a)| *a).collect();
            // Final position gets no action: drop the last.
            let actions = actions[..actions.len() - 1].to_vec();
            SliceTrace::new(labels, actions)
        })
}

proptest! {
    /// De Morgan-style temporal dualities hold at every position of every
    /// trace: ¬F¬φ ≡ Gφ and ¬(true U ¬φ) ≡ Gφ.
    #[test]
    fn temporal_dualities(f in arb_trace_formula(), t in arb_trace(), pos in 0usize..8) {
        let g = TraceFormula::Always(Box::new(f.clone()));
        let not_f_not = TraceFormula::Not(Box::new(TraceFormula::Eventually(Box::new(
            TraceFormula::Not(Box::new(f.clone())),
        ))));
        prop_assert_eq!(g.eval(&t, pos), not_f_not.eval(&t, pos));

        let until_form = TraceFormula::Not(Box::new(TraceFormula::Until(
            Box::new(TraceFormula::True),
            Box::new(TraceFormula::Not(Box::new(f.clone()))),
        )));
        prop_assert_eq!(g.eval(&t, pos), until_form.eval(&t, pos));
    }

    /// F distributes over ∨ and G over ∧.
    #[test]
    fn distribution_laws(a in arb_trace_formula(), b in arb_trace_formula(), t in arb_trace()) {
        let f_or = TraceFormula::Eventually(Box::new(TraceFormula::Or(
            Box::new(a.clone()), Box::new(b.clone()))));
        let or_f = TraceFormula::Or(
            Box::new(TraceFormula::Eventually(Box::new(a.clone()))),
            Box::new(TraceFormula::Eventually(Box::new(b.clone()))),
        );
        prop_assert_eq!(f_or.eval(&t, 0), or_f.eval(&t, 0));

        let g_and = TraceFormula::Always(Box::new(TraceFormula::And(
            Box::new(a.clone()), Box::new(b.clone()))));
        let and_g = TraceFormula::And(
            Box::new(TraceFormula::Always(Box::new(a.clone()))),
            Box::new(TraceFormula::Always(Box::new(b.clone()))),
        );
        prop_assert_eq!(g_and.eval(&t, 0), and_g.eval(&t, 0));
    }

    /// Random DTMCs round-trip through the textual model format.
    #[test]
    fn dsl_roundtrip_random_chains(
        seed in proptest::collection::vec((0usize..5, 0usize..5, 0.05f64..0.95), 5),
        labels in proptest::collection::vec(0usize..5, 0..3),
    ) {
        let n = 5;
        let mut b = DtmcBuilder::new(n);
        for (s, &(t1, t2, p)) in seed.iter().enumerate() {
            if t1 == t2 {
                b.transition(s, t1, 1.0).unwrap();
            } else {
                // Round to keep the text form lossless in f64.
                let p = (p * 1024.0).round() / 1024.0;
                b.transition(s, t1, p).unwrap();
                b.transition(s, t2, 1.0 - p).unwrap();
            }
        }
        for (i, &s) in labels.iter().enumerate() {
            b.label(s, &format!("l{i}")).unwrap();
        }
        let d = b.build().unwrap();
        let text = dtmc_to_dsl(&d);
        let ModelFile::Dtmc(back) = parse_model(&text).unwrap() else {
            return Err(TestCaseError::fail("kind flip"));
        };
        prop_assert_eq!(d, back);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The same bracketing invariant on the shared seeded generator
    /// (`tml_conformance::gen::random_mdp`), which reaches larger models
    /// and denser branching than the inline strategy above.
    #[test]
    fn generated_mdp_optima_bracket_uniform_policy(
        seed in 0u64..1024, n in 3usize..9, max_choices in 1usize..4,
    ) {
        use tml_conformance::test_support::random_mdp;
        use trusted_ml::checker::{dtmc as cdtmc, mdp as cmdp, CheckOptions};
        use trusted_ml::logic::Opt;
        use trusted_ml::models::StochasticPolicy;
        let m = random_mdp(seed, n, max_choices);
        let opts = CheckOptions::default();
        let phi = vec![true; n];
        let target = m.labeling().mask("goal");
        let pmax = cmdp::until_probabilities(&m, &phi, &target, Opt::Max, &opts).unwrap();
        let pmin = cmdp::until_probabilities(&m, &phi, &target, Opt::Min, &opts).unwrap();
        let uniform = StochasticPolicy::uniform(&m).induce(&m).unwrap();
        let pu = cdtmc::until_probabilities(&uniform, &phi, &target, &opts).unwrap();
        for s in 0..n {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&pmax[s]));
            prop_assert!(pmin[s] <= pmax[s] + 1e-9, "state {}", s);
            prop_assert!(pmin[s] - 1e-7 <= pu[s] && pu[s] <= pmax[s] + 1e-7,
                "state {}: {} not in [{}, {}]", s, pu[s], pmin[s], pmax[s]);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// On random MDPs: Pmin ≤ Pmax everywhere, both in [0,1], and the
    /// uniform-policy DTMC sits between them.
    #[test]
    fn random_mdp_optima_bracket_uniform_policy(
        seed in proptest::collection::vec((0usize..4, 0usize..4, 0.1f64..0.9), 8),
    ) {
        use trusted_ml::checker::{dtmc as cdtmc, mdp as cmdp, CheckOptions};
        use trusted_ml::logic::Opt;
        use trusted_ml::models::{MdpBuilder, StochasticPolicy};
        let n = 4;
        let mut b = MdpBuilder::new(n);
        for (i, &(t1, t2, p)) in seed.iter().enumerate() {
            let s = i % n;
            let name = format!("a{}", i / n);
            if t1 == t2 {
                b.choice(s, &name, &[(t1, 1.0)]).unwrap();
            } else {
                b.choice(s, &name, &[(t1, p), (t2, 1.0 - p)]).unwrap();
            }
        }
        b.label(n - 1, "goal").unwrap();
        let m = b.build().unwrap();
        let opts = CheckOptions::default();
        let phi = vec![true; n];
        let target = m.labeling().mask("goal");
        let pmax = cmdp::until_probabilities(&m, &phi, &target, Opt::Max, &opts).unwrap();
        let pmin = cmdp::until_probabilities(&m, &phi, &target, Opt::Min, &opts).unwrap();
        let uniform = StochasticPolicy::uniform(&m).induce(&m).unwrap();
        let pu = cdtmc::until_probabilities(&uniform, &phi, &target, &opts).unwrap();
        for s in 0..n {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&pmax[s]));
            prop_assert!(pmin[s] <= pmax[s] + 1e-9, "state {}", s);
            prop_assert!(pmin[s] - 1e-7 <= pu[s] && pu[s] <= pmax[s] + 1e-7,
                "state {}: {} not in [{}, {}]", s, pu[s], pmin[s], pmax[s]);
        }
    }
}
