//! The checker's solver degradation chain, driven end to end on a
//! near-singular chain from the shared generator library: Gauss–Seidel is
//! starved of iterations so it stalls, the relaxed Jacobi retry stalls
//! too, and the dense direct solve concludes — with every step recorded in
//! the diagnostics and the final values matching an unconstrained direct
//! solve.

use tml_conformance::test_support::near_singular_dtmc;
use trusted_ml::checker::{CheckOptions, Checker, LinearSolver};
use trusted_ml::logic::parse_query;

/// Options that force the full chain: Auto solver, a zero direct-solver
/// limit (so the first attempt is iterative), an iteration budget far too
/// small for a near-singular system, and a tolerance it cannot reach. The
/// SCC stage is disabled because it would short-circuit the experiment:
/// every state of the near-singular chain is a trivial component, so the
/// decomposition solves it in closed form without ever iterating (see
/// `scc_stage_solves_the_near_singular_chain_without_degrading`).
fn starved() -> CheckOptions {
    CheckOptions {
        solver: LinearSolver::Auto,
        direct_solver_limit: 0,
        max_iterations: 10,
        tolerance: 1e-14,
        scc_enabled: false,
        ..CheckOptions::default()
    }
}

#[test]
fn degradation_chain_falls_back_to_direct_and_matches_it() {
    // Self-loop probabilities of 1 − δ with δ ~ 1e-4 make I − P nearly
    // singular: ten sweeps cannot move the iterate anywhere near 1e-14.
    // (Reachability itself is qualitative on this family — the goal is hit
    // almost surely — so the expected-cost query is what actually solves
    // the near-singular linear system.)
    let d = near_singular_dtmc(17, 24);
    let q = parse_query("R{\"cost\"}=? [ F \"goal\" ]").unwrap();

    let (degraded, diag) =
        Checker::with_options(starved()).query_dtmc_diag(&d, &q).expect("degraded solve succeeds");
    let exact = Checker::with_options(CheckOptions {
        solver: LinearSolver::Direct,
        ..CheckOptions::default()
    })
    .query_dtmc(&d, &q)
    .expect("direct solve succeeds");

    // Both stalls are on record, in order.
    assert_eq!(
        diag.fallbacks.len(),
        2,
        "expected gs→jacobi and jacobi→direct fallbacks, got {:?}",
        diag.fallbacks
    );
    assert!(
        diag.fallbacks[0].contains("jacobi"),
        "first fallback retries with jacobi: {:?}",
        diag.fallbacks[0]
    );
    assert!(
        diag.fallbacks[1].contains("directly"),
        "second fallback is the dense direct solve: {:?}",
        diag.fallbacks[1]
    );
    assert!(diag.degraded(), "a fallback chain marks the run degraded");

    // The last-resort direct solve is exact, so the degraded run agrees
    // with the explicitly-direct one to rounding (relative: the expected
    // costs are of order 1/δ ≈ 1e4).
    for s in 0..d.num_states() {
        assert!(
            (degraded[s] - exact[s]).abs() < 1e-9 * (1.0 + exact[s].abs()),
            "state {s}: degraded {} vs direct {}",
            degraded[s],
            exact[s]
        );
    }
}

/// With the SCC stage left on (the default), the same starved options
/// conclude without any fallback: the chain's states are all trivial
/// components, so the decomposition back-substitutes exact values and the
/// iteration budget is never touched.
#[test]
fn scc_stage_solves_the_near_singular_chain_without_degrading() {
    let d = near_singular_dtmc(17, 24);
    let q = parse_query("R{\"cost\"}=? [ F \"goal\" ]").unwrap();
    let opts = CheckOptions { scc_enabled: true, ..starved() };

    let (values, diag) =
        Checker::with_options(opts).query_dtmc_diag(&d, &q).expect("scc stage solves exactly");
    assert!(diag.fallbacks.is_empty(), "no degradation expected: {:?}", diag.fallbacks);
    assert!(!diag.degraded());

    let exact = Checker::with_options(CheckOptions {
        solver: LinearSolver::Direct,
        ..CheckOptions::default()
    })
    .query_dtmc(&d, &q)
    .expect("direct solve succeeds");
    for s in 0..d.num_states() {
        assert!(
            (values[s] - exact[s]).abs() < 1e-9 * (1.0 + exact[s].abs()),
            "state {s}: scc {} vs direct {}",
            values[s],
            exact[s]
        );
    }
}

#[test]
fn explicit_gauss_seidel_keeps_the_strict_error_contract() {
    let d = near_singular_dtmc(17, 24);
    let q = parse_query("R{\"cost\"}=? [ F \"goal\" ]").unwrap();
    let opts = CheckOptions { solver: LinearSolver::GaussSeidel, ..starved() };
    let err = Checker::with_options(opts).query_dtmc(&d, &q);
    assert!(err.is_err(), "explicitly requested GS must error instead of degrading");
}
