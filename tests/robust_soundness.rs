//! Soundness harness for robust value iteration (interval models):
//! widening an uncertainty set must never *improve* the pessimistic value,
//! degenerate (`lo == hi`) sets must reproduce the scalar checker, and the
//! robust solve must be bitwise-deterministic — across repeated runs,
//! across transition insertion order, and across thread counts.

use proptest::prelude::*;
use trusted_ml::checker::{CheckOptions, Checker};
use trusted_ml::logic::{parse_query, Query};
use trusted_ml::models::{Dtmc, DtmcBuilder, IntervalDtmc, IntervalDtmcBuilder};

/// A random 2-successor chain with an absorbing "goal" at the last state
/// (same generator shape as the fault-injection property tests). Edge
/// probabilities stay in `[0.05, 0.95]`, so the chain mixes fast enough
/// for tight value-iteration tolerances.
fn random_chain(seed: &[f64], n: usize) -> Dtmc {
    let mut b = DtmcBuilder::new(n);
    let mut k = 0;
    for s in 0..n {
        let t1 = ((seed[k] * n as f64) as usize).min(n - 1);
        let t2 = ((seed[k + 1] * n as f64) as usize).min(n - 1);
        let p = 0.05 + 0.9 * seed[k + 2];
        k += 3;
        if t1 == t2 {
            b.transition(s, t1, 1.0).unwrap();
        } else {
            b.transition(s, t1, p).unwrap();
            b.transition(s, t2, 1.0 - p).unwrap();
        }
    }
    b.label(n - 1, "goal").unwrap();
    b.build().unwrap()
}

fn reach_query() -> Query {
    parse_query("P=? [ F \"goal\" ]").unwrap()
}

/// A checker iterating far past the comparison tolerance, so value error
/// (≈ residual / spectral gap) stays below the asserted bounds.
fn tight_checker() -> Checker {
    Checker::with_options(CheckOptions { tolerance: 1e-14, ..CheckOptions::default() })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Enlarging the uncertainty set can only give the adversary more
    /// freedom: the pessimistic value is monotonically non-increasing and
    /// the optimistic value non-decreasing in the interval half-width, at
    /// every state.
    #[test]
    fn widening_never_improves_the_pessimistic_value(
        seed in proptest::collection::vec(0.0_f64..1.0, 30),
        narrow_w in 0.0_f64..0.15,
        extra_w in 0.001_f64..0.15,
    ) {
        let n = 10;
        let d = random_chain(&seed, n);
        let q = reach_query();
        let narrow = IntervalDtmc::from_dtmc(&d, narrow_w);
        let wide = IntervalDtmc::from_dtmc(&d, narrow_w + extra_w);
        let bn = tight_checker().query_interval_dtmc(&narrow, &q).unwrap();
        let bw = tight_checker().query_interval_dtmc(&wide, &q).unwrap();
        for s in 0..n {
            let (lo_n, hi_n) = bn.at(s);
            let (lo_w, hi_w) = bw.at(s);
            prop_assert!(lo_w <= lo_n + 1e-9,
                "state {}: widening raised the pessimistic value {} -> {}", s, lo_n, lo_w);
            prop_assert!(hi_w >= hi_n - 1e-9,
                "state {}: widening lowered the optimistic value {} -> {}", s, hi_n, hi_w);
            prop_assert!(lo_n <= hi_n + 1e-9, "state {}: inverted bracket", s);
        }
    }

    /// With every interval collapsed to its point (`lo == hi`) the robust
    /// adversary has a single member to pick: both bracket ends must
    /// reproduce the scalar checker to 1e-10.
    #[test]
    fn degenerate_intervals_reproduce_the_scalar_checker(
        seed in proptest::collection::vec(0.0_f64..1.0, 30),
    ) {
        let n = 10;
        let d = random_chain(&seed, n);
        let q = reach_query();
        let exact = tight_checker().query_dtmc(&d, &q).unwrap();
        let bracket =
            tight_checker().query_interval_dtmc(&IntervalDtmc::degenerate(&d), &q).unwrap();
        for (s, &point) in exact.iter().enumerate() {
            let (lo, hi) = bracket.at(s);
            prop_assert!((hi - lo).abs() <= 1e-10,
                "state {}: degenerate bracket has width {}", s, hi - lo);
            prop_assert!((lo - point).abs() <= 1e-10,
                "state {}: robust {} vs scalar {}", s, lo, point);
        }
    }

    /// The robust solve is bitwise-deterministic: identical across repeated
    /// runs, across the serial and parallel numerics configurations, and
    /// across the order transitions were inserted in (the inner adversary
    /// accumulates in a canonical target order).
    #[test]
    fn robust_solve_is_bitwise_deterministic(
        seed in proptest::collection::vec(0.0_f64..1.0, 30),
        width in 0.01_f64..0.2,
    ) {
        let n = 10;
        let d = random_chain(&seed, n);
        let q = reach_query();
        let ball = IntervalDtmc::from_dtmc(&d, width);

        // The same set rebuilt with every row's transitions reversed.
        let mut b = IntervalDtmcBuilder::new(n);
        b.initial_state(ball.initial_state()).unwrap();
        for s in 0..n {
            for &(t, lo, hi) in ball.row(s).iter().rev() {
                b.transition(s, t, lo, hi).unwrap();
            }
            for label in ball.labeling().labels_of(s) {
                b.label(s, label).unwrap();
            }
        }
        let reversed = b.build().unwrap();

        // The vendored rayon stand-in reads RAYON_NUM_THREADS per call, so
        // this exercises the serial and the parallel configuration of the
        // numerics layer under the same query.
        std::env::set_var("RAYON_NUM_THREADS", "1");
        let serial = tight_checker().query_interval_dtmc(&ball, &q).unwrap();
        std::env::set_var("RAYON_NUM_THREADS", "4");
        let parallel = tight_checker().query_interval_dtmc(&ball, &q).unwrap();
        let rerun = tight_checker().query_interval_dtmc(&ball, &q).unwrap();
        let reordered = tight_checker().query_interval_dtmc(&reversed, &q).unwrap();
        std::env::remove_var("RAYON_NUM_THREADS");

        for s in 0..n {
            let (lo, hi) = serial.at(s);
            for (name, other) in
                [("parallel", &parallel), ("rerun", &rerun), ("reordered", &reordered)]
            {
                let (ol, oh) = other.at(s);
                prop_assert_eq!(lo.to_bits(), ol.to_bits(),
                    "state {}: pessimistic differs from {} run", s, name);
                prop_assert_eq!(hi.to_bits(), oh.to_bits(),
                    "state {}: optimistic differs from {} run", s, name);
            }
        }
    }
}
