//! Cross-validation between independent engines: the parametric symbolic
//! engine against the concrete checker, the MDP checker against induced
//! DTMCs, and PCTL semantics against brute-force path enumeration.

// The shared generator library replaces the ad-hoc helper this file used
// to carry; `random_dtmc` is seed-compatible, so all the seeds below keep
// producing the exact same chains.
use tml_conformance::test_support::random_dtmc;
use trusted_ml::checker::{dtmc as cdtmc, mdp as cmdp, CheckOptions, Checker};
use trusted_ml::logic::{parse_formula, parse_query, Opt};
use trusted_ml::models::MdpBuilder;
use trusted_ml::parametric::ParametricDtmc;

/// Lifting a DTMC into a (trivially constant) parametric chain and running
/// symbolic reachability reproduces the concrete checker on 20 random
/// models.
#[test]
fn parametric_constant_lift_matches_checker() {
    for seed in 0..20 {
        let d = random_dtmc(seed, 7);
        let p = ParametricDtmc::from_dtmc(&d, vec!["v".into()]).build().unwrap();
        let target = d.labeling().mask("goal");
        let symbolic = p.reachability(&target).unwrap();
        let exact =
            cdtmc::until_probabilities(&d, &[true; 7], &target, &CheckOptions::default()).unwrap();
        for s in 0..7 {
            let sym = symbolic[s].eval(&[0.0]).unwrap();
            assert!((sym - exact[s]).abs() < 1e-8, "seed {seed} state {s}: {sym} vs {}", exact[s]);
        }
    }
}

/// Bounded-until brute force: enumerate all paths of length k and sum the
/// probability of those satisfying `F<=k goal`; must equal the checker.
#[test]
fn bounded_until_matches_path_enumeration() {
    let d = random_dtmc(3, 5);
    let target = d.labeling().mask("goal");
    let k = 4;
    let exact = cdtmc::bounded_until_probabilities(&d, &[true; 5], &target, k);

    // Brute force from each state.
    for s0 in 0..5 {
        let mut total = 0.0;
        // stack of (state, prob, depth, hit)
        let mut stack = vec![(s0, 1.0, 0u64, target[s0])];
        while let Some((s, pr, depth, hit)) = stack.pop() {
            if hit {
                total += pr;
                continue;
            }
            if depth == k {
                continue;
            }
            for (t, p) in d.successors(s) {
                stack.push((t, pr * p, depth + 1, target[t]));
            }
        }
        assert!((total - exact[s0]).abs() < 1e-9, "state {s0}: {total} vs {}", exact[s0]);
    }
}

/// For every deterministic memoryless policy of a small MDP, the induced
/// DTMC's reachability lies between Pmin and Pmax, and the extremes are
/// attained.
#[test]
fn mdp_optima_bracket_all_policies() {
    let mut b = MdpBuilder::new(4);
    b.choice(0, "a", &[(1, 0.5), (2, 0.5)]).unwrap();
    b.choice(0, "b", &[(2, 1.0)]).unwrap();
    b.choice(1, "a", &[(3, 0.7), (0, 0.3)]).unwrap();
    b.choice(1, "b", &[(0, 1.0)]).unwrap();
    b.choice(2, "a", &[(2, 1.0)]).unwrap();
    b.choice(3, "a", &[(3, 1.0)]).unwrap();
    b.label(3, "goal").unwrap();
    let m = b.build().unwrap();
    let opts = CheckOptions::default();
    let target = m.labeling().mask("goal");
    let phi = vec![true; 4];
    let pmax = cmdp::until_probabilities(&m, &phi, &target, Opt::Max, &opts).unwrap();
    let pmin = cmdp::until_probabilities(&m, &phi, &target, Opt::Min, &opts).unwrap();

    let mut attained_max = false;
    let mut attained_min = false;
    for c0 in 0..2 {
        for c1 in 0..2 {
            let chain = m.induce(&[c0, c1, 0, 0]).unwrap();
            let v = cdtmc::until_probabilities(&chain, &phi, &target, &opts).unwrap();
            for s in 0..4 {
                assert!(v[s] <= pmax[s] + 1e-9, "policy ({c0},{c1}) state {s}");
                assert!(v[s] >= pmin[s] - 1e-9, "policy ({c0},{c1}) state {s}");
            }
            if (v[0] - pmax[0]).abs() < 1e-9 {
                attained_max = true;
            }
            if (v[0] - pmin[0]).abs() < 1e-9 {
                attained_min = true;
            }
        }
    }
    assert!(attained_max, "some deterministic policy attains Pmax");
    assert!(attained_min, "some deterministic policy attains Pmin");
}

/// Reward queries agree between the two reward kinds where they should:
/// `R[C<=k]` converges to `R[F goal]` as k grows on an almost-surely
/// absorbing chain.
#[test]
fn cumulative_converges_to_reachability_reward() {
    let d = random_dtmc(11, 6);
    let checker = Checker::new();
    let reach =
        checker.query_dtmc(&d, &parse_query("R{\"cost\"}=? [ F \"goal\" ]").unwrap()).unwrap();
    let cum = checker.query_dtmc(&d, &parse_query("R{\"cost\"}=? [ C<=4000 ]").unwrap()).unwrap();
    for s in 0..6 {
        if reach[s].is_finite() {
            assert!(
                (reach[s] - cum[s]).abs() < 1e-4 * (1.0 + reach[s]),
                "state {s}: {} vs {}",
                reach[s],
                cum[s]
            );
        }
    }
}

/// The P and R operators nest: a formula mixing both levels evaluates
/// without error and respects monotonicity in the bound.
#[test]
fn nested_operators_monotone_in_bound() {
    let d = random_dtmc(5, 6);
    let checker = Checker::new();
    let mut last_count = usize::MAX;
    for bound in ["0.1", "0.5", "0.9"] {
        let f = parse_formula(&format!("P>={bound} [ F \"goal\" ]")).unwrap();
        let res = checker.check_dtmc(&d, &f).unwrap();
        assert!(res.count() <= last_count, "satisfying set must shrink as the bound rises");
        last_count = res.count();
    }
}

/// Gauss–Seidel and direct solver agree on a mid-sized random model.
#[test]
fn solvers_agree_on_larger_model() {
    let d = random_dtmc(21, 60);
    let target = d.labeling().mask("goal");
    let phi = vec![true; 60];
    let direct = cdtmc::until_probabilities(
        &d,
        &phi,
        &target,
        &CheckOptions { solver: trusted_ml::checker::LinearSolver::Direct, ..Default::default() },
    )
    .unwrap();
    let gs = cdtmc::until_probabilities(
        &d,
        &phi,
        &target,
        &CheckOptions {
            solver: trusted_ml::checker::LinearSolver::GaussSeidel,
            tolerance: 1e-13,
            ..Default::default()
        },
    )
    .unwrap();
    for s in 0..60 {
        assert!((direct[s] - gs[s]).abs() < 1e-7, "state {s}");
    }
}
