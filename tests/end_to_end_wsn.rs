//! End-to-end reproduction of the WSN case study (paper §V-A) as
//! integration tests spanning models → checker → parametric → optimizer →
//! repair.

use trusted_ml::checker::Checker;
use trusted_ml::logic::parse_query;
use trusted_ml::repair::{DataRepair, ModelRepair, RepairStatus};
use trusted_ml::wsn::{
    attempts_property, build_dtmc, build_mdp, classes, generate_traces, model_spec,
    repair_template, WsnConfig,
};

fn expected_attempts(chain: &trusted_ml::models::Dtmc, source: usize) -> f64 {
    let q = parse_query("R{\"attempts\"}=? [ F \"delivered\" ]").unwrap();
    Checker::new().query_dtmc(chain, &q).unwrap()[source]
}

/// E1: the learned model satisfies `R{attempts} <= 100 [F delivered]`
/// without any repair.
#[test]
fn e1_model_satisfies_x100() {
    let config = WsnConfig::default();
    let chain = build_dtmc(&config).unwrap();
    let out = ModelRepair::new()
        .repair_dtmc(&chain, &attempts_property(100.0), &repair_template(&config).unwrap())
        .unwrap();
    assert_eq!(out.status, RepairStatus::AlreadySatisfied);
}

/// E2: `X = 40` needs repair; small positive corrections to both ignore
/// probability groups are found and the repaired model verifies.
#[test]
fn e2_model_repair_feasible_x40() {
    let config = WsnConfig::default();
    let chain = build_dtmc(&config).unwrap();
    let out = ModelRepair::new()
        .repair_dtmc(&chain, &attempts_property(40.0), &repair_template(&config).unwrap())
        .unwrap();
    assert_eq!(out.status, RepairStatus::Repaired);
    assert!(out.verified);
    let p = out.parameters.iter().find(|(n, _)| n == "p").unwrap().1;
    let q = out.parameters.iter().find(|(n, _)| n == "q").unwrap().1;
    assert!(p > 0.0 && p < 0.1, "p = {p}");
    assert!(q > 0.0 && q < 0.1, "q = {q}");
    let repaired = out.model.unwrap();
    assert!(expected_attempts(&repaired, config.source()) <= 40.0 + 1e-6);
    // The repair must actually lower the ignore rates (raise forwarding).
    assert!(
        repaired.probability(config.source(), config.source())
            < chain.probability(config.source(), config.source())
    );
}

/// E3: `X = 19` is infeasible under the small-perturbation class.
#[test]
fn e3_model_repair_infeasible_x19() {
    let config = WsnConfig::default();
    let chain = build_dtmc(&config).unwrap();
    let out = ModelRepair::new()
        .repair_dtmc(&chain, &attempts_property(19.0), &repair_template(&config).unwrap())
        .unwrap();
    assert_eq!(out.status, RepairStatus::Infeasible);
    assert!(out.model.is_none());
}

/// E4: Data Repair drops the corrupt ignore observations so the re-learned
/// model satisfies `X = 19`.
#[test]
fn e4_data_repair_x19() {
    let config = WsnConfig::default();
    let dataset = generate_traces(&config, 120, 40.0, 42).unwrap();
    let spec = model_spec(&config);
    let out = DataRepair::new()
        .keep_class(classes::FORWARD_SUCCESS)
        .repair(&dataset, &spec, &attempts_property(19.0))
        .unwrap();
    assert_eq!(out.status, RepairStatus::Repaired);
    assert!(out.verified);
    // The reliable class is kept in full; the droppable classes lose mass.
    for (class, w) in &out.keep_weights {
        if class == classes::FORWARD_SUCCESS {
            assert!((w - 1.0).abs() < 1e-12);
        } else {
            assert!(*w < 0.9, "class {class} kept at {w}");
        }
    }
    let repaired = out.model.unwrap();
    assert!(expected_attempts(&repaired, config.source()) <= 19.0 + 1e-6);
}

/// The MDP view brackets the DTMC view: Rmin <= R(dtmc) <= Rmax.
#[test]
fn mdp_brackets_dtmc() {
    let config = WsnConfig::default();
    let chain = build_dtmc(&config).unwrap();
    let mdp = build_mdp(&config).unwrap();
    let checker = Checker::new();
    let avg = expected_attempts(&chain, config.source());
    let rmax = parse_query("R{\"attempts\"}max=? [ F \"delivered\" ]").unwrap();
    let rmin = parse_query("R{\"attempts\"}min=? [ F \"delivered\" ]").unwrap();
    let worst = checker.query_mdp(&mdp, &rmax).unwrap()[config.source()];
    let best = checker.query_mdp(&mdp, &rmin).unwrap()[config.source()];
    assert!(best <= avg + 1e-6 && avg <= worst + 1e-6, "{best} <= {avg} <= {worst}");
}

/// Monte-Carlo sanity: simulated attempt counts agree with the analytic
/// expected reward within sampling error.
#[test]
fn simulation_agrees_with_checker() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let config = WsnConfig::default();
    let chain = build_dtmc(&config).unwrap();
    let analytic = expected_attempts(&chain, config.source());
    let mut rng = StdRng::seed_from_u64(1);
    let episodes = 4000;
    let mut total = 0.0;
    for _ in 0..episodes {
        let path = chain.sample_path(&mut rng, 100_000, |s| s == config.delivered());
        total += (path.len() - 1) as f64;
    }
    let empirical = total / episodes as f64;
    let rel = (empirical - analytic).abs() / analytic;
    assert!(rel < 0.05, "empirical {empirical} vs analytic {analytic}");
}

/// The symbolic expected-attempts function from the parametric engine
/// matches instantiate-and-check to machine precision on the 2×2 grid,
/// where the rational function stays below the f64-safe degree threshold
/// (Proposition 2's reduction, cross-validated).
#[test]
fn symbolic_matches_oracle_on_small_wsn() {
    let config = WsnConfig { n: 2, ..Default::default() };
    let chain = build_dtmc(&config).unwrap();
    let template = repair_template(&config).unwrap();
    let pdtmc = template.apply(&chain).unwrap();
    let target = pdtmc.labeling().mask("delivered");
    let symbolic = pdtmc.expected_reward("attempts", &target).unwrap();
    assert!(symbolic[config.source()].complexity() <= 16, "small grid stays symbolic");
    let q = parse_query("R{\"attempts\"}=? [ F \"delivered\" ]").unwrap();
    for &(p, qv) in &[(0.0, 0.0), (0.02, 0.01), (0.05, 0.05), (0.09, 0.03)] {
        let inst = pdtmc.instantiate(&[p, qv]).unwrap();
        let oracle = Checker::new().query_dtmc(&inst, &q).unwrap()[config.source()];
        let sym = symbolic[config.source()].eval(&[p, qv]).unwrap();
        let rel = (sym - oracle).abs() / oracle;
        assert!(rel < 1e-9, "p={p} q={qv}: symbolic {sym} vs oracle {oracle}");
    }
}

/// On the 3×3 grid the symbolic form exceeds the f64-safe degree threshold
/// (the repairs then automatically use the exact oracle back-end); the
/// symbolic value still agrees with the oracle in the interior of the box,
/// degrading only near the uncancelled removable singularity at the origin.
#[test]
fn symbolic_degrades_gracefully_on_full_wsn() {
    let config = WsnConfig::default();
    let chain = build_dtmc(&config).unwrap();
    let template = repair_template(&config).unwrap();
    let pdtmc = template.apply(&chain).unwrap();
    let target = pdtmc.labeling().mask("delivered");
    let symbolic = pdtmc.expected_reward("attempts", &target).unwrap();
    assert!(symbolic[config.source()].complexity() > 16, "3x3 grid exceeds the threshold");
    let q = parse_query("R{\"attempts\"}=? [ F \"delivered\" ]").unwrap();
    let inst = pdtmc.instantiate(&[0.09, 0.09]).unwrap();
    let oracle = Checker::new().query_dtmc(&inst, &q).unwrap()[config.source()];
    let sym = symbolic[config.source()].eval(&[0.09, 0.09]).unwrap();
    assert!((sym - oracle).abs() / oracle < 1e-2, "interior accuracy: {sym} vs {oracle}");
}

/// Model repair also works on the MDP view through the oracle back-end:
/// meeting a worst-scheduler bound (Rmax) by correcting ignore rates.
#[test]
fn mdp_model_repair_worst_case_bound() {
    use trusted_ml::repair::{MdpPerturbationTemplate, ModelRepair};
    let config = WsnConfig { n: 2, ..Default::default() };
    let mdp = build_mdp(&config).unwrap();
    let checker = Checker::new();
    let rmax = parse_query("R{\"attempts\"}max=? [ F \"delivered\" ]").unwrap();
    let base_worst = checker.query_mdp(&mdp, &rmax).unwrap()[config.source()];

    // Perturb every forwarding choice: success up by v, retry down by v.
    let mut template = MdpPerturbationTemplate::new();
    let v = template.parameter("v", 0.0, 0.08);
    for s in 0..config.n * config.n {
        for (c, choice) in mdp.choices(s).iter().enumerate() {
            if choice.transitions.len() == 2 {
                let (succ, _) = choice.transitions.iter().find(|&&(t, _)| t != s).copied().unwrap();
                template.nudge(s, c, succ, v, 1.0).unwrap();
                template.nudge(s, c, s, v, -1.0).unwrap();
            }
        }
    }
    // R{attempts} <= bound resolves to Rmax <= bound on MDPs.
    let bound = base_worst * 0.85;
    let property = trusted_ml::logic::parse_formula(&format!(
        "R{{\"attempts\"}}<={bound} [ F \"delivered\" ]"
    ))
    .unwrap();
    let out = ModelRepair::new().repair_mdp(&mdp, &property, &template).unwrap();
    assert_eq!(out.status, trusted_ml::repair::RepairStatus::Repaired);
    assert!(out.verified);
    let repaired = out.model.unwrap();
    let worst = checker.query_mdp(&repaired, &rmax).unwrap()[config.source()];
    assert!(worst <= bound + 1e-6, "worst {worst} vs bound {bound}");
}

/// The full TML pipeline (learn → verify → model repair → data repair) on
/// WSN traces: model repair's template is too weak for the harsh bound, so
/// the pipeline falls through to data repair and still produces a trusted
/// model.
#[test]
fn tml_pipeline_on_wsn_traces() {
    use trusted_ml::repair::pipeline::{TmlOutcome, TmlPipeline};
    use trusted_ml::repair::PerturbationTemplate;
    let config = WsnConfig::default();
    let dataset = generate_traces(&config, 120, 40.0, 42).unwrap();
    let spec = model_spec(&config);

    // A deliberately weak template: only the source node's row, tiny box.
    let learned = trusted_ml::models::learn::ml_dtmc(
        spec.num_states,
        &dataset,
        None,
        trusted_ml::models::MlOptions::default(),
    )
    .unwrap()
    .build()
    .unwrap();
    let mut template = PerturbationTemplate::new();
    let v = template.parameter("v", 0.0, 0.001);
    let src = config.source();
    let (succ, _) = learned.successors(src).find(|&(t, _)| t != src).unwrap();
    template.nudge(src, succ, v, 1.0).unwrap();
    template.nudge(src, src, v, -1.0).unwrap();

    let outcome = TmlPipeline::new(spec, attempts_property(19.0))
        .with_model_repair(template)
        .with_data_repair()
        .run(&dataset)
        .unwrap();
    match &outcome {
        TmlOutcome::DataRepaired { outcome, model_repair_status } => {
            assert_eq!(*model_repair_status, Some(trusted_ml::repair::RepairStatus::Infeasible));
            assert!(outcome.verified);
        }
        other => panic!("expected data repair to fire, got {other:?}"),
    }
    assert!(outcome.is_trusted());
}

/// Every repair outcome of the case study survives an independent
/// simulation cross-check: the Monte Carlo estimate of the repaired
/// quantity cannot refute the bound the checker certified. The E2 repair
/// is boundary-optimal (expected attempts land exactly on X = 40), so the
/// acceptance criterion is "not refuted", never "corroborated".
#[test]
fn repair_outcomes_pass_simulation_cross_check() {
    use tml_conformance::test_support::{SimCheck, SimOptions, Simulator};
    let config = WsnConfig::default();
    let chain = build_dtmc(&config).unwrap();
    let property = attempts_property(40.0);
    let out = ModelRepair::new()
        .repair_dtmc(&chain, &property, &repair_template(&config).unwrap())
        .unwrap();
    assert!(out.verified);
    let repaired = out.model.unwrap();

    let sim = Simulator::new(SimOptions { trajectories: 20_000, seed: 7, ..SimOptions::default() });
    let check = sim.check_formula(&repaired, &property).unwrap();
    assert!(check.verdict().acceptable(), "simulation refuted the certified repair: {check:?}");
    let SimCheck::Reward { estimate, .. } = &check else {
        panic!("attempts property is a reward check");
    };
    // Delivery is almost sure and far faster than the step cap: every
    // trajectory completes, so the mean is unbiased and must sit at the
    // boundary the repair targeted (within sampling error).
    assert_eq!(estimate.truncated, 0);
    let analytic = expected_attempts(&repaired, config.source());
    let rel = (estimate.mean - analytic).abs() / analytic;
    assert!(rel < 0.05, "simulated {} vs analytic {analytic}", estimate.mean);
    assert!(estimate.mean <= 40.0 * 1.05, "mean {} strays past the bound", estimate.mean);
}

/// The pipeline's simulation cross-check hook, wired to the real
/// conformance simulator, corroborates the data-repaired WSN model
/// end to end.
#[test]
fn tml_pipeline_simulation_cross_check_on_wsn() {
    use trusted_ml::repair::pipeline::{TmlOutcome, TmlPipeline};
    let config = WsnConfig::default();
    let dataset = generate_traces(&config, 120, 40.0, 42).unwrap();
    let spec = model_spec(&config);
    let outcome = TmlPipeline::new(spec, attempts_property(19.0))
        .with_data_repair()
        .with_simulation_cross_check(tml_conformance::simulation_cross_check(8_000, 11))
        .run(&dataset)
        .unwrap();
    match &outcome {
        TmlOutcome::DataRepaired { outcome, .. } => {
            assert!(outcome.verified);
            assert_eq!(outcome.verified_by_simulation, Some(true));
        }
        other => panic!("expected data repair to fire, got {other:?}"),
    }
    assert_eq!(outcome.verified_by_simulation(), Some(true));
}

/// Proposition 1 instrumentation on the real WSN repair: the repaired
/// model's perturbation radius matches the optimizer's parameters and the
/// reachability deviation is bounded.
#[test]
fn proposition_1_on_wsn_repair() {
    use trusted_ml::repair::{perturbation_epsilon, reachability_deviation, ModelRepair};
    let config = WsnConfig::default();
    let chain = build_dtmc(&config).unwrap();
    let out = ModelRepair::new()
        .repair_dtmc(&chain, &attempts_property(40.0), &repair_template(&config).unwrap())
        .unwrap();
    let repaired = out.model.unwrap();
    let eps = perturbation_epsilon(&chain, &repaired).unwrap();
    // ε = max entry of Z = max correction / fan-out; corrections are p, q.
    let max_param = out.parameters.iter().map(|(_, v)| v.abs()).fold(0.0, f64::max);
    assert!(eps <= max_param + 1e-9, "eps {eps} exceeds max parameter {max_param}");
    assert!(eps > 0.0);
    let dev = reachability_deviation(
        &chain,
        &repaired,
        "delivered",
        &trusted_ml::checker::CheckOptions::default(),
    )
    .unwrap();
    // Delivery stays almost sure in both models.
    assert!(dev < 1e-9, "deviation {dev}");
}
