//! Fault-injection tests for the budgeted, fault-tolerant repair runtime.
//!
//! Three fault classes are injected and must be survived gracefully:
//!
//! * **NaN poisoning** — objectives/constraints that return NaN on part of
//!   their domain must not poison the solve or leak NaN into results;
//! * **slowness** — artificially slow merit functions under a wall-clock
//!   deadline must yield a best-effort `Solution` within ~2× the deadline,
//!   with the cause recorded in diagnostics (no error, no hang);
//! * **forced non-convergence** — starved iterative-solver options must
//!   drive the full Gauss–Seidel → Jacobi → direct fallback chain, and the
//!   chain's answer must match a pure direct solve.

use std::time::{Duration, Instant};

use trusted_ml::checker::{dtmc, Budget, CancelToken, CheckOptions, Exhaustion, LinearSolver};
use trusted_ml::logic::parse_formula;
use trusted_ml::models::{Dtmc, DtmcBuilder, Path, TraceDataset};
use trusted_ml::optimizer::{ConstraintSense, Nlp, PenaltySolver};
use trusted_ml::repair::pipeline::{TmlOutcome, TmlPipeline};
use trusted_ml::repair::{ModelRepair, ModelSpec, PerturbationTemplate, RepairStatus};

// ---------------------------------------------------------------- NaN faults

/// An NLP whose objective is NaN on half its box: the solver must ignore
/// the poisoned region and still find the clean minimum.
#[test]
fn nan_poisoned_objective_is_survived() {
    let mut nlp = Nlp::new(1, vec![(-2.0, 2.0)]).unwrap();
    nlp.objective(|x| if x[0] < 0.0 { f64::NAN } else { (x[0] - 1.0).powi(2) });
    let sol = PenaltySolver::new().solve(&nlp).unwrap();
    assert!(sol.x[0].is_finite(), "solution leaked a non-finite point: {:?}", sol.x);
    assert!((sol.x[0] - 1.0).abs() < 1e-3, "x = {:?}", sol.x);
    assert!(sol.feasible);
}

/// NaN in a *constraint* (the shape a crashed checker oracle produces —
/// `unwrap_or(f64::NAN)`) must not make the solver report a bogus feasible
/// point inside the poisoned region.
#[test]
fn nan_poisoned_constraint_is_survived() {
    let mut nlp = Nlp::new(1, vec![(-2.0, 2.0)]).unwrap();
    nlp.objective(|x| x[0] * x[0]);
    // Oracle "crashes" (NaN) left of the origin; requires x >= 1 elsewhere.
    nlp.constraint(
        "oracle",
        ConstraintSense::Ge,
        1.0,
        |x| {
            if x[0] < 0.0 {
                f64::NAN
            } else {
                x[0]
            }
        },
    );
    let sol = PenaltySolver::new().solve(&nlp).unwrap();
    assert!(sol.feasible, "expected the clean feasible region to be found");
    assert!((sol.x[0] - 1.0).abs() < 1e-2, "x = {:?}", sol.x);
}

// ------------------------------------------------------------ slowness faults

/// A merit function that takes ~2 ms per evaluation would need seconds for
/// a full penalty solve. Under a 50 ms deadline the solver must hand back a
/// best-effort solution within ~2× the deadline.
#[test]
fn slow_objective_respects_wall_clock_deadline() {
    let mut nlp = Nlp::new(1, vec![(0.0, 2.0)]).unwrap();
    nlp.objective(|x| {
        std::thread::sleep(Duration::from_millis(2));
        (x[0] - 1.0).powi(2)
    });
    let deadline = Duration::from_millis(50);
    let start = Instant::now();
    let sol = PenaltySolver::new()
        .with_budget(Budget::unlimited().with_deadline(deadline))
        .solve(&nlp)
        .unwrap();
    let elapsed = start.elapsed();
    assert_eq!(sol.stopped, Some(Exhaustion::Deadline));
    assert!(elapsed < deadline * 2, "solver overshot the deadline: {elapsed:?} vs {deadline:?}");
    assert!(sol.x[0].is_finite());
    assert!((0.0..=2.0).contains(&sol.x[0]));
    assert!(sol.evaluations > 0, "nothing was evaluated before stopping");
}

/// A repair on a hard instance — a 400-state chain with a bounded-until
/// property, which forces the slow instantiate-and-check oracle and an
/// infeasible bound that makes the unbudgeted search exhaustive — must
/// return a best-effort outcome within ~2× a 50 ms deadline.
#[test]
fn repair_with_deadline_returns_best_effort_in_time() {
    let n = 400;
    let mut b = DtmcBuilder::new(n);
    for s in 0..n - 2 {
        b.transition(s, s + 1, 0.98).unwrap();
        b.transition(s, n - 1, 0.02).unwrap();
    }
    b.transition(n - 2, n - 2, 1.0).unwrap();
    b.transition(n - 1, n - 1, 1.0).unwrap();
    b.label(n - 2, "ok").unwrap();
    let chain = b.build().unwrap();

    // Bounded F forces the oracle back-end; the bound is far out of the
    // template's reach, so an unbudgeted solve would grind through every
    // start before concluding.
    let phi = parse_formula("P>=0.999 [ F<=800 \"ok\" ]").unwrap();
    let mut template = PerturbationTemplate::new();
    let v = template.parameter("v", -0.01, 0.01);
    template.nudge(0, 1, v, 1.0).unwrap();
    template.nudge(0, n - 1, v, -1.0).unwrap();

    let deadline = Duration::from_millis(50);
    let start = Instant::now();
    let out = ModelRepair::new()
        .with_budget(Budget::unlimited().with_deadline(deadline))
        .repair_dtmc(&chain, &phi, &template)
        .unwrap();
    let elapsed = start.elapsed();

    assert!(elapsed < deadline * 2, "repair overshot the deadline: {elapsed:?} vs {deadline:?}");
    assert_eq!(out.status, RepairStatus::BudgetExhausted);
    assert_eq!(out.diagnostics.exhausted, Some(Exhaustion::Deadline));
    assert!(out.diagnostics.degraded());
    // Best-effort parameters are still reported and finite.
    assert!(out.parameters.iter().all(|(_, v)| v.is_finite()));
}

// ----------------------------------------------------------- cancellation

/// Cancelling the shared token stops every stage of the pipeline: the run
/// concludes immediately with a best-effort outcome, never an error.
#[test]
fn cancelled_pipeline_concludes_immediately() {
    let mut ds = TraceDataset::new();
    let good = ds.add_class("good");
    let bad = ds.add_class("bad");
    ds.push(good, Path::from_states(vec![0, 1, 1]), 5.0).unwrap();
    ds.push(bad, Path::from_states(vec![0, 2, 2]), 5.0).unwrap();
    let spec = ModelSpec::new(3).label(1, "goal");
    let phi = parse_formula("P>=0.7 [ F \"goal\" ]").unwrap();
    let mut template = PerturbationTemplate::new();
    let v = template.parameter("v", -0.3, 0.3);
    template.nudge(0, 1, v, 1.0).unwrap();
    template.nudge(0, 2, v, -1.0).unwrap();

    let token = CancelToken::new();
    token.cancel(); // cancelled before the run even starts
    let out = TmlPipeline::new(spec, phi)
        .with_model_repair(template)
        .with_data_repair()
        .with_budget(Budget::unlimited().with_cancel_token(token))
        .run(&ds)
        .unwrap();
    match &out {
        TmlOutcome::Unrepairable { model_repair_status, data_repair_status, .. } => {
            assert_eq!(*model_repair_status, Some(RepairStatus::BudgetExhausted));
            assert_eq!(*data_repair_status, Some(RepairStatus::BudgetExhausted));
        }
        other => panic!("expected a best-effort conclusion, got {other:?}"),
    }
    assert_eq!(out.diagnostics().exhausted, Some(Exhaustion::Cancelled));
}

// ------------------------------------------- forced non-convergence faults

fn starved_options() -> CheckOptions {
    CheckOptions {
        solver: LinearSolver::Auto,
        direct_solver_limit: 0, // never pick direct up front
        max_iterations: 3,      // Gauss–Seidel and Jacobi stall immediately
        tolerance: 1e-12,
        // The SCC stage would rescue the gambler chain before the iterative
        // solvers ever run (its one nontrivial component fits the dense
        // block limit and solves exactly); disable it so the chain under
        // test is the GS → Jacobi → direct fallback ladder itself.
        scc_enabled: false,
        ..Default::default()
    }
}

/// The gambler's-ruin chain: slow geometric convergence, so three sweeps
/// cannot reach 1e-12 and both iterative solvers stall.
fn gambler(n: usize) -> Dtmc {
    let mut b = DtmcBuilder::new(n);
    for s in 1..n - 1 {
        b.transition(s, s - 1, 0.5).unwrap();
        b.transition(s, s + 1, 0.5).unwrap();
    }
    b.transition(0, 0, 1.0).unwrap();
    b.transition(n - 1, n - 1, 1.0).unwrap();
    b.initial_state(n / 2).unwrap();
    b.label(n - 1, "goal").unwrap();
    b.build().unwrap()
}

/// Forced non-convergence fires the full chain — Gauss–Seidel stalls,
/// Jacobi stalls, the dense direct solver rescues — and the rescued values
/// match a pure direct solve exactly.
#[test]
fn forced_nonconvergence_fires_full_fallback_chain() {
    let d = gambler(24);
    let phi = vec![true; 24];
    let target = d.labeling().mask("goal");
    let exact = dtmc::until_probabilities(
        &d,
        &phi,
        &target,
        &CheckOptions { solver: LinearSolver::Direct, ..Default::default() },
    )
    .unwrap();
    let (values, diag) =
        dtmc::until_probabilities_diag(&d, &phi, &target, &starved_options(), &Budget::unlimited())
            .unwrap();
    assert_eq!(diag.fallbacks.len(), 2, "fallbacks: {:?}", diag.fallbacks);
    assert!(diag.fallbacks[0].contains("jacobi"), "fallbacks: {:?}", diag.fallbacks);
    assert!(diag.fallbacks[1].contains("direct"), "fallbacks: {:?}", diag.fallbacks);
    assert!(diag.degraded());
    assert_eq!(diag.exhausted, None, "stalling is not budget exhaustion");
    for s in 0..24 {
        assert!(
            (values[s] - exact[s]).abs() < 1e-9,
            "state {s}: fallback {} vs direct {}",
            values[s],
            exact[s]
        );
    }
}

mod fallback_chain_properties {
    use super::*;
    use proptest::prelude::*;

    /// A random sub-stochastic 12-state chain (same generator shape as the
    /// checker's own property tests).
    fn random_chain(seed: &[f64], n: usize) -> Dtmc {
        let mut b = DtmcBuilder::new(n);
        let mut k = 0;
        for s in 0..n {
            let t1 = ((seed[k] * n as f64) as usize).min(n - 1);
            let t2 = ((seed[k + 1] * n as f64) as usize).min(n - 1);
            let p = 0.05 + 0.9 * seed[k + 2];
            k += 3;
            if t1 == t2 {
                b.transition(s, t1, 1.0).unwrap();
            } else {
                b.transition(s, t1, p).unwrap();
                b.transition(s, t2, 1.0 - p).unwrap();
            }
        }
        b.label(n - 1, "goal").unwrap();
        b.build().unwrap()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// On random systems the starved GS → Jacobi → direct chain must
        /// agree with a pure direct solve to tight tolerance, whatever
        /// subset of the chain actually fires.
        #[test]
        fn starved_chain_matches_pure_direct(
            seed in proptest::collection::vec(0.0_f64..1.0, 36),
        ) {
            let n = 12;
            let d = random_chain(&seed, n);
            let phi = vec![true; n];
            let target = d.labeling().mask("goal");
            let exact = dtmc::until_probabilities(
                &d,
                &phi,
                &target,
                &CheckOptions { solver: LinearSolver::Direct, ..Default::default() },
            )
            .unwrap();
            let (values, diag) = dtmc::until_probabilities_diag(
                &d,
                &phi,
                &target,
                &starved_options(),
                &Budget::unlimited(),
            )
            .unwrap();
            prop_assert_eq!(diag.exhausted, None);
            for s in 0..n {
                prop_assert!((0.0..=1.0 + 1e-9).contains(&values[s]),
                    "state {} out of range: {}", s, values[s]);
                prop_assert!((values[s] - exact[s]).abs() < 1e-8,
                    "state {}: fallback {} vs direct {}", s, values[s], exact[s]);
            }
        }
    }
}

// ------------------------------------------- parallel diagnostics merging

mod diagnostics_absorb_properties {
    use proptest::prelude::*;
    use trusted_ml::checker::{Diagnostics, Exhaustion};

    /// One per-thread diagnostics record, as a parallel restart would
    /// produce it: some evaluations, maybe a residual, maybe a fallback,
    /// maybe an exhaustion cause, and a telemetry counter.
    fn build(evals: u64, resid: f64, cause: u8, fallback: u8) -> Diagnostics {
        let mut d = Diagnostics::new();
        d.evaluations = evals;
        d.record_residual(resid);
        d.exhausted = match cause {
            1 => Some(Exhaustion::Evaluations),
            2 => Some(Exhaustion::Deadline),
            3 => Some(Exhaustion::Cancelled),
            _ => None,
        };
        if fallback == 1 {
            d.record_fallback(format!("fallback-{evals}"));
        }
        d.telemetry.incr("solver.penalty.evaluations", evals);
        d
    }

    /// The order-independent fingerprint of a merged record: totals, worst
    /// residual, exhaustion cause, the fallback *multiset* and telemetry.
    fn fingerprint(d: &Diagnostics) -> (u64, f64, Option<Exhaustion>, Vec<String>, u64) {
        let mut fallbacks = d.fallbacks.clone();
        fallbacks.sort();
        (
            d.evaluations,
            d.worst_residual,
            d.exhausted,
            fallbacks,
            d.telemetry.counter("solver.penalty.evaluations"),
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Absorbing per-thread diagnostics in any order yields the same
        /// evaluation totals, worst residual, fallback multiset and
        /// exhaustion cause as the serial order — the property the
        /// parallel-restart merge relies on.
        #[test]
        fn absorb_is_order_independent(
            parts in proptest::collection::vec((0_u64..1000, 0.0_f64..1e-3, 0_u8..4, 0_u8..2), 1..6),
            keys in proptest::collection::vec(0.0_f64..1.0, 8),
        ) {
            let records: Vec<Diagnostics> =
                parts.iter().map(|&(e, r, c, f)| build(e, r, c, f)).collect();

            // Serial order.
            let mut serial = Diagnostics::new();
            for d in &records {
                serial.absorb(d);
            }

            // A permutation derived from the key vector (argsort).
            let mut order: Vec<usize> = (0..records.len()).collect();
            order.sort_by(|&a, &b| keys[a].partial_cmp(&keys[b]).unwrap());
            let mut permuted = Diagnostics::new();
            for &i in &order {
                permuted.absorb(&records[i]);
            }

            prop_assert_eq!(fingerprint(&serial), fingerprint(&permuted));

            // Associativity under a tree-shaped merge (threads absorbing
            // into intermediate accumulators before the final fold).
            let mut left = Diagnostics::new();
            let mut right = Diagnostics::new();
            for (i, d) in records.iter().enumerate() {
                if i % 2 == 0 { left.absorb(d) } else { right.absorb(d) }
            }
            let mut tree = Diagnostics::new();
            tree.absorb(&left);
            tree.absorb(&right);
            prop_assert_eq!(fingerprint(&serial), fingerprint(&tree));
        }
    }
}

// -------------------------------------------------- budget exhaustion paths

// ------------------------------------------------- degenerate interval sets

mod degenerate_intervals {
    use super::*;
    use trusted_ml::checker::{CheckError, Checker};
    use trusted_ml::models::IntervalDtmcBuilder;

    /// Robust VI on malformed uncertainty sets must return a structured
    /// `InvalidInterval` error — never hang, panic, or emit NaN values.
    fn check_rejects(build: impl FnOnce(&mut IntervalDtmcBuilder)) -> CheckError {
        let mut b = IntervalDtmcBuilder::unchecked(2);
        b.label(1, "goal").unwrap();
        build(&mut b);
        let model = b.build().expect("unchecked builder accepts malformed rows");
        let phi = parse_formula("P>=0.5 [ F \"goal\" ]").unwrap();
        let start = Instant::now();
        let err = Checker::new().check_interval_dtmc(&model, &phi).unwrap_err();
        assert!(start.elapsed() < Duration::from_secs(5), "validation must not iterate");
        err
    }

    #[test]
    fn nan_endpoints_are_rejected() {
        let err = check_rejects(|b| {
            b.transition(0, 1, f64::NAN, 1.0).unwrap();
            b.transition(1, 1, 1.0, 1.0).unwrap();
        });
        assert!(matches!(err, CheckError::InvalidInterval { state: 0, .. }), "{err}");
    }

    #[test]
    fn inverted_interval_is_rejected() {
        // lo > hi: the row has no admissible probability at all.
        let err = check_rejects(|b| {
            b.transition(0, 1, 0.9, 0.4).unwrap();
            b.transition(1, 1, 1.0, 1.0).unwrap();
        });
        assert!(matches!(err, CheckError::InvalidInterval { state: 0, .. }), "{err}");
    }

    #[test]
    fn empty_row_polytope_is_rejected() {
        // Upper bounds sum below 1: no member distribution exists.
        let err = check_rejects(|b| {
            b.transition(0, 0, 0.1, 0.3).unwrap();
            b.transition(0, 1, 0.1, 0.3).unwrap();
            b.transition(1, 1, 1.0, 1.0).unwrap();
        });
        assert!(matches!(err, CheckError::InvalidInterval { state: 0, .. }), "{err}");
    }

    #[test]
    fn lower_bounds_above_one_are_rejected() {
        // Lower bounds sum above 1: every member would be super-stochastic.
        let err = check_rejects(|b| {
            b.transition(0, 0, 0.7, 0.9).unwrap();
            b.transition(0, 1, 0.7, 0.9).unwrap();
            b.transition(1, 1, 1.0, 1.0).unwrap();
        });
        assert!(matches!(err, CheckError::InvalidInterval { state: 0, .. }), "{err}");
    }

    /// An open robust breaker under `Auto` reroutes interval-DTMC checks to
    /// the nominal scalar checker (collapsed bracket, recorded fallback)
    /// instead of failing or looping on the robust back-end.
    #[test]
    fn open_robust_breaker_reroutes_to_nominal_under_auto() {
        use trusted_ml::models::IntervalDtmc;
        use trusted_ml::runtime::SolverBreakers;

        // Trip the robust breaker with three failed observations, exactly
        // as the runtime would after three invalid-interval jobs.
        let mut breakers = SolverBreakers::default();
        let mut failing = trusted_ml::checker::Diagnostics::default();
        failing.telemetry.incr("checker.backend.robust.fail", 1);
        for _ in 0..3 {
            breakers.observe(&failing);
        }
        let mut opts = CheckOptions::default();
        assert!(opts.robust_vi_enabled);
        breakers.adjust(&mut opts);
        assert!(!opts.robust_vi_enabled, "open breaker must disable robust VI under Auto");

        // The rerouted check still answers, with a collapsed bracket from
        // the nominal chain and the degradation on record.
        let mut b = DtmcBuilder::new(2);
        b.transition(0, 1, 0.8).unwrap();
        b.transition(0, 0, 0.2).unwrap();
        b.transition(1, 1, 1.0).unwrap();
        b.label(1, "goal").unwrap();
        let ball = IntervalDtmc::wilson_around(&b.build().unwrap(), 0.95, 100.0).unwrap();
        let phi = parse_formula("P>=0.5 [ F \"goal\" ]").unwrap();
        let r = trusted_ml::checker::Checker::with_options(opts)
            .check_interval_dtmc(&ball, &phi)
            .unwrap();
        assert!(r.holds());
        let (lo, hi) = r.bracket_at_initial().unwrap();
        assert_eq!(lo, hi, "nominal fallback collapses the bracket");
        assert!(
            r.diagnostics().fallbacks.iter().any(|f| f.contains("robust")),
            "{:?}",
            r.diagnostics().fallbacks
        );
    }
}

/// Every exhaustion cause yields a best-effort answer from the checker
/// facade — never an error, never a hang, always well-formed values.
#[test]
fn checker_budget_exhaustion_paths_are_best_effort() {
    let d = gambler(24);
    let phi = parse_formula("P>=0.4 [ F \"goal\" ]").unwrap();
    // Force the iterative back-end: the default Auto options would hand a
    // 24-state system to the direct solver, which never spends evaluations.
    let iterative = CheckOptions { solver: LinearSolver::GaussSeidel, ..Default::default() };

    // Evaluation cap.
    let capped = trusted_ml::checker::Checker::with_options(iterative)
        .with_budget(Budget::unlimited().with_max_evaluations(1));
    let r = capped.check_dtmc(&d, &phi).unwrap();
    assert_eq!(r.diagnostics().exhausted, Some(Exhaustion::Evaluations));
    assert!(r.degraded());

    // Expired deadline.
    let expired = trusted_ml::checker::Checker::with_options(iterative)
        .with_budget(Budget::unlimited().with_deadline(Duration::ZERO));
    let r = expired.check_dtmc(&d, &phi).unwrap();
    assert_eq!(r.diagnostics().exhausted, Some(Exhaustion::Deadline));

    // Cancellation.
    let token = CancelToken::new();
    token.cancel();
    let cancelled = trusted_ml::checker::Checker::with_options(iterative)
        .with_budget(Budget::unlimited().with_cancel_token(token));
    let r = cancelled.check_dtmc(&d, &phi).unwrap();
    assert_eq!(r.diagnostics().exhausted, Some(Exhaustion::Cancelled));
}
