//! Soundness harness for parameter lifting (PR 9): interval bounds must be
//! monotone under box shrinking, region verdicts must survive exhaustive
//! corner + random interior sampling, and branch-and-refine must be
//! bitwise-deterministic regardless of how many threads classify boxes.

use proptest::prelude::*;
use tml_conformance::test_support::parametric_dtmc;
use trusted_ml::parametric::{
    BoundSense, CompiledConstraintSet, CompiledRatFn, LiftingOptions, RegionProblem, RegionRow,
    RegionSolver, RegionVerdict,
};

/// Deterministic pseudo-random stream for sampling boxes and points.
struct Lcg(u64);

impl Lcg {
    fn frac(&mut self) -> f64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (self.0 >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// The reachability tapes of a generated parametric chain (goal = last
/// state), plus the box the parameters live in.
fn reachability_tapes(
    seed: u64,
    n: usize,
    nparams: usize,
) -> (Vec<CompiledRatFn>, Vec<(f64, f64)>) {
    let generated = parametric_dtmc(seed, n, nparams);
    let mut target = vec![false; generated.pdtmc.num_states()];
    target[generated.pdtmc.num_states() - 1] = true;
    let fns = generated.pdtmc.reachability(&target).expect("state elimination");
    let tapes = fns.iter().map(CompiledRatFn::compile).collect();
    let bbox = generated.lo.iter().copied().zip(generated.hi.iter().copied()).collect();
    (tapes, bbox)
}

/// A random sub-box of `outer` (never wider in any dimension).
fn shrink_box(outer: &[(f64, f64)], rng: &mut Lcg) -> Vec<(f64, f64)> {
    outer
        .iter()
        .map(|&(l, h)| {
            let (a, b) = (rng.frac(), rng.frac());
            let (a, b) = (a.min(b), a.max(b));
            (l + a * (h - l), l + b * (h - l))
        })
        .collect()
}

/// All `2^d` corners of a box.
fn corners(bbox: &[(f64, f64)]) -> Vec<Vec<f64>> {
    let d = bbox.len();
    (0..1usize << d)
        .map(|mask| {
            bbox.iter()
                .enumerate()
                .map(|(i, &(l, h))| if mask >> i & 1 == 0 { l } else { h })
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// (a) Shrinking a box never widens the interval bound, and the bound
    /// always contains the exact tape value at points inside the box.
    #[test]
    fn box_bound_monotone_and_contains_points(seed in 0u64..512, n in 4usize..10, np in 1usize..4) {
        let (tapes, full) = reachability_tapes(seed, n, np);
        let mut rng = Lcg(seed ^ 0xB0C5);
        let outer = shrink_box(&full, &mut rng);
        let inner = shrink_box(&outer, &mut rng);
        for tape in &tapes {
            let bo = tape.bound(&outer).unwrap();
            let bi = tape.bound(&inner).unwrap();
            // Monotonicity: the inner bound is nested inside the outer one.
            prop_assert!(bi.lo >= bo.lo && bi.hi <= bo.hi,
                "shrinking widened the bound: outer [{}, {}] inner [{}, {}]",
                bo.lo, bo.hi, bi.lo, bi.hi);
            // Containment: exact evaluations inside the box stay inside.
            for _ in 0..4 {
                let p: Vec<f64> =
                    inner.iter().map(|&(l, h)| l + rng.frac() * (h - l)).collect();
                if let Ok(v) = tape.eval(&p) {
                    prop_assert!(bi.lo - 1e-9 <= v && v <= bi.hi + 1e-9,
                        "value {v} escapes bound [{}, {}]", bi.lo, bi.hi);
                }
            }
        }
    }

    /// (b) Region verdicts confirmed by sampling: every AllSat leaf holds
    /// the constraint at all corners and random interior points, every
    /// AllViolating leaf violates it everywhere sampled.
    #[test]
    fn verdicts_confirmed_by_sampling(seed in 0u64..256, n in 4usize..9, np in 1usize..3) {
        let (tapes, bbox) = reachability_tapes(seed, n, np);
        let generated = parametric_dtmc(seed, n, np);
        let mut target = vec![false; generated.pdtmc.num_states()];
        target[generated.pdtmc.num_states() - 1] = true;
        let fns = generated.pdtmc.reachability(&target).unwrap();
        let init = generated.pdtmc.initial_state();
        // A threshold between the values at the two extreme corners makes
        // both verdicts reachable.
        let lo_v = tapes[init].eval(&bbox.iter().map(|b| b.0).collect::<Vec<_>>());
        let hi_v = tapes[init].eval(&bbox.iter().map(|b| b.1).collect::<Vec<_>>());
        let (Ok(lo_v), Ok(hi_v)) = (lo_v, hi_v) else { return Ok(()) };
        let thresh = 0.5 * (lo_v + hi_v);
        let set = CompiledConstraintSet::compile(std::slice::from_ref(&fns[init])).unwrap();
        let problem = RegionProblem::new(set, vec![RegionRow::new(BoundSense::Ge, thresh)]).unwrap();
        let solver = RegionSolver::with_options(LiftingOptions {
            max_boxes: 64,
            max_depth: 6,
            ..LiftingOptions::default()
        });
        let out = solver.solve(&problem, &bbox).unwrap();
        let tape = &tapes[init];
        let mut rng = Lcg(seed ^ 0x5EED);
        for leaf in &out.boxes {
            if leaf.verdict == RegionVerdict::Unknown {
                continue;
            }
            let mut points = corners(&leaf.bounds);
            for _ in 0..8 {
                points.push(leaf.bounds.iter().map(|&(l, h)| l + rng.frac() * (h - l)).collect());
            }
            for p in &points {
                let Ok(v) = tape.eval(p) else { continue };
                match leaf.verdict {
                    RegionVerdict::AllSat => prop_assert!(
                        v >= thresh - 1e-9,
                        "AllSat leaf {:?} has violating point {p:?}: {v} < {thresh}",
                        leaf.bounds
                    ),
                    RegionVerdict::AllViolating => prop_assert!(
                        v < thresh + 1e-9,
                        "AllViolating leaf {:?} has satisfying point {p:?}: {v} >= {thresh}",
                        leaf.bounds
                    ),
                    RegionVerdict::Unknown => unreachable!(),
                }
            }
        }
    }

    /// (c) Branch-and-refine is deterministic across thread counts: the
    /// parallel and serial classification paths produce bitwise-identical
    /// region lists.
    #[test]
    fn refinement_deterministic_across_thread_counts(seed in 0u64..128, n in 4usize..9) {
        let (tapes, bbox) = reachability_tapes(seed, n, 2);
        let generated = parametric_dtmc(seed, n, 2);
        let mut target = vec![false; generated.pdtmc.num_states()];
        target[generated.pdtmc.num_states() - 1] = true;
        let fns = generated.pdtmc.reachability(&target).unwrap();
        let init = generated.pdtmc.initial_state();
        let Ok(mid) = tapes[init].eval(&bbox.iter().map(|b| 0.5 * (b.0 + b.1)).collect::<Vec<_>>())
        else {
            return Ok(());
        };
        let build = || {
            let set = CompiledConstraintSet::compile(std::slice::from_ref(&fns[init])).unwrap();
            RegionProblem::new(set, vec![RegionRow::new(BoundSense::Ge, mid)]).unwrap()
        };
        let solve = |parallel: bool| {
            RegionSolver::with_options(LiftingOptions {
                max_boxes: 96,
                max_depth: 7,
                parallel,
                ..LiftingOptions::default()
            })
            .solve(&build(), &bbox)
            .unwrap()
        };
        let par = solve(true);
        let ser = solve(false);
        prop_assert_eq!(par.boxes.len(), ser.boxes.len());
        prop_assert_eq!(par.evaluations, ser.evaluations);
        for (a, b) in par.boxes.iter().zip(&ser.boxes) {
            prop_assert_eq!(a.verdict, b.verdict);
            prop_assert_eq!(a.depth, b.depth);
            prop_assert_eq!(a.objective_lo.to_bits(), b.objective_lo.to_bits());
            prop_assert_eq!(a.bounds.len(), b.bounds.len());
            for (&(al, ah), &(bl, bh)) in a.bounds.iter().zip(&b.bounds) {
                prop_assert_eq!(al.to_bits(), bl.to_bits());
                prop_assert_eq!(ah.to_bits(), bh.to_bits());
            }
        }
    }
}
