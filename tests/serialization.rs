//! Serialization round-trips: models, datasets and formulas survive
//! serde (JSON) and the textual model format without loss.

use trusted_ml::logic::{parse_formula, parse_query, StateFormula};
use trusted_ml::models::dsl::{dtmc_to_dsl, mdp_to_dsl, parse_model, ModelFile};
use trusted_ml::models::{DtmcBuilder, MdpBuilder, Path, TraceDataset};

fn sample_dtmc() -> trusted_ml::models::Dtmc {
    let mut b = DtmcBuilder::new(3);
    b.transition(0, 1, 0.25).unwrap();
    b.transition(0, 2, 0.75).unwrap();
    b.transition(1, 1, 1.0).unwrap();
    b.transition(2, 0, 1.0).unwrap();
    b.label(1, "goal").unwrap();
    b.label(2, "detour").unwrap();
    b.state_reward("fuel", 0, 1.5).unwrap();
    b.initial_state(2).unwrap();
    b.build().unwrap()
}

fn sample_mdp() -> trusted_ml::models::Mdp {
    let mut b = MdpBuilder::new(2);
    b.choice(0, "go", &[(1, 0.9), (0, 0.1)]).unwrap();
    b.choice(0, "wait", &[(0, 1.0)]).unwrap();
    b.choice(1, "wait", &[(1, 1.0)]).unwrap();
    b.label(1, "done").unwrap();
    b.state_reward("cost", 0, 1.0).unwrap();
    b.choice_reward("cost", 0, 0, 0.25).unwrap();
    b.build().unwrap()
}

#[test]
fn dtmc_json_roundtrip() {
    let d = sample_dtmc();
    let json = serde_json::to_string(&d).unwrap();
    let back: trusted_ml::models::Dtmc = serde_json::from_str(&json).unwrap();
    assert_eq!(d, back);
}

#[test]
fn mdp_json_roundtrip() {
    let m = sample_mdp();
    let json = serde_json::to_string(&m).unwrap();
    let back: trusted_ml::models::Mdp = serde_json::from_str(&json).unwrap();
    assert_eq!(m, back);
}

#[test]
fn dataset_json_roundtrip() {
    let mut ds = TraceDataset::new();
    let c = ds.add_class("obs");
    ds.push(c, Path::with_actions(vec![0, 1], vec![2]).unwrap(), 3.5).unwrap();
    let json = serde_json::to_string(&ds).unwrap();
    let back: TraceDataset = serde_json::from_str(&json).unwrap();
    assert_eq!(ds, back);
}

#[test]
fn formula_json_roundtrip() {
    let phi = parse_formula("Pmax>=0.95 [ !\"bad\" U<=12 \"good\" ]").unwrap();
    let json = serde_json::to_string(&phi).unwrap();
    let back: StateFormula = serde_json::from_str(&json).unwrap();
    assert_eq!(phi, back);
}

#[test]
fn query_json_roundtrip() {
    let q = parse_query("R{\"fuel\"}min=? [ F \"goal\" ]").unwrap();
    let json = serde_json::to_string(&q).unwrap();
    let back: trusted_ml::logic::Query = serde_json::from_str(&json).unwrap();
    assert_eq!(q, back);
}

#[test]
fn dsl_roundtrip_preserves_semantics() {
    let d = sample_dtmc();
    let text = dtmc_to_dsl(&d);
    let ModelFile::Dtmc(back) = parse_model(&text).unwrap() else { panic!("kind flip") };
    assert_eq!(d, back);

    let m = sample_mdp();
    let text = mdp_to_dsl(&m);
    let ModelFile::Mdp(back) = parse_model(&text).unwrap() else { panic!("kind flip") };
    assert_eq!(m, back);
}

#[test]
fn dsl_roundtrip_checks_identically() {
    // Semantics, not just structure: checking a property on the original
    // and on the round-tripped model gives identical values.
    let d = sample_dtmc();
    let ModelFile::Dtmc(back) = parse_model(&dtmc_to_dsl(&d)).unwrap() else { panic!() };
    let checker = trusted_ml::checker::Checker::new();
    let q = parse_query("P=? [ F \"goal\" ]").unwrap();
    let a = checker.query_dtmc(&d, &q).unwrap();
    let b = checker.query_dtmc(&back, &q).unwrap();
    assert_eq!(a, b);
}
