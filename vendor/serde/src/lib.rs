//! Offline stand-in for the `serde` crate.
//!
//! The build environment cannot reach a crates.io mirror, so the workspace
//! vendors a minimal data-model-based replacement: values serialize into a
//! [`Content`] tree, and `serde_json` renders/parses that tree. The
//! companion `serde_derive` proc-macro generates [`Serialize`] /
//! [`Deserialize`] impls for the plain (non-generic, attribute-free)
//! structs and enums used by the workspace, following serde's externally
//! tagged enum convention so the JSON shape matches the real crate.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Serialized value tree (the stand-in's data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Non-negative integer.
    UInt(u64),
    /// Negative integer.
    Int(i64),
    /// Floating point number.
    Float(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Content>),
    /// Map with string keys (preserves insertion order).
    Map(Vec<(String, Content)>),
}

impl Content {
    /// Interprets the content as a sequence of exactly `n` elements.
    pub fn as_seq(&self, n: usize) -> Result<&[Content], DeError> {
        match self {
            Content::Seq(items) if items.len() == n => Ok(items),
            Content::Seq(items) => Err(DeError::custom(format!(
                "expected sequence of {n} elements, got {}",
                items.len()
            ))),
            other => Err(DeError::custom(format!("expected sequence, got {other:?}"))),
        }
    }

    /// Looks up a struct field in a map.
    pub fn field(&self, name: &str) -> Result<&Content, DeError> {
        match self {
            Content::Map(entries) => entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| DeError::custom(format!("missing field `{name}`"))),
            other => Err(DeError::custom(format!("expected map, got {other:?}"))),
        }
    }

    /// Decodes an externally tagged enum: a bare string is a unit variant,
    /// a single-entry map is a variant with a payload.
    pub fn variant(&self) -> Result<(&str, Option<&Content>), DeError> {
        match self {
            Content::Str(tag) => Ok((tag, None)),
            Content::Map(entries) if entries.len() == 1 => {
                Ok((entries[0].0.as_str(), Some(&entries[0].1)))
            }
            other => Err(DeError::custom(format!("expected enum variant, got {other:?}"))),
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Creates an error with the given message.
    pub fn custom(message: impl Into<String>) -> Self {
        DeError { message: message.into() }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}

/// Types that can be converted into a [`Content`] tree.
pub trait Serialize {
    /// Serializes `self` into the data model.
    fn to_content(&self) -> Content;
}

/// Types that can be reconstructed from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Deserializes a value from the data model.
    fn from_content(content: &Content) -> Result<Self, DeError>;
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                let raw = match content {
                    Content::UInt(u) => *u,
                    Content::Int(i) if *i >= 0 => *i as u64,
                    other => {
                        return Err(DeError::custom(format!(
                            "expected unsigned integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError::custom(format!("integer {raw} out of range")))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                let v = *self as i64;
                if v >= 0 {
                    Content::UInt(v as u64)
                } else {
                    Content::Int(v)
                }
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                let raw: i64 = match content {
                    Content::Int(i) => *i,
                    Content::UInt(u) => i64::try_from(*u)
                        .map_err(|_| DeError::custom(format!("integer {u} out of range")))?,
                    other => {
                        return Err(DeError::custom(format!(
                            "expected integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError::custom(format!("integer {raw} out of range")))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                let v = f64::from(*self);
                if v.is_finite() {
                    Content::Float(v)
                } else if v.is_nan() {
                    Content::Str("NaN".to_string())
                } else if v > 0.0 {
                    Content::Str("inf".to_string())
                } else {
                    Content::Str("-inf".to_string())
                }
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                let v = match content {
                    Content::Float(f) => *f,
                    Content::UInt(u) => *u as f64,
                    Content::Int(i) => *i as f64,
                    Content::Str(s) if s == "NaN" => f64::NAN,
                    Content::Str(s) if s == "inf" => f64::INFINITY,
                    Content::Str(s) if s == "-inf" => f64::NEG_INFINITY,
                    other => {
                        return Err(DeError::custom(format!(
                            "expected number, got {other:?}"
                        )))
                    }
                };
                Ok(v as $t)
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Str(s) => Ok(s.clone()),
            other => Err(DeError::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            None => Content::Null,
            Some(v) => v.to_content(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Null => Ok(None),
            other => Ok(Some(T::from_content(other)?)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        Ok(Box::new(T::from_content(content)?))
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(DeError::custom(format!("expected sequence, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                let items = content.as_seq(LEN)?;
                Ok(($($name::from_content(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Map keys that can be represented as JSON object keys.
pub trait MapKey: Sized {
    /// Renders the key as a string.
    fn to_key(&self) -> String;
    /// Parses the key back from a string.
    fn from_key(key: &str) -> Result<Self, DeError>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }

    fn from_key(key: &str) -> Result<Self, DeError> {
        Ok(key.to_string())
    }
}

macro_rules! impl_int_map_key {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }

            fn from_key(key: &str) -> Result<Self, DeError> {
                key.parse()
                    .map_err(|_| DeError::custom(format!("invalid integer key {key:?}")))
            }
        }
    )*};
}

impl_int_map_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        Content::Map(self.iter().map(|(k, v)| (k.to_key(), v.to_content())).collect())
    }
}

impl<K: MapKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Map(entries) => {
                entries.iter().map(|(k, v)| Ok((K::from_key(k)?, V::from_content(v)?))).collect()
            }
            other => Err(DeError::custom(format!("expected map, got {other:?}"))),
        }
    }
}

impl<K, V, S> Serialize for HashMap<K, V, S>
where
    K: MapKey + Ord + std::hash::Hash + Eq,
    V: Serialize,
    S: std::hash::BuildHasher,
{
    fn to_content(&self) -> Content {
        // Sort for a deterministic rendering.
        let mut entries: Vec<(&K, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        Content::Map(entries.into_iter().map(|(k, v)| (k.to_key(), v.to_content())).collect())
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: MapKey + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Map(entries) => {
                entries.iter().map(|(k, v)| Ok((K::from_key(k)?, V::from_content(v)?))).collect()
            }
            other => Err(DeError::custom(format!("expected map, got {other:?}"))),
        }
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(DeError::custom(format!("expected sequence, got {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let c = 42usize.to_content();
        assert_eq!(usize::from_content(&c).unwrap(), 42);
        let c = (-3i64).to_content();
        assert_eq!(i64::from_content(&c).unwrap(), -3);
        let c = 0.25f64.to_content();
        assert_eq!(f64::from_content(&c).unwrap(), 0.25);
        let c = f64::NAN.to_content();
        assert!(f64::from_content(&c).unwrap().is_nan());
        let c = "hi".to_string().to_content();
        assert_eq!(String::from_content(&c).unwrap(), "hi");
    }

    #[test]
    fn containers_round_trip() {
        let v: Vec<(usize, f64)> = vec![(0, 0.5), (3, 0.25)];
        let back: Vec<(usize, f64)> = Deserialize::from_content(&v.to_content()).unwrap();
        assert_eq!(v, back);

        let mut m: BTreeMap<String, Vec<u64>> = BTreeMap::new();
        m.insert("a".into(), vec![1, 2]);
        let back: BTreeMap<String, Vec<u64>> = Deserialize::from_content(&m.to_content()).unwrap();
        assert_eq!(m, back);

        let s: BTreeSet<usize> = [3, 1, 4].into_iter().collect();
        let back: BTreeSet<usize> = Deserialize::from_content(&s.to_content()).unwrap();
        assert_eq!(s, back);

        let o: Option<u64> = None;
        assert_eq!(o.to_content(), Content::Null);
        let back: Option<u64> = Deserialize::from_content(&Content::Null).unwrap();
        assert_eq!(back, None);
    }

    #[test]
    fn enum_variant_decoding() {
        let unit = Content::Str("Min".into());
        assert_eq!(unit.variant().unwrap(), ("Min", None));
        let tagged = Content::Map(vec![("Atom".into(), Content::Str("x".into()))]);
        let (tag, payload) = tagged.variant().unwrap();
        assert_eq!(tag, "Atom");
        assert_eq!(payload.unwrap(), &Content::Str("x".into()));
    }
}
