//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to a crates.io mirror, so the
//! workspace vendors the tiny slice of the `rand` API it actually uses:
//! [`RngCore`]/[`Rng`] as the generator abstraction, [`RngExt::random_range`]
//! for uniform sampling from ranges, and a seedable deterministic
//! [`rngs::StdRng`].  The generator is SplitMix64 — statistically fine for
//! simulation and multistart jitter, and deliberately *not* cryptographic.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// The core abstraction: a source of uniformly distributed `u64`s.
pub trait RngCore {
    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;
}

/// Marker trait mirroring `rand::Rng`; blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {}

impl<T: RngCore + ?Sized> Rng for T {}

/// Extension methods on random generators (mirrors `rand::Rng`'s method
/// surface under the name used by the workspace).
pub trait RngExt: RngCore {
    /// Samples uniformly from `range`. Panics on an empty range.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<T: RngCore + ?Sized> RngExt for T {}

/// A type that can be created from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Creates a generator seeded from `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps a `u64` to a double in `[0, 1)` using the top 53 bits.
fn unit_f64(u: u64) -> f64 {
    (u >> 11) as f64 * (1.0 / 9007199254740992.0)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let u = unit_f64(rng.next_u64());
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample from empty range");
        let u = unit_f64(rng.next_u64());
        lo + u * (hi - lo)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u8, u16, u32, u64, i8, i16, i32, i64, isize);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = a.random_range(0.0..1.0);
            let y: f64 = b.random_range(0.0..1.0);
            assert_eq!(x, y);
            assert!((0.0..1.0).contains(&x));
        }
        let mut c = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let k = c.random_range(2usize..5);
            assert!((2..5).contains(&k));
            let j = c.random_range(-4i64..=4);
            assert!((-4..=4).contains(&j));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let xs: Vec<f64> = (0..8).map(|_| a.random_range(0.0..1.0)).collect();
        let ys: Vec<f64> = (0..8).map(|_| b.random_range(0.0..1.0)).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn dyn_rng_usable() {
        fn draw(rng: &mut (impl super::Rng + ?Sized)) -> usize {
            rng.random_range(0usize..10)
        }
        let mut r = StdRng::seed_from_u64(0);
        let dynr: &mut dyn super::RngCore = &mut r;
        assert!(draw(dynr) < 10);
    }
}
