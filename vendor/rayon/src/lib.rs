//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no access to a crates.io mirror, so the
//! workspace vendors the slice of the `rayon` API it actually uses:
//! [`join`], [`current_num_threads`], and a `par_iter`/`into_par_iter` →
//! `map` → `collect`/`for_each`/`sum`/`reduce` pipeline over slices, `Vec`s
//! and `usize` ranges.
//!
//! Instead of a work-stealing pool, parallel stages run on
//! [`std::thread::scope`] threads: the item list is split into one
//! contiguous chunk per available CPU and each chunk is mapped on its own
//! thread, results being reassembled **in input order**. This keeps the
//! implementation `forbid(unsafe_code)`-clean and makes every pipeline
//! deterministic: outputs are ordered exactly as the sequential map would
//! order them, whatever the thread interleaving. On a single-CPU host (or
//! for tiny inputs) stages degrade to a plain sequential map with no thread
//! spawn at all, so callers may use the parallel API unconditionally.

#![forbid(unsafe_code)]

use std::num::NonZeroUsize;
use std::sync::OnceLock;

/// Number of threads a parallel stage may use (the available CPU
/// parallelism; rayon reports its pool size here).
///
/// Like real rayon's global pool, the count can be overridden with the
/// `RAYON_NUM_THREADS` environment variable (`1` forces every parallel
/// stage sequential). The variable is read once, at the first call.
pub fn current_num_threads() -> usize {
    static CONFIGURED: OnceLock<Option<usize>> = OnceLock::new();
    let configured = *CONFIGURED.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
    });
    configured
        .unwrap_or_else(|| std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1))
}

/// Runs `a` and `b`, potentially in parallel, and returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        let rb = hb.join().expect("rayon::join worker panicked");
        (ra, rb)
    })
}

/// Maps `f` over `items` on up to `current_num_threads()` scoped threads,
/// preserving input order in the output.
fn par_apply<T, R, F>(items: Vec<T>, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let threads = current_num_threads().min(n);
    if threads <= 1 || n < 2 {
        return items.into_iter().map(f).collect();
    }
    // Split into `threads` contiguous chunks of near-equal size.
    let chunk = n.div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut items = items.into_iter();
    loop {
        let c: Vec<T> = items.by_ref().take(chunk).collect();
        if c.is_empty() {
            break;
        }
        chunks.push(c);
    }
    let per_chunk: Vec<Vec<R>> = std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| s.spawn(move || c.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles.into_iter().map(|h| h.join().expect("rayon worker panicked")).collect()
    });
    let mut out = Vec::with_capacity(n);
    for c in per_chunk {
        out.extend(c);
    }
    out
}

/// The parallel-iterator pipeline: a lazily composed `map` chain executed
/// by a terminal operation ([`collect`](ParallelIterator::collect),
/// [`for_each`](ParallelIterator::for_each), …).
pub trait ParallelIterator: Sized + Send {
    /// The element type produced by the pipeline.
    type Item: Send;

    /// Executes the pipeline, returning all items in input order.
    fn run(self) -> Vec<Self::Item>;

    /// Maps every item through `f` (applied in parallel at execution).
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync + Send,
    {
        Map { base: self, f }
    }

    /// Runs the pipeline and collects the items.
    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        self.run().into_iter().collect()
    }

    /// Runs the pipeline for its effects.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        let _ = self.map(f).run();
    }

    /// Sums the pipeline's items (reduction order is the input order).
    fn sum<S: std::iter::Sum<Self::Item>>(self) -> S {
        self.run().into_iter().sum()
    }

    /// Folds pairs of items with `op`, in input order (deterministic).
    fn reduce_with<F>(self, op: F) -> Option<Self::Item>
    where
        F: Fn(Self::Item, Self::Item) -> Self::Item + Sync + Send,
    {
        self.run().into_iter().reduce(op)
    }
}

/// A materialized item list acting as the pipeline source.
pub struct IterBridge<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for IterBridge<T> {
    type Item = T;

    fn run(self) -> Vec<T> {
        self.items
    }
}

/// A `map` stage; applied on scoped threads when the pipeline runs.
pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I, R, F> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    R: Send,
    F: Fn(I::Item) -> R + Sync + Send,
{
    type Item = R;

    fn run(self) -> Vec<R> {
        par_apply(self.base.run(), &self.f)
    }
}

/// Types convertible into a parallel pipeline by value.
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;
    /// The pipeline type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Builds the pipeline.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = IterBridge<T>;

    fn into_par_iter(self) -> IterBridge<T> {
        IterBridge { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Iter = IterBridge<usize>;

    fn into_par_iter(self) -> IterBridge<usize> {
        IterBridge { items: self.collect() }
    }
}

/// Types whose references iterate in parallel (mirrors
/// `rayon::iter::IntoParallelRefIterator`).
pub trait IntoParallelRefIterator<'a> {
    /// The element type (a reference).
    type Item: Send;
    /// The pipeline type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Builds the pipeline over `&self`.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = IterBridge<&'a T>;

    fn par_iter(&'a self) -> IterBridge<&'a T> {
        IterBridge { items: self.iter().collect() }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = IterBridge<&'a T>;

    fn par_iter(&'a self) -> IterBridge<&'a T> {
        IterBridge { items: self.iter().collect() }
    }
}

/// The usual glob import, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let out: Vec<usize> = (0..100).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_over_slices_and_vecs() {
        let v = vec![1.0, 2.0, 3.0];
        let s: f64 = v.par_iter().map(|x| x * x).sum();
        assert_eq!(s, 14.0);
        let doubled: Vec<i32> = [1, 2, 3].par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn reduce_and_for_each() {
        let m = (1..10).collect::<Vec<usize>>().into_par_iter().reduce_with(|a, b| a.max(b));
        assert_eq!(m, Some(9));
        let total = std::sync::atomic::AtomicUsize::new(0);
        (0..10).into_par_iter().for_each(|i| {
            total.fetch_add(i, std::sync::atomic::Ordering::Relaxed);
        });
        assert_eq!(total.load(std::sync::atomic::Ordering::Relaxed), 45);
    }

    #[test]
    fn empty_and_single_inputs() {
        let out: Vec<usize> = Vec::<usize>::new().into_par_iter().map(|i| i).collect();
        assert!(out.is_empty());
        let one: Vec<usize> = (7..8).into_par_iter().map(|i| i + 1).collect();
        assert_eq!(one, vec![8]);
    }

    #[test]
    fn num_threads_is_positive() {
        assert!(current_num_threads() >= 1);
    }
}
