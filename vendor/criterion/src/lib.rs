//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`
//! and the `criterion_group!`/`criterion_main!` macros — with a simple
//! best-of-N wall-clock timer instead of criterion's statistical engine.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("group {name}");
        BenchmarkGroup { samples: 10 }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_benchmark(id, 10, f);
        self
    }
}

/// A group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup {
    samples: usize,
}

impl BenchmarkGroup {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_benchmark(id, self.samples, f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_benchmark(&id.label, self.samples, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Identifier from a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { label: format!("{}/{}", name.into(), parameter) }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

/// Passed to benchmark closures; times the routine under test.
#[derive(Debug)]
pub struct Bencher {
    iterations: u64,
    best: Duration,
}

impl Bencher {
    /// Times one sample of the routine.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        black_box(routine());
        let elapsed = start.elapsed();
        self.iterations += 1;
        if elapsed < self.best {
            self.best = elapsed;
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, samples: usize, mut f: F) {
    let mut bencher = Bencher { iterations: 0, best: Duration::MAX };
    for _ in 0..samples {
        f(&mut bencher);
    }
    if bencher.iterations > 0 {
        println!("  {id}: best of {} samples: {:?}", bencher.iterations, bencher.best);
    } else {
        println!("  {id}: no samples recorded");
    }
}

/// Bundles benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_smoke() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let mut runs = 0usize;
        group.bench_function("f", |b| b.iter(|| runs += 1));
        group.bench_with_input(BenchmarkId::from_parameter(3usize), &4usize, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
        c.bench_function("standalone", |b| b.iter(|| 1 + 1));
        assert_eq!(runs, 2);
    }
}
