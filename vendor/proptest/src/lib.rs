//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach a crates.io mirror, so the workspace
//! vendors the subset of proptest it uses: the [`Strategy`] trait with
//! `prop_map`/`prop_recursive`, range / tuple / `Just` / collection / option
//! / regex-literal strategies, the `proptest!`, `prop_assert!`,
//! `prop_assert_eq!` and `prop_oneof!` macros, and [`ProptestConfig`].
//!
//! Differences from the real crate: generation is driven by a deterministic
//! per-test SplitMix64 stream (seeded from the test name), there is **no
//! shrinking**, and failure reports show the case number instead of a
//! minimized input. That is sufficient for the workspace's property tests,
//! which all assert numeric invariants on freshly generated inputs.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// Deterministic random source used to generate test cases.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a stream seeded from a test name (FNV-1a of the bytes).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit value (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform double in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / 9007199254740992.0)
    }

    /// Uniform index in `[0, n)`; panics when `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot pick from an empty set");
        (self.next_u64() % n as u64) as usize
    }
}

/// Error produced by `prop_assert!`-style macros inside a test case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` generated inputs.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// A generator of values for property tests.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Builds a recursive strategy: `f` receives the strategy for the
    /// previous depth level and returns the strategy for the next one.
    /// `depth` bounds the recursion; the size/branch hints of the real
    /// proptest API are accepted and ignored.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> ArcStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(ArcStrategy<Self::Value>) -> S2,
    {
        let mut current = ArcStrategy::new(self);
        for _ in 0..depth {
            current = ArcStrategy::new(f(current.clone()));
        }
        current
    }
}

/// Type-erased, cheaply clonable strategy handle (used by
/// [`Strategy::prop_recursive`] and `prop_oneof!`).
pub struct ArcStrategy<T> {
    generate: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for ArcStrategy<T> {
    fn clone(&self) -> Self {
        ArcStrategy { generate: Rc::clone(&self.generate) }
    }
}

impl<T> ArcStrategy<T> {
    /// Erases a concrete strategy.
    pub fn new<S>(strategy: S) -> Self
    where
        S: Strategy<Value = T> + 'static,
    {
        ArcStrategy { generate: Rc::new(move |rng| strategy.generate(rng)) }
    }
}

impl<T> Strategy for ArcStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.generate)(rng)
    }
}

/// Strategy adapter created by [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// Strategy that always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between erased alternatives (backs `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<ArcStrategy<T>>,
}

impl<T> Union<T> {
    /// Creates a union; panics when `arms` is empty.
    pub fn new(arms: Vec<ArcStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len());
        self.arms[i].generate(rng)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty f64 range strategy");
        lo + rng.unit_f64() * (hi - lo)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u8, u16, u32, u64, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// A `&str` strategy interprets the string as a simplified regular
/// expression (character classes with ranges plus `{m,n}` / `?` / `*` / `+`
/// quantifiers) and generates matching strings — enough for patterns like
/// `"[a-z][a-z0-9_]{0,6}"`.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = regex_lite::parse(self);
        let mut out = String::new();
        for atom in &atoms {
            let n = if atom.min == atom.max {
                atom.min
            } else {
                atom.min + rng.below(atom.max - atom.min + 1)
            };
            for _ in 0..n {
                out.push(atom.chars[rng.below(atom.chars.len())]);
            }
        }
        out
    }
}

mod regex_lite {
    pub struct Atom {
        pub chars: Vec<char>,
        pub min: usize,
        pub max: usize,
    }

    /// Parses a pattern of literal characters and `[...]` classes, each
    /// optionally followed by `{n}`, `{m,n}`, `?`, `*` or `+`.
    pub fn parse(pattern: &str) -> Vec<Atom> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut i = 0;
        let mut atoms = Vec::new();
        while i < chars.len() {
            let set = match chars[i] {
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .map(|p| i + p)
                        .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"));
                    let set = parse_class(&chars[i + 1..close]);
                    i = close + 1;
                    set
                }
                '\\' => {
                    i += 1;
                    let c = *chars.get(i).unwrap_or_else(|| panic!("dangling \\ in {pattern:?}"));
                    i += 1;
                    vec![c]
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };
            let (min, max) = parse_quantifier(&chars, &mut i, pattern);
            atoms.push(Atom { chars: set, min, max });
        }
        atoms
    }

    fn parse_class(body: &[char]) -> Vec<char> {
        let mut set = Vec::new();
        let mut j = 0;
        while j < body.len() {
            if j + 2 < body.len() && body[j + 1] == '-' {
                let (lo, hi) = (body[j], body[j + 2]);
                assert!(lo <= hi, "bad class range {lo}-{hi}");
                for c in lo..=hi {
                    set.push(c);
                }
                j += 3;
            } else {
                set.push(body[j]);
                j += 1;
            }
        }
        assert!(!set.is_empty(), "empty character class");
        set
    }

    fn parse_quantifier(chars: &[char], i: &mut usize, pattern: &str) -> (usize, usize) {
        match chars.get(*i) {
            Some('?') => {
                *i += 1;
                (0, 1)
            }
            Some('*') => {
                *i += 1;
                (0, 4)
            }
            Some('+') => {
                *i += 1;
                (1, 4)
            }
            Some('{') => {
                let close = chars[*i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| *i + p)
                    .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"));
                let body: String = chars[*i + 1..close].iter().collect();
                *i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => {
                        let lo: usize = lo.trim().parse().expect("bad {m,n} quantifier");
                        let hi: usize = hi.trim().parse().expect("bad {m,n} quantifier");
                        assert!(lo <= hi, "bad quantifier bounds");
                        (lo, hi)
                    }
                    None => {
                        let n: usize = body.trim().parse().expect("bad {n} quantifier");
                        (n, n)
                    }
                }
            }
            _ => (1, 1),
        }
    }
}

/// `proptest::collection` — sized collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Number-of-elements specification for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max: r.end - 1 }
        }
    }

    /// Strategy generating `Vec`s of values from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.size.min == self.size.max {
                self.size.min
            } else {
                self.size.min + rng.below(self.size.max - self.size.min + 1)
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `proptest::option` — optional-value strategies.
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy generating `None` about a quarter of the time and `Some`
    /// of the inner strategy otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// Strategy returned by [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// One-stop import mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, ArcStrategy, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Uniformly picks one of the listed strategies (all must share a value
/// type).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::ArcStrategy::new($arm)),+])
    };
}

/// Fails the current test case when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current test case when the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: `{:?}` != `{:?}`",
            lhs,
            rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(*lhs == *rhs, $($fmt)+);
    }};
}

/// Fails the current test case when the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(*lhs != *rhs, "assertion failed: `{:?}` == `{:?}`", lhs, rhs);
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    (@run ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                let outcome = (|| -> ::core::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_collections() {
        let mut rng = crate::TestRng::from_name("ranges");
        let s = crate::collection::vec(0.0_f64..1.0, 3..6);
        for _ in 0..100 {
            let v = Strategy::generate(&s, &mut rng);
            assert!((3..6).contains(&v.len()));
            assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }
        let t = (0usize..3, 10u32..=12);
        for _ in 0..50 {
            let (a, b) = Strategy::generate(&t, &mut rng);
            assert!(a < 3);
            assert!((10..=12).contains(&b));
        }
    }

    #[test]
    fn regex_subset_strategy() {
        let mut rng = crate::TestRng::from_name("regex");
        let s = "[a-z][a-z0-9_]{0,6}";
        for _ in 0..200 {
            let v = Strategy::generate(&s, &mut rng);
            assert!(!v.is_empty() && v.len() <= 7, "bad length: {v:?}");
            let mut cs = v.chars();
            assert!(cs.next().unwrap().is_ascii_lowercase());
            assert!(cs.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn oneof_and_recursive() {
        #[derive(Debug, Clone, PartialEq)]
        enum Tree {
            Leaf(usize),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let leaf = (0usize..4).prop_map(Tree::Leaf);
        let strat = leaf.prop_recursive(3, 16, 2, |inner| {
            prop_oneof![
                (0usize..4).prop_map(Tree::Leaf),
                (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b))),
            ]
        });
        let mut rng = crate::TestRng::from_name("trees");
        let mut saw_node = false;
        for _ in 0..100 {
            let t = Strategy::generate(&strat, &mut rng);
            assert!(depth(&t) <= 3);
            saw_node |= matches!(t, Tree::Node(..));
        }
        assert!(saw_node);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn macro_smoke(x in 0.0_f64..1.0, v in crate::collection::vec(0usize..5, 2)) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert_eq!(v.len(), 2);
            prop_assert_ne!(v.len(), 3);
        }
    }
}
