//! Offline stand-in for `serde_derive`.
//!
//! Generates [`Serialize`]/[`Deserialize`] impls for the vendored `serde`
//! data model. Supports exactly what the workspace needs: non-generic
//! structs (named or tuple fields) and enums with unit, tuple and struct
//! variants, following serde's externally tagged representation. Field
//! attributes (`#[serde(...)]`) and generics are intentionally not
//! supported and produce a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_content(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "fn to_content(&self) -> ::serde::Content {{ ::serde::Content::Map(vec![{}]) }}",
                entries.join(", ")
            )
        }
        Shape::TupleStruct(arity) => {
            let items: Vec<String> =
                (0..*arity).map(|i| format!("::serde::Serialize::to_content(&self.{i})")).collect();
            if *arity == 1 {
                format!("fn to_content(&self) -> ::serde::Content {{ {} }}", items[0])
            } else {
                format!(
                    "fn to_content(&self) -> ::serde::Content {{ ::serde::Content::Seq(vec![{}]) }}",
                    items.join(", ")
                )
            }
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants.iter().map(|v| serialize_arm(&item.name, v)).collect();
            format!(
                "fn to_content(&self) -> ::serde::Content {{ match self {{ {} }} }}",
                arms.join(" ")
            )
        }
    };
    let out = format!("impl ::serde::Serialize for {} {{ {} }}", item.name, body);
    out.parse().expect("generated Serialize impl must parse")
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!("{f}: ::serde::Deserialize::from_content(content.field(\"{f}\")?)?")
                })
                .collect();
            format!(
                "fn from_content(content: &::serde::Content) -> ::std::result::Result<Self, ::serde::DeError> {{ \
                 ::std::result::Result::Ok({} {{ {} }}) }}",
                item.name,
                inits.join(", ")
            )
        }
        Shape::TupleStruct(arity) => {
            let inits = tuple_payload_inits(*arity, "content");
            format!(
                "fn from_content(content: &::serde::Content) -> ::std::result::Result<Self, ::serde::DeError> {{ \
                 {} ::std::result::Result::Ok({}({})) }}",
                tuple_payload_prelude(*arity, "content"),
                item.name,
                inits.join(", ")
            )
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> =
                variants.iter().map(|v| deserialize_arm(&item.name, v)).collect();
            format!(
                "fn from_content(content: &::serde::Content) -> ::std::result::Result<Self, ::serde::DeError> {{ \
                 let (tag, payload) = content.variant()?; \
                 match tag {{ {} _ => ::std::result::Result::Err(::serde::DeError::custom(format!(\
                 \"unknown variant {{tag}} for {}\"))) }} }}",
                arms.join(" "),
                item.name
            )
        }
    };
    let out = format!("impl ::serde::Deserialize for {} {{ {} }}", item.name, body);
    out.parse().expect("generated Deserialize impl must parse")
}

fn serialize_arm(name: &str, v: &Variant) -> String {
    match &v.shape {
        VariantShape::Unit => format!(
            "{name}::{v} => ::serde::Content::Str(::std::string::String::from(\"{v}\")),",
            v = v.name
        ),
        VariantShape::Tuple(arity) => {
            let binds: Vec<String> = (0..*arity).map(|i| format!("f{i}")).collect();
            let payload = if *arity == 1 {
                "::serde::Serialize::to_content(f0)".to_string()
            } else {
                let items: Vec<String> =
                    binds.iter().map(|b| format!("::serde::Serialize::to_content({b})")).collect();
                format!("::serde::Content::Seq(vec![{}])", items.join(", "))
            };
            format!(
                "{name}::{v}({binds}) => ::serde::Content::Map(vec![(::std::string::String::from(\"{v}\"), {payload})]),",
                v = v.name,
                binds = binds.join(", ")
            )
        }
        VariantShape::Struct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_content({f}))"
                    )
                })
                .collect();
            format!(
                "{name}::{v} {{ {fields} }} => ::serde::Content::Map(vec![(::std::string::String::from(\"{v}\"), ::serde::Content::Map(vec![{entries}]))]),",
                v = v.name,
                fields = fields.join(", "),
                entries = entries.join(", ")
            )
        }
    }
}

fn deserialize_arm(name: &str, v: &Variant) -> String {
    match &v.shape {
        VariantShape::Unit => {
            format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),", v = v.name)
        }
        VariantShape::Tuple(arity) => {
            let inits = tuple_payload_inits(*arity, "p");
            format!(
                "\"{v}\" => {{ let p = payload.ok_or_else(|| ::serde::DeError::custom(\
                 \"variant {v} expects a payload\"))?; {prelude} ::std::result::Result::Ok({name}::{v}({inits})) }}",
                v = v.name,
                prelude = tuple_payload_prelude(*arity, "p"),
                inits = inits.join(", ")
            )
        }
        VariantShape::Struct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::from_content(p.field(\"{f}\")?)?"))
                .collect();
            format!(
                "\"{v}\" => {{ let p = payload.ok_or_else(|| ::serde::DeError::custom(\
                 \"variant {v} expects a payload\"))?; ::std::result::Result::Ok({name}::{v} {{ {inits} }}) }}",
                v = v.name,
                inits = inits.join(", ")
            )
        }
    }
}

/// For a tuple payload of `arity` read from content expression `src`:
/// statements binding `items` when more than one element is present.
fn tuple_payload_prelude(arity: usize, src: &str) -> String {
    if arity == 1 {
        String::new()
    } else {
        format!("let items = {src}.as_seq({arity})?;")
    }
}

fn tuple_payload_inits(arity: usize, src: &str) -> Vec<String> {
    if arity == 1 {
        vec![format!("::serde::Deserialize::from_content({src})?")]
    } else {
        (0..arity).map(|i| format!("::serde::Deserialize::from_content(&items[{i}])?")).collect()
    }
}

struct Item {
    name: String,
    shape: Shape,
}

enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attributes_and_visibility(&tokens, &mut i);
    let kind = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other:?}"),
    };
    i += 1;
    let name = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected type name, found {other:?}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive (vendored) does not support generic types: {name}");
    }
    let shape = match kind.as_str() {
        "struct" => match &tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_top_level_segments(g.stream()))
            }
            other => panic!("unsupported struct body for {name}: {other:?}"),
        },
        "enum" => match &tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("unsupported enum body for {name}: {other:?}"),
        },
        other => panic!("cannot derive for `{other}` items"),
    };
    Item { name, shape }
}

fn skip_attributes_and_visibility(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` and the bracketed attribute body
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // pub(crate) etc.
                }
            }
            _ => return,
        }
    }
}

/// Counts comma-separated segments at angle-bracket depth zero (used for
/// tuple fields: `Box<A>, f64` → 2).
fn count_top_level_segments(stream: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut segments = 0usize;
    let mut in_segment = false;
    for tok in stream {
        match &tok {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => in_segment = false,
            _ => {
                if !in_segment {
                    segments += 1;
                    in_segment = true;
                }
            }
        }
    }
    segments
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes_and_visibility(&tokens, &mut i);
        let name = match &tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("expected field name, found {other:?}"),
        };
        i += 1;
        match &tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("expected `:` after field {name}, found {other:?}"),
        }
        skip_type(&tokens, &mut i);
        fields.push(name);
    }
    fields
}

/// Advances past a type, stopping after the `,` that ends it (or at the end
/// of the stream). Tracks `<`/`>` nesting so commas inside generics don't
/// terminate the field.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut depth = 0i32;
    while let Some(tok) = tokens.get(*i) {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                *i += 1;
                return;
            }
            _ => {}
        }
        *i += 1;
    }
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes_and_visibility(&tokens, &mut i);
        let name = match &tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("expected variant name, found {other:?}"),
        };
        i += 1;
        let shape = match &tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_top_level_segments(g.stream());
                i += 1;
                VariantShape::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                i += 1;
                VariantShape::Struct(fields)
            }
            _ => VariantShape::Unit,
        };
        if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, shape });
    }
    variants
}
