//! Offline stand-in for `serde_json`: renders the vendored `serde`
//! [`Content`](serde::Content) data model as JSON text and parses it back.
//! Covers `to_string`/`from_str` with standard JSON syntax (string escapes,
//! `\uXXXX`, exponent notation); numbers are rendered with `{:?}` so `f64`
//! values round-trip exactly.

#![forbid(unsafe_code)]

use serde::{Content, Deserialize, Serialize};

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error { message: message.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_content(), &mut out);
    Ok(out)
}

/// Deserializes a value from JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let content = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at offset {}", p.pos)));
    }
    Ok(T::from_content(&content)?)
}

fn render(c: &Content, out: &mut String) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::UInt(u) => out.push_str(&u.to_string()),
        Content::Int(i) => out.push_str(&i.to_string()),
        Content::Float(f) => out.push_str(&format!("{f:?}")),
        Content::Str(s) => render_string(s, out),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render(item, out);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_string(k, out);
                out.push(':');
                render(v, out);
            }
            out.push('}');
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!("expected {:?} at offset {}", b as char, self.pos)))
        }
    }

    fn literal(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Content, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.literal("null") => Ok(Content::Null),
            Some(b't') if self.literal("true") => Ok(Content::Bool(true)),
            Some(b'f') if self.literal("false") => Ok(Content::Bool(false)),
            Some(b'"') => Ok(Content::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Content::Seq(items));
                        }
                        _ => return Err(Error::new(format!("bad array at offset {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    entries.push((key, self.value()?));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Content::Map(entries));
                        }
                        _ => return Err(Error::new(format!("bad object at offset {}", self.pos))),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at offset {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 encoded character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(Content::Float)
                .map_err(|_| Error::new(format!("bad number {text:?}")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Content::Int)
                .map_err(|_| Error::new(format!("bad number {text:?}")))
        } else {
            text.parse::<u64>()
                .map(Content::UInt)
                .map_err(|_| Error::new(format!("bad number {text:?}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        let json = to_string(&0.1f64).unwrap();
        assert_eq!(json, "0.1");
        let back: f64 = from_str(&json).unwrap();
        assert_eq!(back, 0.1);

        let json = to_string(&42u64).unwrap();
        assert_eq!(json, "42");
        assert_eq!(from_str::<u64>(&json).unwrap(), 42);

        let json = to_string(&-7i64).unwrap();
        assert_eq!(from_str::<i64>(&json).unwrap(), -7);

        let json = to_string("a \"quoted\"\nline").unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), "a \"quoted\"\nline");
    }

    #[test]
    fn containers_round_trip() {
        let v: Vec<(usize, f64)> = vec![(0, 0.25), (7, 1.0)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[0,0.25],[7,1.0]]");
        let back: Vec<(usize, f64)> = from_str(&json).unwrap();
        assert_eq!(v, back);

        let o: Option<u64> = None;
        assert_eq!(to_string(&o).unwrap(), "null");
        assert_eq!(from_str::<Option<u64>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<u64>>(" 19 ").unwrap(), Some(19));
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v: Vec<String> = from_str(" [ \"a\\u0041\" , \"b\" ] ").unwrap();
        assert_eq!(v, vec!["aA".to_string(), "b".to_string()]);
        assert!(from_str::<Vec<String>>("[ \"a\" ").is_err());
        assert!(from_str::<u64>("12 34").is_err());
    }
}
